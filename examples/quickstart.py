#!/usr/bin/env python
"""Quickstart: derive a data-movement lower bound for matrix multiplication.

This reproduces the paper's running example: for C = A*B on a machine with a
fast memory of S words, any schedule of the standard O(N^3) algorithm must
move at least ~ 2*Ni*Nj*Nk / sqrt(S) words, i.e. its operational intensity is
at most sqrt(S).
"""

from repro import ProgramBuilder
from repro.analysis import AnalysisConfig, Analyzer


def build_gemm():
    """Describe gemm as an affine program: domains + flow dependences."""
    return (
        ProgramBuilder("gemm", ["Ni", "Nj", "Nk"])
        # Input arrays and their index domains.
        .add_array("[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
        .add_array("[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
        .add_array("[Ni, Nj] -> { C[i, j] : 0 <= i < Ni and 0 <= j < Nj }", is_output=True)
        # The single statement C[i,j] += A[i,k] * B[k,j], 2 flops per instance.
        .add_statement(
            "[Ni, Nj, Nk] -> { S[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            flops=2,
        )
        # Flow dependences, written as "sink instance -> the source it reads".
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> S[i, j, k - 1] : "
            "0 <= i < Ni and 0 <= j < Nj and 1 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> A[i, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> B[k, j] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> C[i, j] : 0 <= i < Ni and 0 <= j < Nj and k = 0 }"
        )
        .build()
    )


def main():
    program = build_gemm()
    result = Analyzer(AnalysisConfig(max_depth=0)).analyze(program)

    print("kernel          :", result.program_name)
    print("input size      :", result.input_size)
    print("total flops     :", result.total_flops)
    print("Q_low (complete):", result.expression)
    print("Q_low (leading) :", result.asymptotic)
    print("OI upper bound  :", result.oi_upper_bound())
    print()
    print("How the bound was derived:")
    for line in result.log:
        print("  *", line[:160])
    print()
    # Numeric instantiation: a 1000^3 gemm with a 256 kB cache (32768 doubles).
    instance = {"Ni": 1000, "Nj": 1000, "Nk": 1000, "S": 32768}
    print(f"at Ni=Nj=Nk=1000, S=32768 words:")
    print(f"  Q_low  >= {result.evaluate(instance):,.0f} words")
    print(f"  OI     <= {result.evaluate_oi_upper(instance):,.1f} flops/word")


if __name__ == "__main__":
    main()
