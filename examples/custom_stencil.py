#!/usr/bin/env python
"""Analyse a user-written kernel that is not part of PolyBench.

The example is a 1D convection-diffusion sweep with an unusual asymmetric
stencil; the point is to show how to describe *your own* affine code and get
an OI upper bound out of it, including the wavefront analysis knob.
"""

from repro import ProgramBuilder
from repro.analysis import AnalysisConfig, Analyzer
from repro.core import PAPER_MACHINE_BALANCE, classify


def build_kernel():
    """for t: for i: U[t, i] = f(U[t-1, i-2], U[t-1, i], U[t-1, i+1])."""
    return (
        ProgramBuilder("convection-1d", ["T", "N"])
        .add_array("[N] -> { U0[i] : 0 <= i < N }")
        .add_statement("[T, N] -> { U[t, i] : 0 <= t < T and 2 <= i < N - 1 }", flops=5)
        .add_dependence("[T, N] -> { U[t, i] -> U[t - 1, i - 2] : 1 <= t < T and 4 <= i < N - 1 }")
        .add_dependence("[T, N] -> { U[t, i] -> U[t - 1, i] : 1 <= t < T and 2 <= i < N - 1 }")
        .add_dependence("[T, N] -> { U[t, i] -> U[t - 1, i + 1] : 1 <= t < T and 2 <= i < N - 2 }")
        .add_dependence("[T, N] -> { U[t, i] -> U0[i] : t = 0 and 2 <= i < N - 1 }")
        .build()
    )


def main():
    program = build_kernel()
    result = Analyzer(AnalysisConfig(max_depth=1)).analyze(program)

    print("Q_low (complete) :", result.expression)
    print("Q_low (leading)  :", result.asymptotic)
    print("OI upper bound   :", result.oi_upper_bound())
    print()
    print("sub-bounds considered:")
    for bound in result.sub_bounds:
        print(f"  - {bound.method:<11} on {bound.statement:<4} -> {bound.smooth}")
    print()

    # Is this kernel worth tiling on a machine with MB = 8 flops/word and a
    # 256 kB scratchpad?  Compare the OI upper bound with the machine balance.
    instance = {"T": 1000, "N": 100000, "S": 32768}
    oi = result.evaluate_oi_upper(instance)
    verdict = classify(oi, None, PAPER_MACHINE_BALANCE)
    print(f"at T=1000, N=100000, S=32768: OI <= {oi:,.1f} flops/word -> {verdict.value}")
    print("(an OI bound far above the machine balance means time-tiling this")
    print(" stencil can make it compute-bound; a bound below it would prove the")
    print(" kernel is stuck at the memory bandwidth no matter the schedule)")


if __name__ == "__main__":
    main()
