#!/usr/bin/env python
"""Compare the IOLB lower bound with the data movement of concrete schedules.

This is a miniature version of the paper's Sec. 8.2 experiment: for gemm we

1. derive the parametric lower bound Q_low(S, Ni, Nj, Nk),
2. expand the explicit CDAG for a small instance,
3. simulate an *untiled* (program-order) schedule and a *tiled* schedule
   through an LRU cache of S words, and
4. check that both schedules move at least Q_low words, and that tiling gets
   much closer to the bound — the gap the paper's tool is designed to expose.

The full automated version of this experiment — a tiling *search* over every
kernel with the result paired against the lower bound — is
``python -m repro report`` (see :mod:`repro.upper`).
"""

from repro.analysis import AnalysisConfig, Analyzer
from repro.ir import CDAG
from repro.pebble import lexicographic_schedule, simulate_schedule, tiled_schedule
from repro.polybench import get_kernel


def main():
    spec = get_kernel("gemm")
    result = Analyzer(AnalysisConfig(max_depth=0)).analyze(spec.program)
    print("parametric lower bound:", result.asymptotic)

    instance = {"Ni": 16, "Nj": 16, "Nk": 16}
    cache_words = 64
    cdag = CDAG.expand(spec.program, instance)
    print(f"\nCDAG for {instance}: {len(cdag.compute_vertices())} operations, "
          f"{len(cdag.inputs)} inputs, cache = {cache_words} words\n")

    # Per-operation flop count from the kernel registry (gemm's update
    # statement is one multiply + one add), not a hardcoded 2.
    (statement,) = spec.program.statements.values()
    flops_per_op = statement.flops

    bound = result.evaluate({**instance, "S": cache_words})
    print(f"{'schedule':<22} {'loads':>8} {'OI (flops/word)':>16}")
    print("-" * 50)

    untiled = simulate_schedule(cdag, lexicographic_schedule(cdag), cache_words, policy="lru")
    print(f"{'untiled (ijk order)':<22} {untiled.loads:>8} "
          f"{untiled.operational_intensity(flops_per_op):>16.2f}")

    for tile in (2, 4, 8):
        schedule = tiled_schedule(cdag, {"S": (tile, tile, 16)})
        tiled = simulate_schedule(cdag, schedule, cache_words, policy="lru")
        print(f"{f'tiled {tile}x{tile}x16':<22} {tiled.loads:>8} "
              f"{tiled.operational_intensity(flops_per_op):>16.2f}")

    print("-" * 50)
    print(f"{'IOLB lower bound':<22} {max(bound, 0):>8.0f}")
    print("\nEvery simulated schedule is a legal red-white pebble game, so its")
    print("load count can never be below the IOLB bound; tiling narrows the gap.")


if __name__ == "__main__":
    main()
