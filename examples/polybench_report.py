#!/usr/bin/env python
"""Run IOLB over a selection of PolyBench kernels and print a Table-1 style report.

For each kernel the script prints the derived OI upper bound next to the
values reported in the paper (Table 1), and classifies the kernel against a
machine balance the way Figure 6 does.

Usage::

    python examples/polybench_report.py [--jobs N] [kernel ...]

Without arguments a representative subset covering all four categories of
Table 1 is analysed (running all 30 kernels takes a few minutes);
``--jobs N`` fans the derivations out over N worker processes through
``repro.analysis.Analyzer``.
"""

import argparse

from repro.core import PAPER_CACHE_WORDS, PAPER_MACHINE_BALANCE, classify
from repro.polybench import analyze_suite, kernel_names

DEFAULT_SELECTION = [
    "gemm",            # category 1: tileable, OI_up = sqrt(S)
    "cholesky",        # category 1: Appendix A worked example
    "lu",              # category 1: Appendix B worked example
    "covariance",      # category 1
    "jacobi-1d",       # category 1: stencil, OI_up = O(S)
    "atax",            # category 2: low reuse, OI_up = 4
    "trisolv",         # category 2
    "durbin",          # category 3: wavefront-limited, constant OI
    "nussinov",        # category 4: paper reports an unavoidable gap
]


def main(names, jobs=1):
    print(f"{'kernel':<16} {'OI_up (repro)':<28} {'OI_up (paper)':<18} "
          f"{'OI_manual':<14} {'class @ MB=8'}")
    print("-" * 96)
    for analysis in analyze_suite(names, n_jobs=jobs):
        spec = analysis.spec
        name = spec.name
        instance = dict(spec.large_instance)
        instance["S"] = PAPER_CACHE_WORDS
        oi_numeric = analysis.result.evaluate_oi_upper(instance)
        verdict = classify(oi_numeric, None, PAPER_MACHINE_BALANCE)
        print(
            f"{name:<16} {str(analysis.oi_upper):<28} {spec.paper_oi_upper:<18} "
            f"{spec.paper_oi_manual:<14} {verdict.value} (OI_up={oi_numeric:,.1f})"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("kernels", nargs="*", default=None)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    args = parser.parse_args()
    selected = args.kernels or DEFAULT_SELECTION
    unknown = [n for n in selected if n not in kernel_names()]
    if unknown:
        raise SystemExit(f"unknown kernels: {unknown}; available: {kernel_names()}")
    main(selected, jobs=args.jobs)
