"""Benchmark regenerating Table 1: parametric OI bounds for PolyBench.

For every kernel the harness derives the I/O lower bound, forms the
operational-intensity upper bound ``OI_up = #ops / Q_low`` and tabulates it
next to the paper's reported ``OI_up`` and manually derived ``OI_manual``.
The derivation itself is the benchmarked operation (the paper reports
"less than a second per kernel on a basic computer").
"""

from __future__ import annotations

import pytest

from repro.polybench import analyze_kernel, analyze_suite, table1_rows

from conftest import write_markdown_table


@pytest.mark.benchmark(group="table1-derivation")
@pytest.mark.parametrize(
    "kernel",
    ["gemm", "cholesky", "lu", "covariance", "atax", "durbin", "trisolv", "floyd-warshall"],
)
def test_table1_single_kernel_derivation(benchmark, kernel):
    """Time the raw IOLB derivation of one kernel (deliberately store-free:
    every benchmark round must run the actual derivation, not a store hit —
    warm-store latency is measured separately in bench_store.py)."""
    analysis = benchmark(analyze_kernel, kernel)
    assert analysis.result.asymptotic is not None


@pytest.mark.benchmark(group="table1-full")
def test_table1_full_table(benchmark, fast_kernel_names, bound_store):
    """Regenerate the full Table 1 for the fast subset of kernels."""

    def build_table():
        return table1_rows(analyze_suite(fast_kernel_names, store=bound_store))

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    path = write_markdown_table("table1", rows)
    assert path.exists()
    assert len(rows) == len(fast_kernel_names)
