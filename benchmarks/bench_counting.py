"""Counting-backend differential benchmark: native Faulhaber vs sympy.

Two cold full-suite derivations in fresh subprocesses, identical except for
``REPRO_COUNT_BACKEND``: the reference leg sums lattice-point weights with
``sympy.summation``, the native leg with the closed-form Faulhaber engine in
:mod:`repro.sets.poly`.  Three guarantees are checked:

* **Byte-identical bounds** — asserted unconditionally.  The native engine
  is perf-only; every derived formula must ``sympy.sstr`` identically across
  the legs.
* **>= 2x counting speedup** — the counting *subsystem* (the exclusive time
  of the ``counting`` and ``counting-sum`` perf timers, i.e. the code the
  engine replaced) must be at least ``TARGET_COUNT_SPEEDUP`` times faster.
  Asserted only with >= 2 CPU cores (single-core containers are too
  contended for reliable timing); the measurement is reported always.
* **Machine-readable record** — ``benchmarks/out/BENCH_counting.json``
  carries both legs' wall/subsystem times and the speedups so CI can chart
  the trend, next to the Markdown table in ``BENCH_counting.md``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from conftest import OUTPUT_DIR, write_markdown_table

#: Minimum cold counting-subsystem speedup of the native closed-form engine
#: over the sympy reference on a machine with cores to spare.
TARGET_COUNT_SPEEDUP = 2.0

_CHILD_SNIPPET = """
import json, time
import sympy
from repro import perf
from repro.polybench.suite import analyze_suite
from repro.sets import memo
perf.reset()
memo.clear_all()
start = time.perf_counter()
analyses = analyze_suite(store=None, executor="serial")
wall = time.perf_counter() - start
snapshot = perf.snapshot()
counting = sum(
    t.exclusive_s for t in snapshot.timings
    if t.name in ("counting", "counting-sum")
)
bounds = {a.spec.name: sympy.sstr(a.result.expression) for a in analyses}
print(json.dumps({"seconds": wall, "counting_seconds": counting,
                  "bounds": bounds}))
"""


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _suite_cold(backend: str) -> dict:
    """Cold full-suite derivation with one count backend, fresh interpreter."""
    env = dict(os.environ)
    env.pop("REPRO_SETS_BACKEND", None)
    env.pop("REPRO_SETS_MEMO", None)
    env["REPRO_COUNT_BACKEND"] = backend
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH")])
    )
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SNIPPET],
        env=env, check=True, capture_output=True, text=True,
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


def test_counting_backend_speedup():
    """Cold suite per count backend: identical bounds, faster counting."""
    reference = _suite_cold("sympy")
    native = _suite_cold("native")

    # Byte-identical bounds across the backends, whatever the timing says:
    # the closed-form engine may never change a derived formula.
    assert native["bounds"] == reference["bounds"]

    ref_count, nat_count = reference["counting_seconds"], native["counting_seconds"]
    count_speedup = ref_count / nat_count if nat_count > 0 else 1.0
    wall_speedup = (
        reference["seconds"] / native["seconds"] if native["seconds"] > 0 else 1.0
    )

    write_markdown_table("BENCH_counting", [{
        "leg": "sympy.summation (reference)",
        "counting subsystem (s)": round(ref_count, 2),
        "suite wall (s)": round(reference["seconds"], 2),
        "counting speedup": "1.00x",
    }, {
        "leg": "native Faulhaber engine",
        "counting subsystem (s)": round(nat_count, 2),
        "suite wall (s)": round(native["seconds"], 2),
        "counting speedup": f"{count_speedup:.2f}x",
    }])

    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUTPUT_DIR / "BENCH_counting.json").write_text(json.dumps({
        "kernels": len(native["bounds"]),
        "bounds_identical": True,
        "target_counting_speedup": TARGET_COUNT_SPEEDUP,
        "counting_speedup": round(count_speedup, 3),
        "suite_wall_speedup": round(wall_speedup, 3),
        "legs": {
            "sympy": {
                "suite_wall_s": round(reference["seconds"], 3),
                "counting_subsystem_s": round(ref_count, 3),
            },
            "native": {
                "suite_wall_s": round(native["seconds"], 3),
                "counting_subsystem_s": round(nat_count, 3),
            },
        },
    }, indent=2, sort_keys=True) + "\n")

    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s) available: timing too contended for a "
            f"reliable speedup assertion (measured {count_speedup:.2f}x on "
            "the counting subsystem; tables written for inspection)"
        )
    assert count_speedup >= TARGET_COUNT_SPEEDUP, (
        f"expected the native closed-form engine to cut counting-subsystem "
        f"time by >= {TARGET_COUNT_SPEEDUP}x on the cold suite, got "
        f"{count_speedup:.2f}x ({ref_count:.2f}s -> {nat_count:.2f}s)"
    )
