"""Concurrent vs sequential service tier: warm-request turnaround under load.

The threaded ``repro serve`` front-end's promise is that a warm request (its
bound already in the store) is never stuck behind another client's cold
derivation: each connection gets its own handler thread, all multiplexed
into the one shared scheduler/store.  This benchmark measures the latency a
warm single-kernel request actually sees in both shapes:

* **sequential** — the warm request rides the *same* connection as a cold
  request, behind it.  Requests within one JSON-lines stream are served in
  order, so this is exactly what every client of the pre-threading server
  experienced: the warm turnaround includes the whole cold derivation.
* **concurrent** — the warm request arrives on its *own* connection while
  the cold request is deriving on another.  The handler thread serves it
  from the store immediately.

The table (``benchmarks/out/service_concurrency.md``) reports both
latencies plus the cold request's total; the acceptance assertion is that
the concurrent warm turnaround is under half the sequential one (in
practice it is ~three orders of magnitude smaller: store-hit milliseconds
vs. derivation seconds).

Methodology: each scenario gets a fresh service + store (pre-warmed with
the warm kernel only) in this one process; the cold kernel derives from
scratch in both.  Sympy's global caches make the second scenario's cold
derivation somewhat faster, which only *shrinks* the concurrent scenario's
window — it biases against the assertion, never for it.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from conftest import write_markdown_table

from repro.analysis import BoundStore
from repro.service import AnalysisService, ServiceServer

#: Derives for seconds at depth 0 — a wide window for the warm request.
COLD_KERNEL = "jacobi-2d"
#: Sub-second derivation, pre-warmed into the store before timing starts.
WARM_KERNEL = "gemm"


def _request(request_id: str, kernel: str) -> bytes:
    line = json.dumps(
        {"id": request_id, "kernels": [kernel], "config": {"max_depth": 0}}
    )
    return (line + "\n").encode("utf-8")


class _Connection:
    def __init__(self, host: str, port: int):
        self.conn = socket.create_connection((host, port), timeout=300)
        self.stream = self.conn.makefile("r", encoding="utf-8")
        assert json.loads(self.stream.readline())["event"] == "hello"

    def send(self, payload: bytes) -> None:
        self.conn.sendall(payload)

    def read_done(self, request_id: str) -> dict:
        for line in self.stream:
            event = json.loads(line)
            if event["event"] == "done" and event["id"] == request_id:
                return event
        raise AssertionError(f"stream ended before done event for {request_id!r}")

    def close(self) -> None:
        self.stream.close()
        self.conn.close()


def _with_server(store_root, run) -> dict:
    """Start a threaded server on a fresh pre-warmed store, call `run`."""
    with AnalysisService(store=BoundStore(store_root)) as service:
        for _ in service.serve_lines([_request("prewarm", WARM_KERNEL).decode()]):
            pass
        with ServiceServer(("127.0.0.1", 0), service) as server:
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = server.server_address[:2]
                return run(host, port)
            finally:
                server.shutdown()
                thread.join(timeout=30)


def _sequential(host: str, port: int) -> dict:
    """Warm request queued behind the cold one on a single connection."""
    connection = _Connection(host, port)
    try:
        started = time.perf_counter()
        connection.send(_request("cold", COLD_KERNEL) + _request("warm", WARM_KERNEL))
        cold_done = connection.read_done("cold")
        cold_s = time.perf_counter() - started
        connection.read_done("warm")
        warm_s = time.perf_counter() - started  # includes the cold wait
        assert cold_done["derivations"] == 1
        return {"warm_s": warm_s, "cold_s": cold_s}
    finally:
        connection.close()


def _concurrent(host: str, port: int) -> dict:
    """Warm request on its own connection while the cold one derives."""
    cold = _Connection(host, port)
    warm = _Connection(host, port)
    try:
        cold_started = time.perf_counter()
        cold.send(_request("cold", COLD_KERNEL))
        time.sleep(0.05)  # let the cold derivation actually start
        warm_started = time.perf_counter()
        warm.send(_request("warm", WARM_KERNEL))
        warm_done = warm.read_done("warm")
        warm_s = time.perf_counter() - warm_started
        cold_done = cold.read_done("cold")
        cold_s = time.perf_counter() - cold_started
        assert warm_done["derivations"] == 0, "warm request was not a store hit"
        assert cold_done["derivations"] == 1
        return {"warm_s": warm_s, "cold_s": cold_s}
    finally:
        warm.close()
        cold.close()


def test_concurrent_warm_turnaround_beats_sequential(tmp_path):
    sequential = _with_server(tmp_path / "seq-store", _sequential)
    concurrent = _with_server(tmp_path / "conc-store", _concurrent)

    rows = [
        {
            "serving": name,
            "warm latency (ms)": round(result["warm_s"] * 1000, 2),
            "cold total (ms)": round(result["cold_s"] * 1000, 2),
            "warm kernel": WARM_KERNEL,
            "cold kernel": COLD_KERNEL,
        }
        for name, result in (("sequential", sequential), ("concurrent", concurrent))
    ]
    path = write_markdown_table("service_concurrency", rows)
    print(f"\nwrote {path}")
    for row in rows:
        print(row)

    # The headline: a warm request no longer waits out a stranger's cold
    # derivation.  0.5x is a deliberately loose gate — the observed ratio
    # is ~1000x — so cache-warmth noise can never flake it.
    assert concurrent["warm_s"] < 0.5 * sequential["warm_s"], (
        f"concurrent warm turnaround {concurrent['warm_s']:.3f}s is not "
        f"under half the sequential {sequential['warm_s']:.3f}s"
    )
