"""Benchmarks for the paper's worked examples (Fig. 1, Fig. 3, Appendix A/B).

These exercise each stage of the pipeline separately — path generation,
Brascamp-Lieb exponent selection, counting, full derivation — so regressions
in any substrate show up as timing or result changes.
"""

from __future__ import annotations

import pytest
import sympy

from repro.analysis import AnalysisConfig, Analyzer
from repro.core import genpaths
from repro.core.bounds import S_SYMBOL
from repro.ir import DFG, ProgramBuilder
from repro.polybench import get_kernel
from repro.sets import card, parse_set, sym


def _example1():
    return (
        ProgramBuilder("example1", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_array("[M] -> { C[t] : 0 <= t < M }")
        .add_statement("[M, N] -> { S[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { S[t, i] -> S[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> C[t] : 0 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .build()
    )


# The three derivation benchmarks below are deliberately store-free: every
# benchmark round must execute the full derivation, not a ~ms store hit
# (warm-store latency has its own benchmark in bench_store.py).


@pytest.mark.benchmark(group="examples")
def test_example1_full_derivation(benchmark):
    """Fig. 1 / Sec. 5.3: the derived bound must be ~ M*N/S."""
    program = _example1()
    result = benchmark(Analyzer(AnalysisConfig(max_depth=0)).analyze, program)
    expected = sym("M") * sym("N") / S_SYMBOL
    assert sympy.simplify(result.asymptotic / expected) == 1


@pytest.mark.benchmark(group="examples")
def test_appendix_a_cholesky(benchmark):
    """Appendix A: cholesky bound ~ N^3 / (6 sqrt(S)), OI_up = 2 sqrt(S)."""
    spec = get_kernel("cholesky")
    result = benchmark(Analyzer(AnalysisConfig(max_depth=0)).analyze, spec.program)
    expected = sym("N") ** 3 / (6 * sympy.sqrt(S_SYMBOL))
    assert sympy.simplify(result.asymptotic / expected) == 1


@pytest.mark.benchmark(group="examples")
def test_appendix_b_lu(benchmark):
    """Appendix B: LU bound ~ 2 N^3 / (3 sqrt(S))."""
    spec = get_kernel("lu")
    result = benchmark(Analyzer(AnalysisConfig(max_depth=0)).analyze, spec.program)
    expected = 2 * sym("N") ** 3 / (3 * sympy.sqrt(S_SYMBOL))
    assert sympy.simplify(result.asymptotic / expected) == 1


@pytest.mark.benchmark(group="examples-substrates")
def test_genpaths_cholesky(benchmark):
    """Path generation (Alg. 3) on the cholesky DFG."""
    dfg = DFG.from_program(get_kernel("cholesky").program)
    paths = benchmark(genpaths, dfg, "S3")
    assert len(paths) >= 3


@pytest.mark.benchmark(group="examples-substrates")
def test_parametric_counting(benchmark):
    """Symbolic counting of the cholesky S3 domain (the barvinok substitute)."""
    domain = parse_set(
        "[N] -> { S3[k, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }"
    )
    result = benchmark(card, domain)
    n = sym("N")
    assert sympy.expand(result - (n ** 3 / 6 - n ** 2 / 2 + n / 3)) == 0
