"""Wavefront validation cost: symbolic (Algorithm 5) vs. concrete CDAG.

The historical concrete validator expands an explicit CDAG at a validation
instance and runs graph searches on it, so its cost grows as O(N^d) with
that instance; the symbolic validator decides the same hypothesis on affine
relations and never looks at an instance at all.  The generated table
(benchmarks/out/wavefront_validation.md) shows the concrete column climbing
with the instance while the symbolic column is one flat number.
"""

from __future__ import annotations

import time

import pytest

from repro.core.wavefront import (
    _validate_reachability_concrete,
    _validate_reachability_symbolic,
)
from repro.ir import DFG
from repro.polybench import get_kernel

from conftest import write_markdown_table

#: Validation-instance sizes for the concrete validator's scaling column.
CONCRETE_SIZES = (4, 8, 12, 16)


def durbin_dfg() -> DFG:
    return DFG.from_program(get_kernel("durbin").program)


@pytest.mark.benchmark(group="wavefront-validation")
def test_symbolic_validation_durbin(benchmark):
    """Symbolic check of durbin's wavefront hypothesis (instance-free)."""
    dfg = durbin_dfg()
    result = benchmark(_validate_reachability_symbolic, dfg, "Y", 1)
    assert result.holds and result.exact


@pytest.mark.benchmark(group="wavefront-validation")
@pytest.mark.parametrize("size", CONCRETE_SIZES)
def test_concrete_validation_durbin(benchmark, size):
    """Concrete check at a growing validation instance (O(N^d) CDAG)."""
    dfg = durbin_dfg()
    ok = benchmark(_validate_reachability_concrete, dfg, "Y", 1, {"N": size})
    assert ok


def test_validation_scaling_table():
    """Emit the side-by-side scaling table for EXPERIMENTS-style review."""
    dfg = durbin_dfg()

    start = time.perf_counter()
    symbolic = _validate_reachability_symbolic(dfg, "Y", 1)
    symbolic_seconds = time.perf_counter() - start
    assert symbolic.holds and symbolic.exact

    rows = []
    for size in CONCRETE_SIZES:
        start = time.perf_counter()
        ok = _validate_reachability_concrete(dfg, "Y", 1, {"N": size})
        concrete_seconds = time.perf_counter() - start
        assert ok
        rows.append({
            "instance": f"N={size}",
            "concrete (s)": f"{concrete_seconds:.4f}",
            "symbolic (s)": f"{symbolic_seconds:.4f} (instance-independent)",
        })
    path = write_markdown_table("wavefront_validation", rows)
    assert path.exists()
