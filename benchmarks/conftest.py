"""Shared fixtures and result collection for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  Besides the
pytest-benchmark timing, the generated rows are written to ``benchmarks/out/``
as Markdown so they can be compared side by side with the paper (this is what
EXPERIMENTS.md references).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import BoundStore

OUTPUT_DIR = pathlib.Path(__file__).parent / "out"


def write_markdown_table(name: str, rows: list[dict]) -> pathlib.Path:
    """Write rows as a Markdown table under benchmarks/out/ and return the path."""
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUTPUT_DIR / f"{name}.md"
    if not rows:
        path.write_text("(no rows)\n")
        return path
    headers = list(rows[0].keys())
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(h, "")) for h in headers) + " |")
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture(scope="session")
def bound_store() -> BoundStore:
    """The persistent bound store every benchmark driver routes through.

    Rooted under ``benchmarks/out/store`` (generated, git-ignored): a kernel
    derived by a previous benchmark run is never re-derived, so a warm
    re-run times the store — what a production service sees — without
    touching the user's real shared store.  Delete the directory (or run
    ``python -m repro cache clear --root benchmarks/out/store``) to time
    cold derivations again; ``bench_store.py`` measures cold vs. warm
    explicitly either way.
    """
    return BoundStore(OUTPUT_DIR / "store")


@pytest.fixture(scope="session")
def fast_kernel_names() -> list[str]:
    """Kernels whose derivation is fast enough for per-benchmark timing."""
    return [
        "gemm", "2mm", "atax", "bicg", "mvt", "gesummv", "trisolv",
        "cholesky", "lu", "covariance", "correlation", "floyd-warshall",
        "durbin", "syrk", "syr2k", "trmm", "symm", "jacobi-1d", "seidel-2d",
        "gemver", "doitgen", "gramschmidt", "nussinov", "deriche",
    ]
