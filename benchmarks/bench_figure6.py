"""Benchmark regenerating Figure 6: OI bounds vs. machine balance.

For every kernel the OI upper bound is instantiated at the PolyBench LARGE
dataset with the paper's architecture parameters (machine balance of 8
flops/word, 256 kB fast memory), an achieved OI is measured by running a
tiled schedule of a scaled-down instance through the LRU cache simulator (the
PLuTo + Dinero stand-in), and the kernel is classified as compute-bound,
bandwidth-bound or undecided.
"""

from __future__ import annotations

import pytest

from repro.core import PAPER_MACHINE_BALANCE
from repro.polybench import analyze_suite, figure6_rows, get_kernel, simulate_tiled_oi, untiled_oi

from conftest import write_markdown_table

#: Kernels with both a fast derivation and a tractable small-instance CDAG.
FIGURE6_KERNELS = [
    "gemm", "atax", "bicg", "mvt", "gesummv", "trisolv",
    "cholesky", "lu", "covariance", "durbin", "syrk", "trmm", "jacobi-1d",
]

SIMULATION_INSTANCES = {
    "gemm": {"Ni": 10, "Nj": 10, "Nk": 10},
    "atax": {"M": 12, "N": 12},
    "bicg": {"M": 12, "N": 12},
    "mvt": {"N": 12},
    "gesummv": {"N": 12},
    "trisolv": {"N": 14},
    "cholesky": {"N": 12},
    "lu": {"N": 10},
    "covariance": {"M": 10, "N": 10},
    "durbin": {"N": 14},
    "syrk": {"N": 10, "M": 10},
    "trmm": {"M": 10, "N": 10},
    "jacobi-1d": {"T": 8, "N": 20},
}


@pytest.mark.benchmark(group="figure6")
def test_figure6_classification(benchmark, bound_store):
    """Regenerate the Figure 6 classification table."""

    def build_rows():
        analyses = analyze_suite(FIGURE6_KERNELS, store=bound_store)
        return figure6_rows(
            analyses,
            simulate=True,
            simulation_instances=SIMULATION_INSTANCES,
            simulation_cache=64,
        )

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    path = write_markdown_table("figure6", rows)
    assert path.exists()
    # Sanity of the reproduction's qualitative shape: gemm-like kernels must
    # have an OI upper bound far above the machine balance, while the
    # low-reuse kernels must sit below it.
    by_kernel = {row["kernel"]: row for row in rows}
    assert by_kernel["gemm"]["OI_up"] > PAPER_MACHINE_BALANCE
    assert by_kernel["atax"]["OI_up"] < PAPER_MACHINE_BALANCE
    assert by_kernel["trisolv"]["OI_up"] < PAPER_MACHINE_BALANCE


@pytest.mark.benchmark(group="figure6-simulation")
@pytest.mark.parametrize("kernel", ["gemm", "cholesky", "jacobi-1d"])
def test_cache_simulation_tiled(benchmark, kernel):
    """Time the cache simulation of a tiled schedule (the Dinero stand-in)."""
    spec = get_kernel(kernel)
    instance = SIMULATION_INSTANCES[kernel]
    oi = benchmark(simulate_tiled_oi, spec, instance, 64)
    assert oi is None or oi > 0


@pytest.mark.benchmark(group="figure6-simulation")
def test_tiled_beats_untiled_gemm(benchmark):
    """Tiling must improve the achieved OI of gemm (the paper's motivation)."""
    spec = get_kernel("gemm")
    instance = {"Ni": 12, "Nj": 12, "Nk": 12}

    def both():
        return simulate_tiled_oi(spec, instance, 64), untiled_oi(spec, instance, 64)

    tiled, untiled = benchmark.pedantic(both, rounds=1, iterations=1)
    assert tiled is not None and untiled is not None
    assert tiled >= untiled
