"""Set-algebra hot-path attribution and the optimised-vs-reference speedup.

Two measurements over cold full-suite derivations:

* **Attribution** — one in-process serial run of the whole PolyBench suite
  with :mod:`repro.perf` counting wall-time per subsystem (linear algebra,
  Fourier-Motzkin, counting, relation closure, pebble simulation) and
  hit/miss rates for every memo cache.  The tables are written to
  ``benchmarks/out/profile_subsystems.md`` and
  ``benchmarks/out/profile_memo_caches.md`` — this is the data that decided
  which loops got memoisation and compiled kernels in the first place
  (rational linear algebra dominates: the subspace-lattice closure of
  Lemma 3.12 is the derivation's hot loop).

* **Speedup** — the same suite derived cold in two fresh subprocesses: once
  with every optimisation off (``REPRO_SETS_BACKEND=pure`` restores the
  reference Fraction/loop implementations, ``REPRO_SETS_MEMO=0`` disables
  the content-hash caches *and* the on-object constraint canonical-form
  caching), once with the defaults (auto backend + memo).  The two legs
  must produce byte-identical bounds — the optimised layer is perf-only —
  and the fast leg must be >= ``TARGET_SPEEDUP`` times faster
  (``benchmarks/out/profile_speedup.md``).

Methodology notes: fresh subprocesses for the speedup (in-process
back-to-back runs would share sympy's warmed global caches); the speedup
assertion is skipped on single-core containers, where scheduler contention
drowns the signal — the tables are still written for inspection.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from conftest import write_markdown_table

#: Cold-suite speedup the optimised path (memo + compiled kernels) must
#: reach over the reference path on a machine with cores to spare.
TARGET_SPEEDUP = 1.5

_CHILD_SNIPPET = """
import json, time
import sympy
from repro.polybench.suite import analyze_suite
start = time.perf_counter()
analyses = analyze_suite(store=None, executor="serial")
wall = time.perf_counter() - start
bounds = {a.spec.name: sympy.sstr(a.result.expression) for a in analyses}
print(json.dumps({"seconds": wall, "bounds": bounds}))
"""


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _suite_cold(overrides: dict[str, str]) -> tuple[float, dict[str, str]]:
    """Cold full-suite derivation in a fresh interpreter; (wall, bounds)."""
    env = dict(os.environ)
    env.pop("REPRO_SETS_BACKEND", None)
    env.pop("REPRO_SETS_MEMO", None)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH")])
    )
    env.update(overrides)
    output = subprocess.run(
        [sys.executable, "-c", _CHILD_SNIPPET],
        env=env, check=True, capture_output=True, text=True,
    )
    payload = json.loads(output.stdout.strip().splitlines()[-1])
    return float(payload["seconds"]), payload["bounds"]


def test_subsystem_attribution():
    """Profile the whole suite cold, in-process, and tabulate the shares."""
    from repro import perf
    from repro.polybench.suite import analyze_suite
    from repro.sets import memo

    perf.reset()
    memo.clear_all()
    start = time.perf_counter()
    analyze_suite(store=None, executor="serial")
    wall = time.perf_counter() - start
    snapshot = perf.snapshot()

    rows = []
    for timing in snapshot.timings:
        rows.append({
            "subsystem": timing.name,
            "calls": timing.calls,
            "inclusive (s)": round(timing.inclusive_s, 2),
            "exclusive (s)": round(timing.exclusive_s, 2),
            "share of wall": f"{100.0 * timing.exclusive_s / wall:.1f}%",
        })
    rows.append({
        "subsystem": "(wall)", "calls": "",
        "inclusive (s)": round(wall, 2), "exclusive (s)": round(wall, 2),
        "share of wall": "100.0%",
    })
    path = write_markdown_table("profile_subsystems", rows)

    cache_rows = [{
        "cache": c.name, "hits": c.hits, "misses": c.misses,
        "hit rate": f"{100.0 * c.hit_rate:.1f}%", "entries": c.size,
    } for c in snapshot.caches]
    cache_path = write_markdown_table("profile_memo_caches", cache_rows)
    print(f"wrote {path} and {cache_path}")

    # Exclusive columns partition instrumented time: they can never sum past
    # the wall clock (small tolerance for timer granularity).
    assert snapshot.total_exclusive_s <= wall * 1.05
    linalg = snapshot.timing("linalg")
    assert linalg is not None and linalg.calls > 0
    # Memoisation must actually engage on the suite.
    assert snapshot.memo_hits > 0


def test_optimised_path_speedup():
    """Cold suite: defaults vs reference path — identical bounds, faster."""
    slow_s, slow_bounds = _suite_cold(
        {"REPRO_SETS_BACKEND": "pure", "REPRO_SETS_MEMO": "0"}
    )
    fast_s, fast_bounds = _suite_cold({})

    speedup = slow_s / fast_s if fast_s > 0 else 1.0
    write_markdown_table("profile_speedup", [{
        "leg": "reference (pure backend, memo off)",
        "wall (s)": round(slow_s, 2), "speedup": "1.00x",
    }, {
        "leg": "optimised (auto backend, memo on)",
        "wall (s)": round(fast_s, 2), "speedup": f"{speedup:.2f}x",
    }])

    # Byte-identical bounds across the legs: the optimised layer may never
    # change a derived formula, whatever the timing says.
    assert fast_bounds == slow_bounds

    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s) available: timing too contended for a "
            f"reliable speedup assertion (measured {speedup:.2f}x; table "
            "written for inspection)"
        )
    assert speedup >= TARGET_SPEEDUP, (
        f"expected the optimised set-algebra path to be >= {TARGET_SPEEDUP}x "
        f"faster on the cold suite, got {speedup:.2f}x "
        f"({slow_s:.1f}s -> {fast_s:.1f}s)"
    )
