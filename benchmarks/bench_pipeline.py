"""Task-pipeline executors: serial vs thread vs process wall-time per kernel.

Every (statement x strategy x depth) derivation task is independent, so a
multi-statement kernel's derivation should approach ``total / max_task``
wall-time on a parallel executor.  This benchmark derives each kernel cold
under all three executors and tabulates the wall times and speedups
(``benchmarks/out/pipeline_executors.md``).

Methodology: every (kernel, executor) cell runs in a **fresh Python
subprocess**.  In-process back-to-back measurement would let sympy's global
caches, warmed by the first executor's run, subsidise the later ones — the
fresh-process numbers are what a user's cold run actually sees.

The >= 1.3x speedup assertion only runs on machines with enough cores: on a
single-core container the executors cannot beat serial by construction (the
table still shows their overhead staying small, which is itself worth
watching).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from conftest import write_markdown_table

#: Multi-statement / multi-task kernels (several independent tasks each),
#: plus one single-task kernel as the no-parallelism-available contrast.
KERNELS = ("gramschmidt", "durbin", "ludcmp", "fdtd-2d", "adi", "correlation")
SINGLE_TASK_KERNELS = ("correlation",)

MODES = (("serial", 1), ("thread", 4), ("process", 4))

#: Speedup the parallel executors must reach on at least this many of the
#: multi-task kernels (only asserted when the machine has cores to spare).
TARGET_SPEEDUP = 1.3
TARGET_KERNELS = 2

_CHILD_SNIPPET = """
import json, time
from repro.analysis import AnalysisConfig, Analyzer
from repro.polybench import get_kernel
spec = get_kernel({kernel!r})
config = AnalysisConfig(max_depth=spec.max_depth, executor={executor!r}, n_jobs={jobs})
start = time.perf_counter()
Analyzer(config).analyze(spec.program)  # no store: always a full derivation
print(json.dumps({{"seconds": time.perf_counter() - start}}))
"""


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def derive_cold(kernel: str, executor: str, jobs: int) -> float:
    """Wall-time of one cold derivation in a fresh interpreter."""
    code = _CHILD_SNIPPET.format(kernel=kernel, executor=executor, jobs=jobs)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH")])
    )
    output = subprocess.run(
        [sys.executable, "-c", code], env=env, check=True, capture_output=True, text=True
    )
    return float(json.loads(output.stdout.strip().splitlines()[-1])["seconds"])


def test_pipeline_executor_speedups():
    rows = []
    speedups: dict[str, float] = {}
    for kernel in KERNELS:
        times = {name: derive_cold(kernel, name, jobs) for name, jobs in MODES}
        best = min(times["thread"], times["process"])
        speedup = times["serial"] / best if best > 0 else 1.0
        if kernel not in SINGLE_TASK_KERNELS:
            speedups[kernel] = speedup
        rows.append({
            "kernel": kernel,
            "serial (s)": round(times["serial"], 2),
            "thread x4 (s)": round(times["thread"], 2),
            "process x4 (s)": round(times["process"], 2),
            "best speedup": f"{speedup:.2f}x",
        })
    path = write_markdown_table("pipeline_executors", rows)
    print(f"wrote {path}")

    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s) available: parallel executors cannot "
            "beat serial here; table written for inspection"
        )
    reached = [k for k, s in speedups.items() if s >= TARGET_SPEEDUP]
    assert len(reached) >= TARGET_KERNELS, (
        f"expected >= {TARGET_SPEEDUP}x on >= {TARGET_KERNELS} multi-task "
        f"kernels with {cores} cores, got {speedups}"
    )
