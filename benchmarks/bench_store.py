"""Benchmark the persistent bound store: cold vs. warm suite runs.

The headline property of the store-backed pipeline — a parametric bound is
derived once, then reused by every later run — is demonstrated here on the
full PolyBench suite: the cold pass populates a fresh store, the warm pass
must perform **zero** derivations and come back an order of magnitude
faster (it only reloads JSON entries and re-parses the sympy expressions).
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import BoundStore, derivation_count, reset_derivation_count
from repro.polybench import analyze_suite, kernel_names

from conftest import write_markdown_table


@pytest.mark.benchmark(group="store")
def test_suite_warm_store_is_order_of_magnitude_faster(benchmark, tmp_path):
    """Warm full-suite run: zero derivations, >= 10x faster than the cold run.

    Uses the whole registered suite (not the fast subset): the store's value
    shows on the expensive derivations, where reloading an entry costs
    milliseconds against seconds of derivation.
    """
    store = BoundStore(tmp_path / "store")
    names = kernel_names()

    reset_derivation_count()
    cold_start = time.perf_counter()
    cold = analyze_suite(names, store=store)
    cold_elapsed = time.perf_counter() - cold_start
    cold_derivations = reset_derivation_count()
    assert cold_derivations == len(names)

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(
        analyze_suite, args=(names,), kwargs={"store": store},
        rounds=1, iterations=1,
    )
    warm_elapsed = time.perf_counter() - warm_start

    assert derivation_count() == 0, "warm store run must not derive anything"
    assert [a.result.asymptotic for a in warm] == [a.result.asymptotic for a in cold]
    assert warm_elapsed * 10 <= cold_elapsed, (
        f"warm run ({warm_elapsed:.3f}s) not >=10x faster than cold "
        f"({cold_elapsed:.3f}s)"
    )

    write_markdown_table("store_cold_vs_warm", [{
        "kernels": len(names),
        "cold (s)": round(cold_elapsed, 3),
        "warm (s)": round(warm_elapsed, 3),
        "speedup": round(cold_elapsed / max(warm_elapsed, 1e-9), 1),
        "warm derivations": derivation_count(),
    }])


@pytest.mark.benchmark(group="store-ops")
def test_store_hit_latency(benchmark, tmp_path):
    """Latency of a single store hit (read + schema check + deserialise)."""
    from repro.polybench import analyze_kernel

    store = BoundStore(tmp_path / "store")
    analyze_kernel("gemm", store=store)  # populate
    key_count = len(store)
    assert key_count == 1

    result = benchmark(analyze_kernel, "gemm", store=store)
    assert result.result.asymptotic is not None
    assert len(store) == key_count
