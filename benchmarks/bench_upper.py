"""Benchmark the tiling-search upper-bound engine: cold vs. warm searches.

The upper-bound half of the tightness sandwich simulates every candidate
tiling through the cache model — by far the most expensive per-kernel work
in the report.  The store memoises each (program, instance, S, tile, policy)
simulation, so a warm search must perform **zero** simulations and come back
much faster than the cold pass that populated the store.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import BoundStore
from repro.polybench import get_kernel
from repro.upper import (
    reset_simulation_count,
    search_upper_bound,
    simulation_count,
)

from conftest import write_markdown_table

GEMM_INSTANCE = {"Ni": 8, "Nj": 8, "Nk": 8}
CACHE_WORDS = 32


@pytest.mark.benchmark(group="upper")
def test_warm_search_performs_zero_simulations(benchmark, tmp_path):
    """Warm tiling search: zero simulations, identical result, much faster."""
    spec = get_kernel("gemm")
    store = BoundStore(tmp_path / "store")

    reset_simulation_count()
    cold_start = time.perf_counter()
    cold = search_upper_bound(
        spec.program, GEMM_INSTANCE, cache_words=CACHE_WORDS, store=store
    )
    cold_elapsed = time.perf_counter() - cold_start
    cold_simulations = simulation_count()
    assert cold_simulations == len(cold.simulations) > 0

    reset_simulation_count()
    warm_start = time.perf_counter()
    warm = benchmark.pedantic(
        search_upper_bound,
        args=(spec.program, GEMM_INSTANCE),
        kwargs={"cache_words": CACHE_WORDS, "store": store},
        rounds=1, iterations=1,
    )
    warm_elapsed = time.perf_counter() - warm_start

    assert simulation_count() == 0, "warm search must not simulate anything"
    assert warm.to_dict() == cold.to_dict()
    assert warm.best is not None

    write_markdown_table("upper_cold_vs_warm", [{
        "kernel": "gemm",
        "instance": "x".join(str(v) for v in GEMM_INSTANCE.values()),
        "cache words": CACHE_WORDS,
        "candidates": cold.candidates,
        "simulations (cold)": cold_simulations,
        "best tile": "x".join(str(e) for e in cold.best.shape),
        "best loads": cold.best.loads,
        "cold (s)": round(cold_elapsed, 3),
        "warm (s)": round(warm_elapsed, 3),
        "speedup": round(cold_elapsed / max(warm_elapsed, 1e-9), 1),
    }])


@pytest.mark.benchmark(group="upper-ops")
def test_single_tiling_simulation_latency(benchmark):
    """Latency of one candidate evaluation (schedule build + LRU simulation)."""
    from repro.upper.search import _simulate_payload

    spec = get_kernel("gemm")
    payload = (
        spec.program,
        tuple(sorted(GEMM_INSTANCE.items())),
        CACHE_WORDS,
        (4, 4, 1),
        "lru",
        None,
    )
    result = benchmark(_simulate_payload, payload)
    assert result.simulated
    assert result.loads > 0
