"""Benchmark regenerating Table 2 / Appendix C: complete lower-bound formulae.

Produces, for each kernel, the complete symbolic expression Q_low (with floor
and max) and its asymptotically dominant term — the two columns of the
paper's Table 2.
"""

from __future__ import annotations

import pytest

from repro.polybench import analyze_kernel, analyze_suite, table2_rows

from conftest import write_markdown_table

KERNELS = [
    "gemm", "2mm", "cholesky", "lu", "trisolv", "atax", "mvt", "covariance",
    "durbin", "floyd-warshall", "syrk", "trmm", "jacobi-1d", "seidel-2d",
]


@pytest.mark.benchmark(group="table2")
def test_table2_formulae(benchmark, bound_store):
    """Regenerate the complete + asymptotic formulae for a kernel subset."""

    def build_table():
        return table2_rows(analyze_suite(KERNELS, store=bound_store))

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    path = write_markdown_table("table2", rows)
    assert path.exists()
    assert all(row["Q_low (asymptotic)"] for row in rows)


@pytest.mark.benchmark(group="table2-single")
@pytest.mark.parametrize("kernel", ["gemm", "cholesky", "jacobi-1d", "durbin"])
def test_table2_single_formula(benchmark, kernel):
    """Time formula extraction (derivation + simplification) per kernel —
    store-free so every round measures the derivation, not a store hit."""
    analysis = benchmark(analyze_kernel, kernel)
    assert analysis.result.expression is not None
