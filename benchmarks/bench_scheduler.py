"""Barrier pipeline vs streaming scheduler: time-to-first-result and total.

The event-driven scheduler's promise is not a faster batch — the same tasks
run on the same executor — but a faster *first answer*: `analyze_stream`
yields each kernel's bound the moment its last task lands, while the
barrier-shaped `analyze_many` hands everything back only when the whole
batch is done.  This benchmark measures both shapes cold on the same kernel
batch and tabulates time-to-first-result (TTFR) against total wall time
(``benchmarks/out/scheduler_streaming.md``).

Methodology: each (mode, executor) cell runs in a **fresh Python
subprocess** (same reasoning as ``bench_pipeline.py``: sympy's global caches
must not let the first run subsidise the second), with the store disabled so
every run is a full derivation.

The acceptance assertion — streaming TTFR strictly below the barrier's
full-batch wall time — only runs with >= 2 cores: it holds by construction
whenever the first-finishing kernel is not also the whole batch, but on a
single-core container the timing noise of interleaved executors is not
worth gating on (the table is still written for inspection).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from conftest import write_markdown_table

#: A lopsided batch, biggest kernel deliberately first: the barrier must
#: wait for it, the streaming scheduler hands the small kernels out early.
KERNELS = ("durbin", "gramschmidt", "bicg", "mvt", "atax", "gemm")

MODES = (("serial", 1), ("thread", 4))

_CHILD_SNIPPET = """
import json, time
from repro.analysis import AnalysisConfig, Analyzer
from repro.polybench import get_kernel

kernels = {kernels!r}
programs = [get_kernel(name).program for name in kernels]
config = AnalysisConfig(max_depth=1, executor={executor!r}, n_jobs={jobs})
analyzer = Analyzer(config)  # no store: always a full cold derivation

start = time.perf_counter()
first = None
if {streaming!r}:
    first_name = None
    for name, result in analyzer.analyze_stream(programs):
        if first is None:
            first = time.perf_counter() - start
            first_name = name
else:
    results = analyzer.analyze_many(programs)
    first = time.perf_counter() - start  # barrier: nothing before the end
    first_name = results[0].program_name
total = time.perf_counter() - start
print(json.dumps({{"ttfr": first, "total": total, "first": first_name}}))
"""


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_cold(streaming: bool, executor: str, jobs: int) -> dict:
    code = _CHILD_SNIPPET.format(
        kernels=list(KERNELS), executor=executor, jobs=jobs, streaming=streaming
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.join(os.path.dirname(__file__), "..", "src"),
                      env.get("PYTHONPATH")])
    )
    output = subprocess.run(
        [sys.executable, "-c", code], env=env, check=True, capture_output=True, text=True
    )
    return json.loads(output.stdout.strip().splitlines()[-1])


def test_streaming_time_to_first_result():
    rows = []
    measured: dict[str, dict[str, dict]] = {}
    for executor, jobs in MODES:
        barrier = run_cold(False, executor, jobs)
        streaming = run_cold(True, executor, jobs)
        measured[executor] = {"barrier": barrier, "streaming": streaming}
        rows.append({
            "executor": f"{executor} x{jobs}",
            "barrier total (s)": round(barrier["total"], 2),
            "stream TTFR (s)": round(streaming["ttfr"], 2),
            "stream total (s)": round(streaming["total"], 2),
            "first result": streaming["first"],
            "TTFR speedup": f"{barrier['total'] / max(streaming['ttfr'], 1e-9):.1f}x",
        })
    path = write_markdown_table("scheduler_streaming", rows)
    print(f"wrote {path}")

    # The priority rule should surface a small kernel first, not the big
    # lead kernel the batch starts with — on every executor.
    for executor, cells in measured.items():
        assert cells["streaming"]["first"] != KERNELS[0], (
            f"{executor}: expected a small kernel to stream first, got "
            f"{cells['streaming']['first']}"
        )

    cores = _available_cores()
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s): TTFR timing too noisy to gate on; "
            "table written for inspection"
        )
    for executor, cells in measured.items():
        assert cells["streaming"]["ttfr"] < cells["barrier"]["total"], (
            f"{executor}: streaming TTFR {cells['streaming']['ttfr']:.2f}s must "
            f"beat the barrier's full-batch {cells['barrier']['total']:.2f}s"
        )
