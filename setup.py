"""Setuptools build script.

The execution environment has no ``wheel`` package and no network access, so
``pip install -e .`` cannot build the PEP 517 editable wheel.  Declaring the
metadata here lets ``python setup.py develop`` (and the legacy
``pip install -e . --no-use-pep517`` path) install the package, including the
``repro`` console entry point for the CLI.
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro-iolb",
    version="1.10.0",
    description=(
        "Reproduction of IOLB (PLDI 2020): automated parametric I/O "
        "lower bounds and operational-intensity upper bounds for affine programs"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "sympy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "pytest-cov"],
        # Optional exact relation backend for the Algorithm-5 wavefront
        # validation (auto-selected by repro.rel when importable).
        "isl": ["islpy"],
        # Optional set-algebra accelerators (auto-selected by
        # repro.sets.backend when importable; REPRO_SETS_BACKEND overrides).
        "fast": ["numpy"],
        "jit": ["numpy", "numba"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.__main__:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
    ],
)
