"""Setuptools shim.

The execution environment has no ``wheel`` package and no network access, so
``pip install -e .`` cannot build the PEP 517 editable wheel.  This shim lets
``python setup.py develop`` (and the legacy ``pip install -e . --no-use-pep517``
path) install the package from ``pyproject.toml`` metadata instead.
"""

from setuptools import setup

setup()
