"""Tests for the program DSL, DFG construction and explicit CDAG expansion."""

import pytest

from repro.ir import CDAG, DFG, ProgramBuilder
from repro.sets import sym


def example1_program():
    """The paper's Fig. 1 example: A[i] = A[i] * C[t]."""
    return (
        ProgramBuilder("example1", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_array("[M] -> { C[t] : 0 <= t < M }")
        .add_statement("[M, N] -> { S[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { S[t, i] -> S[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> C[t] : 0 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .build()
    )


class TestProgramBuilder:
    def test_basic_structure(self):
        program = example1_program()
        assert set(program.arrays) == {"A", "C"}
        assert set(program.statements) == {"S"}
        assert len(program.dependences) == 3
        assert program.params == ("M", "N")

    def test_input_size(self):
        program = example1_program()
        assert program.input_size() == sym("M") + sym("N")

    def test_total_flops(self):
        program = example1_program()
        assert program.total_flops() == sym("M") * sym("N")

    def test_unknown_dependence_source_rejected(self):
        builder = (
            ProgramBuilder("bad", ["N"])
            .add_statement("[N] -> { S[i] : 0 <= i < N }")
            .add_dependence("[N] -> { S[i] -> Z[i] : 1 <= i < N }")
        )
        with pytest.raises(ValueError):
            builder.build()

    def test_dependence_sink_must_be_statement(self):
        builder = (
            ProgramBuilder("bad", ["N"])
            .add_array("[N] -> { A[i] : 0 <= i < N }")
            .add_dependence("[N] -> { A[i] -> A[i] : 1 <= i < N }")
        )
        with pytest.raises(ValueError):
            builder.build()

    def test_instance_values_requires_all_params(self):
        program = example1_program()
        with pytest.raises(KeyError):
            program.instance_values({"M": 3})


class TestDFG:
    def test_nodes_and_edges(self):
        dfg = DFG.from_program(example1_program())
        assert set(dfg.statement_nodes()) == {"S"}
        assert set(dfg.array_nodes()) == {"A", "C"}
        assert len(dfg.edges_into("S")) == 3
        assert dfg.predecessors("S") == sorted(["S", "C", "A"]) or set(
            dfg.predecessors("S")
        ) == {"S", "C", "A"}

    def test_topological_statements_handles_self_loops(self):
        dfg = DFG.from_program(example1_program())
        assert dfg.topological_statements() == ["S"]

    def test_multi_statement_order(self):
        program = (
            ProgramBuilder("two", ["N"])
            .add_array("[N] -> { A[i] : 0 <= i < N }")
            .add_statement("[N] -> { S1[i] : 0 <= i < N }")
            .add_statement("[N] -> { S2[i] : 0 <= i < N }")
            .add_dependence("[N] -> { S1[i] -> A[i] : 0 <= i < N }")
            .add_dependence("[N] -> { S2[i] -> S1[i] : 0 <= i < N }")
            .build()
        )
        dfg = DFG.from_program(program)
        order = dfg.topological_statements()
        assert order.index("S1") < order.index("S2")


class TestCDAG:
    def test_vertex_counts_match_fig1(self):
        # Fig. 1c of the paper: M=6, N=7 gives 42 compute vertices and 13 inputs.
        cdag = CDAG.expand(example1_program(), {"M": 6, "N": 7})
        assert len(cdag.compute_vertices()) == 42
        assert len(cdag.inputs) == 13

    def test_edges_follow_dependences(self):
        cdag = CDAG.expand(example1_program(), {"M": 3, "N": 2})
        assert cdag.graph.has_edge(("S", (0, 1)), ("S", (1, 1)))
        assert cdag.graph.has_edge(("C", (2,)), ("S", (2, 0)))
        assert cdag.graph.has_edge(("A", (1,)), ("S", (0, 1)))
        assert not cdag.graph.has_edge(("S", (0, 0)), ("S", (0, 1)))

    def test_in_set_and_sources(self):
        cdag = CDAG.expand(example1_program(), {"M": 4, "N": 3})
        column = {("S", (t, 0)) for t in range(1, 4)}
        in_set = cdag.in_set(column)
        assert ("S", (0, 0)) in in_set
        assert all(v[0] == "C" or v == ("S", (0, 0)) for v in in_set)
        assert cdag.sources(column) == {("S", (1, 0))}

    def test_valid_schedule_detection(self):
        cdag = CDAG.expand(example1_program(), {"M": 3, "N": 2})
        good = sorted(cdag.compute_vertices(), key=lambda v: v[1])
        assert cdag.is_valid_schedule(good)
        bad = list(reversed(good))
        assert not cdag.is_valid_schedule(bad)

    def test_topological_order_is_valid(self):
        cdag = CDAG.expand(example1_program(), {"M": 4, "N": 4})
        compute = set(cdag.compute_vertices())
        order = [v for v in cdag.topological_order() if v in compute]
        assert cdag.is_valid_schedule(order)
