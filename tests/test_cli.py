"""CLI surface: machine-readable kernel listing and the streaming suite.

Complements the subprocess smoke tests in CI: these run ``main`` in-process
and assert the contracts service clients and shell pipelines rely on.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis import load_results
from repro.polybench import all_kernels, kernel_names


class TestKernelsJson:
    def test_document_lists_every_kernel_with_discovery_fields(self, capsys):
        assert main(["kernels", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == 1
        entries = document["kernels"]
        assert [entry["name"] for entry in entries] == kernel_names()
        for entry, spec in zip(entries, all_kernels()):
            assert entry["category"] == spec.category
            assert entry["max_depth"] == spec.max_depth
            assert entry["parameters"] == list(spec.program.params)
            assert entry["large_instance"] == dict(spec.large_instance)
            assert entry["paper_oi_upper"] == spec.paper_oi_upper

    def test_plain_listing_unchanged(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "max_depth=" in out


class TestSuiteStreaming:
    def test_rows_print_before_summary_and_json_is_request_ordered(
        self, tmp_path, capsys
    ):
        json_path = tmp_path / "bounds.json"
        assert main([
            "suite", "--kernels", "durbin", "gemm", "--max-depth", "0",
            "--cache-dir", str(tmp_path / "store"), "--json", str(json_path),
        ]) == 0
        lines = capsys.readouterr().out.splitlines()

        header = next(i for i, line in enumerate(lines) if line.startswith("kernel"))
        summary = next(i for i, line in enumerate(lines) if line.startswith("derivations:"))
        rows = [line.split()[0] for line in lines[header + 2 : summary]]
        # Streaming contract: result rows appear (in completion order)
        # before the end-of-run summary, not after it.
        assert sorted(rows) == ["durbin", "gemm"]

        results = load_results(json_path)
        # The persisted document follows the *request* order regardless of
        # the completion order printed above.
        assert list(results) == ["durbin", "gemm"]

    def test_duplicate_kernel_requests_keep_the_pre_streaming_shape(
        self, tmp_path, capsys
    ):
        """`--kernels gemm gemm` derives once but reports one result per
        requested kernel, exactly as the barrier-era CLI did."""
        json_path = tmp_path / "bounds.json"
        assert main([
            "suite", "--kernels", "gemm", "gemm", "--max-depth", "0",
            "--cache-dir", str(tmp_path / "store"), "--json", str(json_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 2 results" in out
        assert list(load_results(json_path)) == ["gemm"]  # document keys by name

    def test_warm_run_reports_zero_derivations(self, tmp_path, capsys):
        args = [
            "suite", "--kernels", "gemm", "--max-depth", "0",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "derivations: 0" in capsys.readouterr().out


class TestProfile:
    def test_table_reports_wall_time_and_subsystems(self, capsys):
        assert main(["profile", "--kernels", "gemm"]) == 0
        out = capsys.readouterr().out
        assert "cold derivation of 1 kernel(s)" in out
        assert "linalg" in out and "wall" in out
        assert "memo cache" in out

    def test_json_document_shape(self, capsys):
        assert main(["profile", "--kernels", "gemm", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kernels"] == ["gemm"]
        assert document["wall_s"] > 0
        assert document["backend"] in {"pure", "numpy", "numba"}
        names = [entry["name"] for entry in document["subsystems"]]
        assert "linalg" in names
        assert any(cache["name"] == "linalg.rref" for cache in document["caches"])

    def test_output_file_receives_the_table(self, tmp_path, capsys):
        report = tmp_path / "profile.txt"
        assert main(["profile", "--kernels", "gemm", "--output", str(report)]) == 0
        capsys.readouterr()
        text = report.read_text()
        assert "cold derivation" in text and "subsystem" in text

    def test_unknown_kernel_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "--kernels", "nonexistent-kernel"])


class TestServeArgs:
    def test_serve_is_registered_with_defaults(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port is None
        assert args.host == "127.0.0.1"
        assert args.executor is None and args.jobs is None

    def test_serve_rejects_unknown_executor(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "fibers"])
