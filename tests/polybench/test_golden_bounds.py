"""Golden-bound regression tests: the symbolic Table 1/2 results, locked.

Every registered PolyBench kernel's asymptotic lower bound ``Q_low`` and
operational-intensity upper bound ``OI_up`` are checked against the
checked-in ``golden_bounds.json``.  Any change to the derivation stack (the
set substrate, the K-partition search, the wavefront detector, the
decomposition lemma, simplification) that shifts a published formula fails
here with a per-kernel diff.

To regenerate the golden file after an *intentional* change::

    PYTHONPATH=src python tests/polybench/test_golden_bounds.py --regenerate

then review the JSON diff kernel by kernel before committing it.

This module also holds the warm-store acceptance test: the second suite run
against the session store must perform zero derivations and be at least an
order of magnitude faster than the cold run.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest
import sympy

from repro.analysis import derivation_count, reset_derivation_count
from repro.polybench import analyze_suite, kernel_names
from repro.sets import sym

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_bounds.json"


def parse_golden_expr(text: str, parameters) -> sympy.Expr:
    """Parse a golden formula with the library's (integer) parameter symbols."""
    local = {name: sym(name) for name in [*parameters, "S"]}
    local["sqrt"] = sympy.sqrt
    return sympy.sympify(text, locals=local)


@pytest.fixture(scope="session")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenBounds:
    def test_golden_file_covers_exactly_the_registered_kernels(self, golden):
        assert sorted(golden) == kernel_names()

    @pytest.mark.parametrize("name", kernel_names())
    def test_asymptotic_bound_matches_golden(self, name, golden, cold_suite):
        result = cold_suite.by_name[name].result
        expected = parse_golden_expr(golden[name]["asymptotic"], result.parameters)
        difference = sympy.simplify(result.asymptotic - expected)
        assert difference == 0, (
            f"{name}: asymptotic Q_low drifted from the golden value\n"
            f"  golden : {golden[name]['asymptotic']}\n"
            f"  derived: {sympy.sstr(result.asymptotic)}"
        )

    @pytest.mark.parametrize("name", kernel_names())
    def test_oi_upper_bound_matches_golden(self, name, golden, cold_suite):
        result = cold_suite.by_name[name].result
        expected = parse_golden_expr(golden[name]["oi_upper"], result.parameters)
        difference = sympy.simplify(result.oi_upper_bound() - expected)
        assert difference == 0, (
            f"{name}: OI_up drifted from the golden value\n"
            f"  golden : {golden[name]['oi_upper']}\n"
            f"  derived: {sympy.sstr(result.oi_upper_bound())}"
        )


class TestExpansionFreeDerivation:
    """Acceptance: the default (symbolic-validation) derivation of the whole
    PolyBench suite never expands a concrete CDAG — validation cost is
    independent of any instance size."""

    def test_cold_suite_performs_zero_cdag_expansions(self, cold_suite):
        assert cold_suite.cdag_expansions == 0, (
            f"the suite derivation expanded {cold_suite.cdag_expansions} "
            "CDAG(s); symbolic wavefront validation must be expansion-free"
        )

    def test_durbin_wavefront_bound_is_symbolically_certified(self, cold_suite):
        result = cold_suite.by_name["durbin"].result
        wavefront = [b for b in result.sub_bounds if b.method == "wavefront"]
        assert wavefront, "durbin must keep its wavefront bound"
        assert all(
            "symbolic validation (exact closure)" in bound.notes
            for bound in wavefront
        )


class TestWarmStoreSuite:
    """Acceptance: a warm suite run derives nothing and is >= 10x faster."""

    def test_warm_suite_run_derives_nothing_and_is_fast(self, cold_suite, suite_store):
        assert cold_suite.derivations == len(kernel_names())

        reset_derivation_count()
        start = time.perf_counter()
        warm = analyze_suite(store=suite_store)
        warm_seconds = time.perf_counter() - start

        assert derivation_count() == 0, "warm store run must not derive anything"
        cold_by_name = cold_suite.by_name
        for analysis in warm:
            assert analysis.result.asymptotic == (
                cold_by_name[analysis.spec.name].result.asymptotic
            )
        # 5x, not 10x: the native closed-form counting engine cut the cold
        # suite itself to a handful of seconds, so the old 10x margin left
        # almost no headroom between store round-trips and a fast cold run.
        assert warm_seconds * 5 <= cold_suite.seconds, (
            f"warm suite run ({warm_seconds:.2f}s) not >=5x faster than the "
            f"cold run ({cold_suite.seconds:.2f}s)"
        )


def regenerate() -> None:
    analyses = analyze_suite()
    payload = {
        analysis.spec.name: {
            "asymptotic": sympy.sstr(analysis.result.asymptotic),
            "oi_upper": sympy.sstr(analysis.result.oi_upper_bound()),
        }
        for analysis in analyses
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(payload)} golden bounds to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
