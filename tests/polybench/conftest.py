"""Session-scoped suite fixtures shared by the PolyBench test modules.

The full-suite derivation is expensive (~30 s), so it runs at most once per
test session, routed through a session-private :class:`BoundStore`.  The
golden-bound regression tests read the results; the warm-run test re-runs
the suite against the now-populated store and asserts it derives nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import pytest

from repro.analysis import BoundStore, reset_derivation_count
from repro.ir import reset_expand_count
from repro.polybench import KernelAnalysis, analyze_suite


@dataclass
class ColdSuiteRun:
    """Result of the one cold full-suite derivation of this test session."""

    analyses: list[KernelAnalysis]
    seconds: float
    derivations: int
    cdag_expansions: int

    @property
    def by_name(self) -> dict[str, KernelAnalysis]:
        return {analysis.spec.name: analysis for analysis in self.analyses}


@pytest.fixture(scope="session")
def suite_store(tmp_path_factory) -> BoundStore:
    """A session-private bound store (no cross-run or cross-suite state)."""
    return BoundStore(tmp_path_factory.mktemp("bound-store"))


@pytest.fixture(scope="session")
def cold_suite(suite_store) -> ColdSuiteRun:
    """Derive every registered kernel once, cold, through the session store."""
    reset_derivation_count()
    reset_expand_count()
    start = time.perf_counter()
    analyses = analyze_suite(store=suite_store)
    seconds = time.perf_counter() - start
    return ColdSuiteRun(analyses, seconds, reset_derivation_count(), reset_expand_count())
