"""Integration tests: derived bounds for representative PolyBench kernels.

These check the *shape* of the reproduced Table 1 — which kernels get a
sqrt(S)-like OI upper bound, which are input-bound, which are wavefront
limited — and the soundness of the bounds against simulated schedules.
"""

import pytest
import sympy

from repro.core.bounds import S_SYMBOL
from repro.ir import CDAG
from repro.pebble import lexicographic_schedule, simulate_schedule
from repro.polybench import analyze_kernel, get_kernel
from repro.sets import sym


def oi_degree_in_sqrt_s(expr) -> sympy.Expr:
    """Exponent of S in an OI expression (1/2 for sqrt(S)-like bounds)."""
    return sympy.degree(sympy.Poly(sympy.powsimp(expr ** 2), S_SYMBOL)) / 2


class TestCategory1Tileable:
    def test_gemm_oi_is_sqrt_s(self):
        analysis = analyze_kernel("gemm")
        assert sympy.simplify(analysis.oi_upper - sympy.sqrt(S_SYMBOL)) == 0

    def test_cholesky_matches_appendix_a(self):
        analysis = analyze_kernel("cholesky")
        expected = sym("N") ** 3 / (6 * sympy.sqrt(S_SYMBOL))
        assert sympy.simplify(analysis.result.asymptotic / expected) == 1
        assert sympy.simplify(analysis.oi_upper - 2 * sympy.sqrt(S_SYMBOL)) == 0

    def test_lu_matches_appendix_b(self):
        analysis = analyze_kernel("lu")
        expected = 2 * sym("N") ** 3 / (3 * sympy.sqrt(S_SYMBOL))
        assert sympy.simplify(analysis.result.asymptotic / expected) == 1

    def test_covariance_oi_matches_paper(self):
        analysis = analyze_kernel("covariance")
        assert sympy.simplify(analysis.oi_upper - 2 * sympy.sqrt(S_SYMBOL)) == 0

    @pytest.mark.parametrize("name", ["syrk", "trmm", "floyd-warshall", "2mm"])
    def test_oi_scales_like_sqrt_s(self, name):
        analysis = analyze_kernel(name)
        ratio = sympy.simplify(analysis.oi_upper / sympy.sqrt(S_SYMBOL))
        # The OI upper bound must scale exactly like sqrt(S): dividing by
        # sqrt(S) removes every occurrence of the cache size.
        assert not ratio.has(S_SYMBOL)

    def test_jacobi_1d_oi_matches_paper_24s(self):
        analysis = analyze_kernel("jacobi-1d")
        assert sympy.simplify(analysis.oi_upper - 24 * S_SYMBOL) == 0


class TestCategory2LowReuse:
    @pytest.mark.parametrize("name,expected", [("atax", 4), ("bicg", 4), ("mvt", 4),
                                               ("gesummv", 2), ("trisolv", 2)])
    def test_constant_oi(self, name, expected):
        analysis = analyze_kernel(name)
        assert sympy.simplify(analysis.oi_upper - expected) == 0

    def test_atax_bound_is_input_size(self):
        analysis = analyze_kernel("atax")
        assert sympy.expand(analysis.result.asymptotic - sym("M") * sym("N")) == 0


class TestCategory3Wavefront:
    def test_durbin_constant_oi(self):
        analysis = analyze_kernel("durbin")
        assert analysis.oi_upper.is_number
        assert analysis.oi_upper <= 6  # paper reports 4

    def test_durbin_bound_quadratic(self):
        analysis = analyze_kernel("durbin")
        expected = sym("N") ** 2 / 2
        assert sympy.simplify(analysis.result.asymptotic / expected) == 1

    def test_durbin_uses_wavefront_method(self):
        analysis = analyze_kernel("durbin")
        assert any(b.method == "wavefront" for b in analysis.result.sub_bounds)


class TestSoundnessAgainstSimulation:
    """The derived bounds can never exceed the loads of a legal schedule."""

    CASES = [
        ("gemm", {"Ni": 6, "Nj": 6, "Nk": 6}, 8),
        ("cholesky", {"N": 8}, 8),
        ("lu", {"N": 8}, 8),
        ("atax", {"M": 8, "N": 8}, 6),
        ("durbin", {"N": 10}, 4),
        ("trisolv", {"N": 10}, 4),
        ("covariance", {"M": 6, "N": 6}, 8),
    ]

    @pytest.mark.parametrize("name,params,cache", CASES)
    def test_lower_bound_below_simulated_loads(self, name, params, cache):
        spec = get_kernel(name)
        analysis = analyze_kernel(name)
        cdag = CDAG.expand(spec.program, params)
        schedule = lexicographic_schedule(cdag)
        simulated = simulate_schedule(cdag, schedule, cache, policy="opt")
        bound = analysis.result.evaluate({**params, "S": cache})
        assert bound <= simulated.loads + 1e-9, (
            f"{name}: bound {bound} exceeds simulated {simulated.loads}"
        )
