"""Structural tests for every PolyBench kernel encoding."""

import pytest
import sympy

from repro.ir import CDAG, DFG
from repro.polybench import all_kernels, get_kernel, kernel_names
from repro.sets import sym


ALL_NAMES = kernel_names()


class TestRegistry:
    def test_thirty_kernels_registered(self):
        assert len(ALL_NAMES) == 30

    def test_expected_names_present(self):
        expected = {
            "2mm", "3mm", "adi", "atax", "bicg", "cholesky", "correlation",
            "covariance", "deriche", "doitgen", "durbin", "fdtd-2d",
            "floyd-warshall", "gemm", "gemver", "gesummv", "gramschmidt",
            "heat-3d", "jacobi-1d", "jacobi-2d", "lu", "ludcmp", "mvt",
            "nussinov", "seidel-2d", "symm", "syr2k", "syrk", "trisolv", "trmm",
        }
        assert set(ALL_NAMES) == expected

    def test_get_kernel_roundtrip(self):
        for spec in all_kernels():
            assert get_kernel(spec.name) is spec


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryKernel:
    def test_program_builds_and_validates(self, name):
        spec = get_kernel(name)
        program = spec.program
        assert program.statements, name
        assert program.dependences, name

    def test_paper_reference_expressions_parse(self, name):
        spec = get_kernel(name)
        assert spec.paper_oi_upper_expr() is not None
        assert spec.paper_oi_manual_expr() is not None

    def test_large_instance_covers_all_params(self, name):
        spec = get_kernel(name)
        assert set(spec.large_instance) == set(spec.program.params)

    def test_input_size_and_flops_are_nonzero(self, name):
        spec = get_kernel(name)
        instance = {p: 50 for p in spec.program.params}
        input_size = spec.program.input_size().subs({sym(k): v for k, v in instance.items()})
        flops = spec.program.total_flops().subs({sym(k): v for k, v in instance.items()})
        assert input_size > 0
        assert flops > 0

    def test_dfg_has_statement_nodes(self, name):
        spec = get_kernel(name)
        dfg = DFG.from_program(spec.program)
        assert dfg.statement_nodes()
        assert dfg.topological_statements()


SMALL_INSTANCES = {
    "2mm": {"Ni": 3, "Nj": 3, "Nk": 3, "Nl": 3},
    "3mm": {"Ni": 3, "Nj": 3, "Nk": 3, "Nl": 3, "Nm": 3},
    "adi": {"T": 4, "N": 5},
    "atax": {"M": 4, "N": 4},
    "bicg": {"M": 4, "N": 4},
    "cholesky": {"N": 6},
    "correlation": {"M": 4, "N": 4},
    "covariance": {"M": 4, "N": 4},
    "deriche": {"W": 4, "H": 4},
    "doitgen": {"Nr": 3, "Nq": 3, "Np": 3},
    "durbin": {"N": 6},
    "fdtd-2d": {"T": 3, "Nx": 4, "Ny": 4},
    "floyd-warshall": {"N": 4},
    "gemm": {"Ni": 3, "Nj": 3, "Nk": 3},
    "gemver": {"N": 4},
    "gesummv": {"N": 4},
    "gramschmidt": {"M": 4, "N": 4},
    "heat-3d": {"T": 3, "N": 5},
    "jacobi-1d": {"T": 4, "N": 8},
    "jacobi-2d": {"T": 3, "N": 6},
    "lu": {"N": 6},
    "ludcmp": {"N": 6},
    "mvt": {"N": 4},
    "nussinov": {"N": 6},
    "seidel-2d": {"T": 3, "N": 6},
    "symm": {"M": 4, "N": 4},
    "syr2k": {"N": 4, "M": 4},
    "syrk": {"N": 4, "M": 4},
    "trisolv": {"N": 6},
    "trmm": {"M": 4, "N": 4},
}


@pytest.mark.parametrize("name", ALL_NAMES)
def test_cdag_expansion_is_consistent(name):
    """The explicit CDAG must be a DAG whose edge functions stay in-domain."""
    spec = get_kernel(name)
    params = SMALL_INSTANCES[name]
    cdag = CDAG.expand(spec.program, params)
    assert cdag.compute_vertices(), name
    # acyclicity (topological_order raises on cycles)
    order = cdag.topological_order()
    assert len(order) == cdag.graph.number_of_nodes()


@pytest.mark.parametrize("name", ALL_NAMES)
def test_symbolic_statement_counts_match_enumeration(name):
    """card(statement domain) must agree with enumeration at a small instance."""
    from repro.sets import CountingError, card, card_at

    spec = get_kernel(name)
    params = SMALL_INSTANCES[name]
    for statement in spec.program.statements.values():
        try:
            symbolic = card(statement.domain)
        except CountingError:
            continue
        value = int(symbolic.subs({sym(k): v for k, v in params.items()}))
        assert value == card_at(statement.domain, params), (name, statement.name)
