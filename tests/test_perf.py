"""Unit tests for the subsystem profiler (repro.perf)."""

from __future__ import annotations

import threading
import time

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def clean_counters():
    perf.reset()
    yield
    perf.reset()


def test_timed_counts_calls_and_time():
    @perf.timed("sets")
    def work():
        time.sleep(0.01)
        return 42

    assert work() == 42
    assert work() == 42
    timing = perf.snapshot().timing("sets")
    assert timing is not None
    assert timing.calls == 2
    assert timing.inclusive_s >= 0.02
    assert timing.exclusive_s == pytest.approx(timing.inclusive_s)


def test_reentrant_calls_are_not_double_counted():
    @perf.timed("counting")
    def inner():
        time.sleep(0.01)

    @perf.timed("counting")
    def outer():
        inner()
        inner()

    outer()
    timing = perf.snapshot().timing("counting")
    # One top-level entry owns the whole duration; the nested calls run
    # untimed, so they add neither calls nor time.
    assert timing.calls == 1
    assert timing.inclusive_s >= 0.02


def test_exclusive_time_credits_children_to_their_subsystem():
    @perf.timed("fm")
    def child():
        time.sleep(0.02)

    @perf.timed("counting")
    def parent():
        time.sleep(0.01)
        child()

    parent()
    snapshot = perf.snapshot()
    counting = snapshot.timing("counting")
    fm = snapshot.timing("fm")
    assert counting.inclusive_s >= 0.03
    # The child's time lands in fm's exclusive column, not counting's.
    assert counting.exclusive_s < counting.inclusive_s
    assert counting.exclusive_s == pytest.approx(counting.inclusive_s - fm.inclusive_s, abs=5e-3)
    assert fm.exclusive_s == pytest.approx(fm.inclusive_s)


def test_section_context_manager():
    with perf.section("pebble-sim"):
        time.sleep(0.01)
    with perf.section("pebble-sim"):
        with perf.section("pebble-sim"):  # reentrant: untimed
            pass
    timing = perf.snapshot().timing("pebble-sim")
    assert timing.calls == 2


def test_exceptions_still_record_time():
    @perf.timed("linalg")
    def boom():
        raise ValueError("x")

    with pytest.raises(ValueError):
        boom()
    assert perf.snapshot().timing("linalg").calls == 1


def test_threads_keep_independent_stacks():
    @perf.timed("sets")
    def work():
        time.sleep(0.01)

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    timing = perf.snapshot().timing("sets")
    assert timing.calls == 4
    # Each thread's wall-time is counted in full (they overlap in real time).
    assert timing.inclusive_s >= 0.04


def test_reset_zeroes_timers_and_cache_counters():
    from repro.sets.memo import MemoCache

    cache = MemoCache("test.reset_probe", maxsize=4)
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)

    @perf.timed("fm")
    def work():
        pass

    work()
    perf.reset()
    snapshot = perf.snapshot()
    assert snapshot.timing("fm") is None
    probe = snapshot.cache("test.reset_probe")
    assert probe.hits == 0 and probe.misses == 0
    # reset clears counters, not entries: the cached value is still served.
    assert cache.get_or_compute("k", lambda: 2) == 1


def test_merge_counts_folds_external_totals():
    @perf.timed("fm")
    def work():
        pass

    work()
    perf.merge_counts({"fm": (3, 1.5, 1.0), "sets": (1, 0.5, 0.5)})
    snapshot = perf.snapshot()
    assert snapshot.timing("fm").calls == 4
    assert snapshot.timing("fm").inclusive_s >= 1.5
    assert snapshot.timing("sets").calls == 1


def test_format_table_lists_subsystems_and_caches():
    from repro.sets.memo import MemoCache

    cache = MemoCache("test.table_probe", maxsize=4)
    cache.get_or_compute("k", lambda: 1)
    cache.get_or_compute("k", lambda: 1)

    with perf.section("rel-closure"):
        pass
    table = perf.snapshot().format_table(wall_s=1.0)
    assert "rel-closure" in table
    assert "test.table_probe" in table
    assert "wall" in table
    assert "50.0%" in table  # the probe's hit rate


def test_snapshot_to_dict_roundtrips_fields():
    with perf.section("sets"):
        pass
    payload = perf.snapshot().to_dict()
    names = [entry["name"] for entry in payload["subsystems"]]
    assert "sets" in names
    assert all({"hits", "misses", "size", "hit_rate"} <= set(c) for c in payload["caches"])
