"""Campaign mechanics: detection, shrinking, corpus, replay, budgets.

The centrepiece is the planted-bug regression demanded by the issue: a
monkeypatched miscount in the counting oracle's symbolic side must be
*caught* by a campaign, *shrunk* to a smaller program, *written* to the
corpus as a replayable entry, and *reproduced* by replay until the bug is
lifted — the full life of a real divergence, end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (
    CampaignResult,
    load_corpus_entry,
    replay_entry,
    run_campaign,
    shrink_case,
)
from repro.fuzz.generator import random_program
from repro.fuzz.oracles import OracleContext
from repro.fuzz import oracles, runner


@pytest.fixture
def planted_miscount(monkeypatch):
    """Inflate the symbolic count of statement ``Q`` by one — a synthetic
    counting bug only programs containing ``Q`` expose."""
    real = oracles._symbolic_statement_count

    def bugged(program, statement, instance):
        value = real(program, statement, instance)
        return value + 1 if statement == "Q" else value

    monkeypatch.setattr(oracles, "_symbolic_statement_count", bugged)
    return monkeypatch


class TestCleanCampaign:
    def test_streams_all_seeds_and_reports_ok(self):
        result = run_campaign(range(3), "small", oracles=["counting", "store"])
        assert isinstance(result, CampaignResult)
        assert result.ok and result.completed == [0, 1, 2]
        assert not result.stopped_early
        assert result.checks > 0
        assert len(result.verdicts) == 6  # 3 seeds x 2 oracles
        json.dumps(result.to_dict())

    def test_thread_executor_matches_serial(self):
        serial = run_campaign(range(3), "small", oracles=["counting"])
        threaded = run_campaign(
            range(3), "small", oracles=["counting"], executor="thread", n_jobs=2
        )
        strip = lambda r: sorted(
            (v["seed"], v["oracle"], v["ok"], v["checks"]) for v in r.verdicts
        )
        assert strip(serial) == strip(threaded)

    def test_unknown_oracle_rejected_before_scheduling(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            run_campaign(range(2), "small", oracles=["nope"])

    def test_time_budget_stops_early_but_keeps_completed(self):
        result = run_campaign(
            range(200), "small", oracles=["counting"], time_budget=0.3
        )
        assert result.stopped_early
        assert 0 < len(result.completed) < 200


class TestPlantedBug:
    def test_detect_shrink_corpus_replay(self, planted_miscount, tmp_path):
        corpus = tmp_path / "corpus"
        result = run_campaign(
            [2], "small", oracles=["counting"], corpus_dir=corpus
        )
        assert not result.ok
        failure = result.failures[0]
        assert failure.oracle == "counting" and failure.seed == 2

        # Shrunk: P and every dependence are irrelevant to the planted
        # Q-miscount, so greedy deletion must strip them all.
        assert failure.statements == ["Q"]
        assert failure.dependences == []
        assert failure.reduction  # a non-empty replayable op list

        # Corpus entry: self-contained and loadable.
        entry = load_corpus_entry(failure.corpus_path)
        assert entry["seed"] == 2 and entry["oracle"] == "counting"
        assert entry["divergence"]["kind"] == "count-mismatch"

        # Replay while the bug is live: reproduces, fingerprint-verified.
        outcome = replay_entry(entry)
        assert outcome.reproduced and outcome.fingerprint_matches

    def test_replay_goes_quiet_once_fixed(self, planted_miscount, tmp_path):
        result = run_campaign(
            [2], "small", oracles=["counting"], corpus_dir=tmp_path
        )
        entry = load_corpus_entry(result.failures[0].corpus_path)
        planted_miscount.undo()
        outcome = replay_entry(entry)
        assert not outcome.reproduced and outcome.verdict.ok

    def test_shrink_budget_caps_oracle_invocations(self, planted_miscount):
        calls = 0
        real = oracles.run_oracle

        def counting_run(name, program, ctx):
            nonlocal calls
            calls += 1
            return real(name, program, ctx)

        planted_miscount.setattr(runner, "run_oracle", counting_run)
        reduced, reduction = shrink_case(
            random_program(2, "small"),
            "counting",
            OracleContext.for_case(2, "small"),
            budget=3,
        )
        assert calls <= 3
        # Budget exhausted early: at most the accepted steps are recorded.
        assert len(reduction) <= 3

    def test_no_shrink_keeps_original_program(self, planted_miscount, tmp_path):
        result = run_campaign(
            [2], "small", oracles=["counting"], corpus_dir=tmp_path, shrink=False
        )
        failure = result.failures[0]
        assert failure.reduction == []
        assert failure.statements == ["P", "Q"]


class TestCorpusFormat:
    def test_entries_are_schema_stamped_sorted_json(self, planted_miscount, tmp_path):
        result = run_campaign([2], "small", oracles=["counting"], corpus_dir=tmp_path)
        path = result.failures[0].corpus_path
        raw = json.loads(open(path, encoding="utf-8").read())
        assert raw["schema"] == 1 and raw["kind"] == "repro-fuzz-crash"
        assert raw["profile_spec"]["name"] == "small"
        assert raw["fingerprint"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-crash.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="not a repro fuzz corpus entry"):
            load_corpus_entry(path)

    def test_load_rejects_unreadable_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_corpus_entry(tmp_path / "missing.json")

    def test_load_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"kind": "repro-fuzz-crash", "schema": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_corpus_entry(path)
