"""``python -m repro fuzz`` surface: exit codes, JSON contract, replay gate.

Exit-code contract: 0 = campaign clean / divergence fixed, 1 = divergence
found / still reproduces, 2 = user error (malformed corpus entry, unknown
names).  CI's replay round-trip and any bisecting developer rely on it.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.fuzz import load_corpus_entry, run_campaign
from repro.fuzz import oracles


@pytest.fixture
def planted_miscount(monkeypatch):
    real = oracles._symbolic_statement_count

    def bugged(program, statement, instance):
        value = real(program, statement, instance)
        return value + 1 if statement == "Q" else value

    monkeypatch.setattr(oracles, "_symbolic_statement_count", bugged)
    return monkeypatch


class TestCampaignCommand:
    def test_clean_campaign_exits_zero_with_summary(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--oracle", "counting"]) == 0
        out = capsys.readouterr().out
        assert "2/2 cases [small]" in out and "0 failures" in out

    def test_json_document_shape(self, capsys):
        assert main([
            "fuzz", "--seeds", "2", "--profile", "deep",
            "--oracle", "counting", "--oracle", "store", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["profile"]["name"] == "deep"
        assert document["oracles"] == ["counting", "store"]
        assert document["cases"] == 2
        assert len(document["verdicts"]) == 4

    def test_failing_campaign_exits_one_and_writes_corpus(
        self, planted_miscount, tmp_path, capsys
    ):
        corpus = tmp_path / "corpus"
        assert main([
            "fuzz", "--seeds", "1", "--seed-start", "2",
            "--oracle", "counting", "--corpus", str(corpus),
        ]) == 1
        out = capsys.readouterr().out
        assert "FAIL seed 2 counting" in out
        entries = list(corpus.glob("*.json"))
        assert len(entries) == 1

    def test_seed_start_offsets_the_range(self, capsys):
        assert main([
            "fuzz", "--seeds", "1", "--seed-start", "7",
            "--oracle", "counting", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["seeds"] == [7]

    def test_perf_flag_appends_attribution_table(self, capsys):
        assert main([
            "fuzz", "--seeds", "1", "--oracle", "counting", "--perf",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 failures" in out
        assert "subsystem" in out and "memo cache" in out

    def test_perf_flag_embeds_snapshot_in_json(self, capsys):
        assert main([
            "fuzz", "--seeds", "1", "--oracle", "counting", "--perf", "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        names = [entry["name"] for entry in document["perf"]["subsystems"]]
        assert "counting" in names

    def test_unknown_profile_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--profile", "galactic"])
        assert excinfo.value.code == 2

    def test_unknown_oracle_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--oracle", "astrology"])
        assert excinfo.value.code == 2


class TestReplayCommand:
    def _write_entry(self, planted_miscount, tmp_path) -> str:
        result = run_campaign(
            [2], "small", oracles=["counting"], corpus_dir=tmp_path
        )
        return result.failures[0].corpus_path

    def test_replay_exits_one_while_bug_reproduces(
        self, planted_miscount, tmp_path, capsys
    ):
        path = self._write_entry(planted_miscount, tmp_path)
        assert main(["fuzz", "--replay", path]) == 1
        assert "still reproduces" in capsys.readouterr().out

    def test_replay_exits_zero_once_fixed(self, planted_miscount, tmp_path, capsys):
        path = self._write_entry(planted_miscount, tmp_path)
        planted_miscount.undo()
        assert main(["fuzz", "--replay", path]) == 0
        assert "no longer reproduces" in capsys.readouterr().out

    def test_replay_json_document(self, planted_miscount, tmp_path, capsys):
        path = self._write_entry(planted_miscount, tmp_path)
        assert main(["fuzz", "--replay", path, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["reproduced"] is True
        assert document["fingerprint_matches"] is True
        assert document["verdict"]["oracle"] == "counting"

    def test_replay_of_malformed_file_is_a_user_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["fuzz", "--replay", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_entry_survives_corpus_relocation(
        self, planted_miscount, tmp_path, capsys
    ):
        """Entries are self-contained: a copy replays without the original
        corpus directory, generator state or campaign context."""
        path = self._write_entry(planted_miscount, tmp_path)
        moved = tmp_path / "elsewhere.json"
        moved.write_text(open(path, encoding="utf-8").read())
        entry = load_corpus_entry(moved)
        assert entry["reduction"]
        assert main(["fuzz", "--replay", str(moved)]) == 1
