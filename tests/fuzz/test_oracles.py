"""Oracle plumbing: every built-in differential runs green on clean cases.

The fast tier runs all registered oracles on 5 seeds × 2 profiles; the wide
sweep (more seeds, the third profile) rides behind the ``slow`` marker like
the historical reachability sweep.  All oracles of one case run inside one
test so they share the per-process DFG/reachability caches — the same
batching the campaign runner uses.
"""

from __future__ import annotations

import pytest

from repro.fuzz.generator import random_program
from repro.fuzz.oracles import (
    OracleContext,
    OracleVerdict,
    get_oracle,
    oracle_names,
    register_oracle,
    run_oracle,
)
from repro.fuzz.oracles import _ORACLES

BUILTIN_ORACLES = ("backends", "counting", "executors", "sandwich", "store")

FAST_CASES = [("small", seed) for seed in range(5)] + [
    ("deep", seed) for seed in range(5)
]
SLOW_CASES = (
    [("small", seed) for seed in range(5, 25)]
    + [("wide", seed) for seed in range(10)]
    + [("deep", seed) for seed in range(5, 15)]
)


def assert_all_oracles_green(profile: str, seed: int) -> None:
    program = random_program(seed, profile)
    ctx = OracleContext.for_case(seed, profile)
    failures = []
    for name in oracle_names():
        verdict = run_oracle(name, program, ctx)
        assert isinstance(verdict, OracleVerdict) and verdict.oracle == name
        if not verdict.ok:
            failures.append((name, verdict.details, verdict.divergence))
    assert not failures, f"{profile}:{seed} diverged: {failures}"


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_ORACLES) <= set(oracle_names())

    def test_unknown_oracle_raises_with_listing(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            get_oracle("no-such-oracle")

    def test_register_and_crash_wrapping(self):
        @register_oracle("_test_crasher")
        def crasher(program, ctx):
            raise RuntimeError("deliberate")

        try:
            verdict = run_oracle(
                "_test_crasher",
                random_program(0, "small"),
                OracleContext.for_case(0, "small"),
            )
            # A crash of the system under test is a *finding*, not a
            # campaign abort: it must come back as a failing verdict.
            assert not verdict.ok
            assert verdict.divergence["kind"] == "crash"
            assert verdict.divergence["error"] == "RuntimeError"
        finally:
            _ORACLES.pop("_test_crasher", None)


@pytest.mark.parametrize("profile,seed", FAST_CASES)
def test_all_oracles_green_fast(profile, seed):
    assert_all_oracles_green(profile, seed)


@pytest.mark.slow
@pytest.mark.parametrize("profile,seed", SLOW_CASES)
def test_all_oracles_green_sweep(profile, seed):
    assert_all_oracles_green(profile, seed)


class TestVerdictShape:
    def test_verdicts_are_json_serializable(self):
        import json

        program = random_program(1, "small")
        ctx = OracleContext.for_case(1, "small")
        for name in oracle_names():
            verdict = run_oracle(name, program, ctx)
            doc = json.loads(json.dumps(verdict.to_dict()))
            assert doc["oracle"] == name and doc["checks"] >= 0

    def test_counting_oracle_counts_checks(self):
        verdict = run_oracle(
            "counting", random_program(2, "small"), OracleContext.for_case(2, "small")
        )
        # 2 statements compared across count backends, then 2 statements +
        # input-size + total-flops at each of 2 instances.
        assert verdict.checks == 10

    def test_counting_oracle_reports_backend_divergence(self, monkeypatch):
        from repro.fuzz import oracles

        real = oracles._backend_card
        monkeypatch.setattr(
            oracles,
            "_backend_card",
            lambda program, statement, backend: (
                real(program, statement, backend)
                + (1 if backend == "native" and statement == "Q" else 0)
            ),
        )
        verdict = run_oracle(
            "counting", random_program(2, "small"), OracleContext.for_case(2, "small")
        )
        assert not verdict.ok
        assert verdict.divergence["kind"] == "count-backend-mismatch"
        assert verdict.divergence["statement"] == "Q"
