"""Tests for the differential fuzzing subsystem (:mod:`repro.fuzz`)."""
