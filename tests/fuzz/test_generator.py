"""Generator determinism and program-surgery contracts.

The fuzzer's value rests on reproducibility: a corpus entry stores only
``(seed, profile, reduction)``, so the generator must rebuild the exact same
program forever — across processes, platforms and library versions.  The
golden fingerprints below *are* that contract; they may only change together
with a corpus schema bump.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.plan import program_fingerprint
from repro.fuzz.generator import (
    PROFILES,
    apply_reduction,
    case_program,
    delete_dependence,
    delete_dimension,
    delete_statement,
    fingerprint_for,
    profile_from_dict,
    profile_to_dict,
    random_program,
    resolve_profile,
)

#: The determinism contract: regenerating these (seed, profile) cases must
#: reproduce these exact programs.  "small" seeds additionally lock parity
#: with the historical tests/rel generator the profile was lifted from.
GOLDEN_FINGERPRINTS = {
    ("small", 0): "d692fa63ffd29b6030a83bcfb695e9f11125129da47c974b18eb9a1a0c36cba9",
    ("small", 7): "381b2cd55ae532177d26276363338f3275f114cc81b70816c6dbdfe0333d14ef",
    ("wide", 0): "650f15bfb0f60f03fadfd05d99f1e01be67a0fab406149a6727d1e2c25974ca7",
    ("wide", 7): "cc3db84348d607137133b65974eb8892a043d27892c79e39d025a05b7c7c6e7c",
    ("deep", 0): "02aa158721993f6e25a1bf54a7aa6e7802b1d9b40016742c1d495b99ee614a91",
    ("deep", 7): "db98f164f717652888239aedf3e0c0abf894fb55a7acf8a7b6636c8c15d73f50",
}


class TestDeterminism:
    @pytest.mark.parametrize("profile,seed", sorted(GOLDEN_FINGERPRINTS))
    def test_golden_fingerprints(self, profile, seed):
        assert fingerprint_for(seed, profile) == GOLDEN_FINGERPRINTS[(profile, seed)]

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_same_seed_same_fingerprint_within_process(self, profile):
        assert fingerprint_for(11, profile) == fingerprint_for(11, profile)

    def test_fingerprints_stable_across_processes(self):
        """A fresh interpreter reproduces the same programs (no dict-order,
        hash-randomization or module-state dependence)."""
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        env["PYTHONHASHSEED"] = "random"
        script = (
            "from repro.fuzz.generator import fingerprint_for\n"
            "for profile in ('small', 'wide', 'deep'):\n"
            "    for seed in (0, 7):\n"
            "        print(profile, seed, fingerprint_for(seed, profile))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        seen = {}
        for line in output.splitlines():
            profile, seed, fingerprint = line.split()
            seen[(profile, int(seed))] = fingerprint
        assert seen == GOLDEN_FINGERPRINTS

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_100_seed_sweep_distinct_fingerprints(self, profile):
        fingerprints = [fingerprint_for(seed, profile) for seed in range(100)]
        assert len(set(fingerprints)) == 100

    def test_structural_diversity_not_just_names(self):
        """Distinct fingerprints must come from distinct *structures*, not
        merely the seed-bearing program name."""
        shapes = {
            tuple(sorted(dep.label for dep in random_program(seed, "wide").dependences))
            for seed in range(40)
        }
        assert len(shapes) >= 30


class TestSmallProfileParity:
    """The "small" profile is the historical tests/rel generator, verbatim."""

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_shape(self, seed):
        program = random_program(seed, "small")
        assert program.name == f"rand{seed}"
        assert sorted(program.statements) == ["P", "Q"]
        assert set(program.params) == {"M", "N"}
        labels = [dep.label for dep in program.dependences]
        assert len(labels) == len(set(labels))
        # Both statements always read A at t=0 (the base dependences).
        assert sum(1 for dep in program.dependences if dep.source == "A") == 2

    def test_dependence_count_range(self):
        for seed in range(30):
            sampled = len(random_program(seed, "small").dependences) - 2
            assert 2 <= sampled <= 5


class TestProfiles:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown fuzz profile"):
            resolve_profile("enormous")

    def test_resolve_passes_through_instances(self):
        profile = PROFILES["wide"]
        assert resolve_profile(profile) is profile

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_dict_round_trip(self, name):
        profile = PROFILES[name]
        assert profile_from_dict(profile_to_dict(profile)) == profile

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_programs_are_valid_and_acyclic(self, name):
        import networkx as nx

        from repro.ir.cdag import CDAG

        profile = PROFILES[name]
        for seed in range(8):
            program = random_program(seed, profile)
            cdag = CDAG.expand(program, profile.instance_dicts()[0])
            assert nx.is_directed_acyclic_graph(cdag.graph)


class TestReductions:
    def test_delete_statement_drops_its_dependences(self):
        program = random_program(0, "small")
        reduced = delete_statement(program, "P")
        assert sorted(reduced.statements) == ["Q"]
        assert all(
            dep.sink != "P" and dep.source != "P" for dep in reduced.dependences
        )

    def test_delete_statement_unknown_raises(self):
        with pytest.raises(KeyError):
            delete_statement(random_program(0, "small"), "Z")

    def test_delete_dependence_by_label(self):
        program = random_program(0, "small")
        label = program.dependences[-1].label
        reduced = delete_dependence(program, label)
        assert label not in [dep.label for dep in reduced.dependences]
        with pytest.raises(KeyError):
            delete_dependence(reduced, label)

    def test_delete_dimension_projects_domain(self):
        program = random_program(0, "small")
        reduced = delete_dimension(program, "Q", "t")
        assert reduced is not None
        assert reduced.statements["Q"].dims == ("i",)

    def test_delete_last_dimension_refused(self):
        program = delete_dimension(random_program(0, "small"), "Q", "t")
        assert delete_dimension(program, "Q", "i") is None

    def test_apply_reduction_replays_ops_in_order(self):
        program = random_program(0, "small")
        label = next(d.label for d in program.dependences if d.sink == "Q")
        reduction = [["statement", "P"], ["dependence", label]]
        replayed = apply_reduction(random_program(0, "small"), reduction)
        by_hand = delete_dependence(delete_statement(program, "P"), label)
        assert program_fingerprint(replayed) == program_fingerprint(by_hand)

    def test_apply_reduction_rejects_malformed_and_stale_ops(self):
        program = random_program(0, "small")
        with pytest.raises(ValueError):
            apply_reduction(program, [["frobnicate", "P"]])
        with pytest.raises(KeyError):
            apply_reduction(program, [["statement", "P"], ["statement", "P"]])

    def test_case_program_equals_manual_pipeline(self):
        reduction = [["statement", "P"]]
        case = case_program(5, "small", reduction)
        manual = apply_reduction(random_program(5, "small"), reduction)
        assert program_fingerprint(case) == program_fingerprint(manual)
