"""Unit tests for exact rational linear algebra."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    identity,
    mat_mul,
    mat_vec,
    nullspace,
    rank,
    row_space_basis,
    rref,
    solve,
    to_fraction_matrix,
    transpose,
    zeros,
)


class TestMatrixBasics:
    def test_to_fraction_matrix_normalises_entries(self):
        m = to_fraction_matrix([[1, 2], [3, 4]])
        assert m[0][0] == Fraction(1)
        assert isinstance(m[1][1], Fraction)

    def test_to_fraction_matrix_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            to_fraction_matrix([[1, 2], [3]])

    def test_identity_and_zeros_shapes(self):
        assert identity(3)[1][1] == 1
        assert identity(3)[0][1] == 0
        assert zeros(2, 3) == ((0, 0, 0), (0, 0, 0))

    def test_mat_mul_matches_known_product(self):
        a = to_fraction_matrix([[1, 2], [3, 4]])
        b = to_fraction_matrix([[5, 6], [7, 8]])
        assert mat_mul(a, b) == to_fraction_matrix([[19, 22], [43, 50]])

    def test_mat_mul_dimension_mismatch(self):
        a = to_fraction_matrix([[1, 2]])
        b = to_fraction_matrix([[1, 2]])
        with pytest.raises(ValueError):
            mat_mul(a, b)

    def test_mat_vec(self):
        a = to_fraction_matrix([[1, 0, 2], [0, 1, -1]])
        assert mat_vec(a, [1, 2, 3]) == (Fraction(7), Fraction(-1))

    def test_transpose_involution(self):
        a = to_fraction_matrix([[1, 2, 3], [4, 5, 6]])
        assert transpose(transpose(a)) == a


class TestRrefRankNullspace:
    def test_rref_identity_is_fixed_point(self):
        reduced, pivots = rref(identity(3))
        assert reduced == identity(3)
        assert pivots == [0, 1, 2]

    def test_rank_of_singular_matrix(self):
        a = to_fraction_matrix([[1, 2], [2, 4]])
        assert rank(a) == 1

    def test_rank_of_full_rank_matrix(self):
        a = to_fraction_matrix([[1, 2], [3, 4]])
        assert rank(a) == 2

    def test_nullspace_of_projection(self):
        # Projection that drops the last coordinate: kernel is span(e3).
        a = to_fraction_matrix([[1, 0, 0], [0, 1, 0]])
        basis = nullspace(a)
        assert len(basis) == 1
        assert basis[0] == (0, 0, 1)

    def test_nullspace_vectors_are_in_kernel(self):
        a = to_fraction_matrix([[1, 2, 3], [4, 5, 6]])
        for vec in nullspace(a):
            assert mat_vec(a, vec) == (Fraction(0), Fraction(0))

    def test_row_space_basis_size_matches_rank(self):
        a = to_fraction_matrix([[1, 2, 3], [2, 4, 6], [0, 1, 1]])
        assert len(row_space_basis(a)) == rank(a) == 2

    def test_solve_consistent_system(self):
        a = to_fraction_matrix([[2, 0], [0, 3]])
        assert solve(a, [4, 9]) == (Fraction(2), Fraction(3))

    def test_solve_inconsistent_system(self):
        a = to_fraction_matrix([[1, 1], [1, 1]])
        assert solve(a, [1, 2]) is None

    def test_rank_nullity_theorem(self):
        a = to_fraction_matrix([[1, 2, 3, 4], [2, 4, 6, 8], [1, 0, 1, 0]])
        assert rank(a) + len(nullspace(a)) == 4


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(-5, 5), min_size=3, max_size=3), min_size=2, max_size=4))
def test_rank_bounded_by_dimensions(rows):
    matrix = to_fraction_matrix(rows)
    assert 0 <= rank(matrix) <= min(len(rows), 3)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(-5, 5), min_size=3, max_size=3), min_size=2, max_size=4))
def test_nullspace_rank_nullity(rows):
    matrix = to_fraction_matrix(rows)
    assert rank(matrix) + len(nullspace(matrix)) == 3
