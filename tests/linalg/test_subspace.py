"""Unit and property tests for subspaces and the subgroup lattice closure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import Subspace, SubspaceLattice, build_lattice, subspace_closure


def span(*vectors):
    return Subspace.span(list(vectors))


class TestSubspace:
    def test_zero_and_full(self):
        assert Subspace.zero(3).dim == 0
        assert Subspace.full(3).dim == 3

    def test_canonical_equality(self):
        a = span((1, 0, 0), (0, 1, 0))
        b = span((1, 1, 0), (1, -1, 0))
        assert a == b
        assert hash(a) == hash(b)

    def test_contains_vector(self):
        plane = span((1, 0, 0), (0, 1, 0))
        assert plane.contains_vector((3, -2, 0))
        assert not plane.contains_vector((0, 0, 1))

    def test_contains_subspace(self):
        plane = span((1, 0, 0), (0, 1, 0))
        line = span((1, 1, 0))
        assert plane.contains(line)
        assert not line.contains(plane)

    def test_sum_of_lines_is_plane(self):
        line_x = span((1, 0, 0))
        line_y = span((0, 1, 0))
        assert line_x.sum(line_y) == span((1, 0, 0), (0, 1, 0))

    def test_intersection_of_planes_is_line(self):
        xy = span((1, 0, 0), (0, 1, 0))
        yz = span((0, 1, 0), (0, 0, 1))
        assert xy.intersection(yz) == span((0, 1, 0))

    def test_intersection_of_skew_lines_is_zero(self):
        assert span((1, 0, 0)).intersection(span((0, 1, 0))).is_zero()

    def test_projection_rank(self):
        # phi = projection with kernel e3; rank of phi(plane xz) should be 1.
        kernel = span((0, 0, 1))
        xz = span((1, 0, 0), (0, 0, 1))
        assert xz.projection_rank(kernel) == 1
        full = Subspace.full(3)
        assert full.projection_rank(kernel) == 2

    def test_ambient_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            span((1, 0)).sum(span((1, 0, 0)))


class TestLattice:
    def test_closure_with_orthogonal_kernels(self):
        lattice = SubspaceLattice(3)
        for vec in ((1, 0, 0), (0, 1, 0), (0, 0, 1)):
            lattice, changed = subspace_closure(lattice, span(vec))
            assert changed
        dims = sorted(e.dim for e in lattice.nontrivial_elements())
        # 3 lines, 3 planes (pairwise sums), and the full space.
        assert dims == [1, 1, 1, 2, 2, 2, 3]

    def test_closure_is_idempotent(self):
        lattice, accepted = build_lattice(3, [span((1, 0, 0)), span((0, 1, 0))])
        size = len(lattice)
        lattice2, changed = subspace_closure(lattice, span((1, 0, 0)))
        assert not changed
        assert len(lattice2) == size
        assert len(accepted) == 2

    def test_closure_contains_sums_and_intersections(self):
        lattice, _ = build_lattice(3, [span((1, 0, 0), (0, 1, 0)), span((0, 1, 0), (0, 0, 1))])
        assert span((0, 1, 0)) in lattice  # the intersection
        assert Subspace.full(3) in lattice  # the sum

    def test_timeout_returns_original(self):
        # A cold cache is required: a memoised converged closure is returned
        # even under a zero budget (known answers beat the degraded fallback).
        from repro.sets import memo

        memo.clear_all()
        lattice = SubspaceLattice(3, [span((1, 0, 0))])
        result, changed = subspace_closure(lattice, span((0, 1, 0)), timeout_seconds=0.0)
        assert not changed
        assert result is lattice

    def test_timeout_result_is_not_cached(self):
        from repro.sets import memo

        memo.clear_all()
        lattice = SubspaceLattice(3, [span((1, 0, 0))])
        kernel = span((0, 1, 0))
        _, changed = subspace_closure(lattice, kernel, timeout_seconds=0.0)
        assert not changed
        # The timed-out state must not have been memoised: with a real budget
        # the same closure converges.
        result, changed = subspace_closure(lattice, kernel)
        assert changed
        assert kernel in result

    def test_converged_closure_is_memoised(self):
        from repro.sets import memo

        memo.clear_all()
        lattice = SubspaceLattice(3, [span((1, 0, 0))])
        kernel = span((0, 1, 0))
        first, changed_first = subspace_closure(lattice, kernel)
        second, changed_second = subspace_closure(lattice, kernel)
        assert changed_first and changed_second
        assert first.elements == second.elements
        # The hit must rebuild a fresh lattice (lattices are mutable).
        assert first is not second


vectors3 = st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)).filter(
    lambda v: any(v)
)


@settings(max_examples=40, deadline=None)
@given(vectors3, vectors3)
def test_sum_contains_both_operands(v1, v2):
    a, b = span(v1), span(v2)
    total = a.sum(b)
    assert total.contains(a) and total.contains(b)


@settings(max_examples=40, deadline=None)
@given(vectors3, vectors3)
def test_intersection_contained_in_both(v1, v2):
    a, b = span(v1), span(v2)
    meet = a.intersection(b)
    assert a.contains(meet) and b.contains(meet)


@settings(max_examples=40, deadline=None)
@given(vectors3, vectors3)
def test_modularity_dimension_formula(v1, v2):
    a, b = span(v1), span(v2)
    assert a.sum(b).dim + a.intersection(b).dim == a.dim + b.dim
