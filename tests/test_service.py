"""The JSON-lines service front-end: protocol, streaming, warm turnaround.

``repro serve`` wraps the streaming scheduler in a request/event protocol
whose ``result`` payloads are byte-compatible with the ``suite --json``
interchange document.  These tests drive the transport-agnostic
:class:`~repro.service.AnalysisService` directly, plus one real TCP
round-trip through :class:`~repro.service.ServiceServer`.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.analysis import AnalysisConfig, Analyzer, BoundStore
from repro.analysis.serialization import results_to_document
from repro.core.bounds import IOBoundResult
from repro.polybench import get_kernel, kernel_names
from repro.service import PROTOCOL_VERSION, AnalysisService, ServiceServer


def request_line(**fields) -> str:
    return json.dumps(fields)


def events_for(service: AnalysisService, *lines: str) -> list[dict]:
    return list(service.serve_lines(lines))


@pytest.fixture
def service(tmp_path) -> AnalysisService:
    return AnalysisService(store=BoundStore(tmp_path / "store"))


class TestProtocol:
    def test_hello_event_opens_every_stream(self, service):
        (hello,) = events_for(service)
        assert hello["event"] == "hello"
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["kernels"] == len(kernel_names())

    def test_request_streams_results_then_done(self, service):
        events = events_for(
            service,
            request_line(id=7, kernels=["gemm", "atax"], config={"max_depth": 0}),
        )
        kinds = [event["event"] for event in events]
        assert kinds == ["hello", "result", "result", "done"]
        for event in events[1:]:
            assert event["id"] == 7
        assert {event["kernel"] for event in events[1:3]} == {"gemm", "atax"}
        done = events[-1]
        assert done["results"] == 2
        assert done["derivations"] == 2
        assert done["elapsed_ms"] >= 0

    def test_result_payload_matches_suite_document_format(self, service):
        events = events_for(
            service, request_line(kernels=["gemm"], config={"max_depth": 0})
        )
        payload = events[1]["result"]
        # The event payload is exactly a suite-document entry: from_dict
        # reloads it, and wrapping it reproduces the interchange document.
        restored = IOBoundResult.from_dict(payload)
        expected = Analyzer(AnalysisConfig(max_depth=0)).analyze(
            get_kernel("gemm").program
        )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        )
        document = results_to_document([restored])
        assert document["results"]["gemm"] == payload

    def test_blank_lines_are_ignored(self, service):
        events = events_for(service, "", "   \n")
        assert [event["event"] for event in events] == ["hello"]

    def test_warm_request_serves_from_store_with_zero_derivations(self, service):
        first = events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        again = events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        assert first[-1]["derivations"] == 1
        assert again[-1]["derivations"] == 0
        assert json.dumps(again[1]["result"], sort_keys=True) == json.dumps(
            first[1]["result"], sort_keys=True
        )

    def test_sequential_requests_multiplex_by_id(self, service):
        events = events_for(
            service,
            request_line(id="a", kernels=["gemm"], config={"max_depth": 0}),
            request_line(id="b", kernels=["atax"], config={"max_depth": 0}),
        )
        by_id = {}
        for event in events[1:]:
            by_id.setdefault(event["id"], []).append(event["event"])
        assert by_id == {"a": ["result", "done"], "b": ["result", "done"]}


class TestErrors:
    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("{not json", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            (request_line(kernels=["nope"]), "unknown kernels"),
            (request_line(kernels="gemm"), "list of kernel names"),
            (request_line(bogus=1), "unknown request keys"),
            (request_line(kernels=["gemm"], config={"bogus": 1}), "unknown config fields"),
            # cache_dir is server-side state, not a per-request knob.
            (
                request_line(kernels=["gemm"], config={"cache_dir": "/tmp/x"}),
                "unknown config fields",
            ),
            (request_line(kernels=["gemm"], config=[1]), "must be a JSON object"),
            (request_line(kernels=["gemm"], config={"gamma": 7}), "invalid config"),
            (
                request_line(kernels=["gemm"], config={"executor": "fibers"}),
                "invalid config",
            ),
        ],
    )
    def test_bad_requests_yield_one_error_event(self, service, line, fragment):
        events = events_for(service, line)
        assert [event["event"] for event in events] == ["hello", "error"]
        assert fragment in events[1]["error"]

    def test_error_echoes_request_id_when_parseable(self, service):
        events = events_for(service, request_line(id=42, kernels=["nope"]))
        assert events[1]["id"] == 42

    def test_server_survives_errors_between_requests(self, service):
        events = events_for(
            service,
            request_line(kernels=["nope"]),
            request_line(kernels=["gemm"], config={"max_depth": 0}),
        )
        assert [event["event"] for event in events] == [
            "hello", "error", "result", "done",
        ]


class TestExecutorSharing:
    def test_shared_pool_is_reused_across_requests_and_closed_once(self, tmp_path):
        """Requests that do not override executor settings share one server
        pool — no per-request pool spawn — and close() releases it."""
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread", n_jobs=2
        )
        events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        shared = service._default_executor()
        assert shared is not None and shared.name == "thread"
        events_for(service, request_line(kernels=["atax"], config={"max_depth": 0}))
        assert service._default_executor() is shared, "pool must be reused"
        service.close()
        assert service._shared is None
        service.close()  # idempotent

    def test_request_executor_override_does_not_touch_shared_pool(self, tmp_path):
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread", n_jobs=2
        )
        events = events_for(
            service,
            request_line(kernels=["gemm"], config={"max_depth": 0, "executor": "serial"}),
        )
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert service._shared is None, (
            "an overriding request must not instantiate the shared pool"
        )
        service.close()

    def test_n_jobs_override_inherits_server_executor_kind(self, tmp_path, monkeypatch):
        """A request overriding only n_jobs resizes the pool but keeps the
        server's executor choice — it must not fall through to the
        process-when-n_jobs>1 auto-selection."""
        from repro.analysis import executor as executor_module

        resolved = []
        original = executor_module.resolve_executor

        def spying_resolve(executor=None, n_jobs=1):
            instance = original(executor, n_jobs)
            resolved.append(type(instance).__name__)
            return instance

        monkeypatch.setattr(
            "repro.analysis.scheduler.resolve_executor", spying_resolve
        )
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread"
        )
        events = events_for(
            service, request_line(kernels=["gemm"], config={"max_depth": 0, "n_jobs": 2})
        )
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert resolved == ["ThreadExecutor"]
        service.close()

    def test_live_executor_instance_stays_callers(self, tmp_path):
        from repro.analysis import ThreadExecutor

        executor = ThreadExecutor(n_jobs=2)
        try:
            service = AnalysisService(
                store=BoundStore(tmp_path / "store"), executor=executor
            )
            events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
            service.close()  # must NOT close the caller's executor
            assert list(executor.map(lambda x: x + 1, [1, 2])) is not None
        finally:
            executor.close()


class TestStreamingOrder:
    def test_small_kernel_streams_before_big_one_lands(self, tmp_path):
        """Within one request, results arrive in completion order: the
        single-task kernel's event precedes the many-task kernel's even
        though the request listed the big one first."""
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        events = events_for(service, request_line(kernels=["durbin", "gemm"]))
        result_order = [event["kernel"] for event in events if event["event"] == "result"]
        assert result_order == ["gemm", "durbin"]


class TestTCP:
    def test_round_trip_over_a_real_socket(self, tmp_path):
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        with ServiceServer(("127.0.0.1", 0), service) as server:
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = server.server_address[:2]
                with socket.create_connection((host, port), timeout=30) as conn:
                    conn.sendall(
                        (request_line(id=1, kernels=["gemm"], config={"max_depth": 0}) + "\n").encode()
                    )
                    conn.shutdown(socket.SHUT_WR)
                    stream = conn.makefile("r", encoding="utf-8")
                    events = [json.loads(line) for line in stream]
            finally:
                server.shutdown()
                thread.join(timeout=10)
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert events[1]["kernel"] == "gemm"


class TestServeStream:
    def test_serve_stream_writes_one_json_line_per_event(self, service):
        import io

        out = io.StringIO()
        source = io.StringIO(request_line(kernels=["gemm"], config={"max_depth": 0}) + "\n")
        service.serve_stream(source, out)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["event"] for line in lines] == [
            "hello", "result", "done",
        ]
