"""The JSON-lines service front-end: protocol, streaming, warm turnaround.

``repro serve`` wraps the streaming scheduler in a request/event protocol
whose ``result`` payloads are byte-compatible with the ``suite --json``
interchange document.  These tests drive the transport-agnostic
:class:`~repro.service.AnalysisService` directly, plus one real TCP
round-trip through :class:`~repro.service.ServiceServer`.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.analysis import AnalysisConfig, Analyzer, BoundStore
from repro.analysis.serialization import results_to_document
from repro.core.bounds import IOBoundResult
from repro.polybench import get_kernel, kernel_names
from repro.service import PROTOCOL_VERSION, AnalysisService, ServiceServer


def request_line(**fields) -> str:
    return json.dumps(fields)


def events_for(service: AnalysisService, *lines: str) -> list[dict]:
    return list(service.serve_lines(lines))


@pytest.fixture
def service(tmp_path) -> AnalysisService:
    return AnalysisService(store=BoundStore(tmp_path / "store"))


class TestProtocol:
    def test_hello_event_opens_every_stream(self, service):
        (hello,) = events_for(service)
        assert hello["event"] == "hello"
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["kernels"] == len(kernel_names())

    def test_request_streams_results_then_done(self, service):
        events = events_for(
            service,
            request_line(id=7, kernels=["gemm", "atax"], config={"max_depth": 0}),
        )
        kinds = [event["event"] for event in events]
        assert kinds == ["hello", "result", "result", "done"]
        for event in events[1:]:
            assert event["id"] == 7
        assert {event["kernel"] for event in events[1:3]} == {"gemm", "atax"}
        done = events[-1]
        assert done["results"] == 2
        assert done["derivations"] == 2
        assert done["elapsed_ms"] >= 0

    def test_result_payload_matches_suite_document_format(self, service):
        events = events_for(
            service, request_line(kernels=["gemm"], config={"max_depth": 0})
        )
        payload = events[1]["result"]
        # The event payload is exactly a suite-document entry: from_dict
        # reloads it, and wrapping it reproduces the interchange document.
        restored = IOBoundResult.from_dict(payload)
        expected = Analyzer(AnalysisConfig(max_depth=0)).analyze(
            get_kernel("gemm").program
        )
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            expected.to_dict(), sort_keys=True
        )
        document = results_to_document([restored])
        assert document["results"]["gemm"] == payload

    def test_blank_lines_are_ignored(self, service):
        events = events_for(service, "", "   \n")
        assert [event["event"] for event in events] == ["hello"]

    def test_warm_request_serves_from_store_with_zero_derivations(self, service):
        first = events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        again = events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        assert first[-1]["derivations"] == 1
        assert again[-1]["derivations"] == 0
        assert json.dumps(again[1]["result"], sort_keys=True) == json.dumps(
            first[1]["result"], sort_keys=True
        )

    def test_sequential_requests_multiplex_by_id(self, service):
        events = events_for(
            service,
            request_line(id="a", kernels=["gemm"], config={"max_depth": 0}),
            request_line(id="b", kernels=["atax"], config={"max_depth": 0}),
        )
        by_id = {}
        for event in events[1:]:
            by_id.setdefault(event["id"], []).append(event["event"])
        assert by_id == {"a": ["result", "done"], "b": ["result", "done"]}


class TestErrors:
    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("{not json", "not valid JSON"),
            ("[1, 2]", "must be a JSON object"),
            (request_line(kernels=["nope"]), "unknown kernels"),
            (request_line(kernels="gemm"), "list of kernel names"),
            (request_line(bogus=1), "unknown request keys"),
            (request_line(kernels=["gemm"], config={"bogus": 1}), "unknown config fields"),
            # cache_dir is a real AnalysisConfig field, so it earns the
            # documented purposeful rejection, not the unknown-field error.
            (
                request_line(kernels=["gemm"], config={"cache_dir": "/tmp/x"}),
                "server-side state",
            ),
            # Stats requests take no other keys and demand a literal true.
            (request_line(stats=True, kernels=["gemm"]), "stats request takes only"),
            (request_line(stats="yes"), "must be the JSON value true"),
            (request_line(kernels=["gemm"], config=[1]), "must be a JSON object"),
            (request_line(kernels=["gemm"], config={"gamma": 7}), "invalid config"),
            (
                request_line(kernels=["gemm"], config={"executor": "fibers"}),
                "invalid config",
            ),
        ],
    )
    def test_bad_requests_yield_one_error_event(self, service, line, fragment):
        events = events_for(service, line)
        assert [event["event"] for event in events] == ["hello", "error"]
        assert fragment in events[1]["error"]

    def test_error_echoes_request_id_when_parseable(self, service):
        events = events_for(service, request_line(id=42, kernels=["nope"]))
        assert events[1]["id"] == 42

    def test_server_survives_errors_between_requests(self, service):
        events = events_for(
            service,
            request_line(kernels=["nope"]),
            request_line(kernels=["gemm"], config={"max_depth": 0}),
        )
        assert [event["event"] for event in events] == [
            "hello", "error", "result", "done",
        ]


class TestExecutorSharing:
    def test_shared_pool_is_reused_across_requests_and_closed_once(self, tmp_path):
        """Requests that do not override executor settings share one server
        pool — no per-request pool spawn — and close() releases it."""
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread", n_jobs=2
        )
        events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
        shared = service._default_executor()
        assert shared is not None and shared.name == "thread"
        events_for(service, request_line(kernels=["atax"], config={"max_depth": 0}))
        assert service._default_executor() is shared, "pool must be reused"
        service.close()
        assert service._shared is None
        service.close()  # idempotent

    def test_request_executor_override_does_not_touch_shared_pool(self, tmp_path):
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread", n_jobs=2
        )
        events = events_for(
            service,
            request_line(kernels=["gemm"], config={"max_depth": 0, "executor": "serial"}),
        )
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert service._shared is None, (
            "an overriding request must not instantiate the shared pool"
        )
        service.close()

    def test_n_jobs_override_inherits_server_executor_kind(self, tmp_path, monkeypatch):
        """A request overriding only n_jobs resizes the pool but keeps the
        server's executor choice — it must not fall through to the
        process-when-n_jobs>1 auto-selection."""
        from repro.analysis import executor as executor_module

        resolved = []
        original = executor_module.resolve_executor

        def spying_resolve(executor=None, n_jobs=1):
            instance = original(executor, n_jobs)
            resolved.append(type(instance).__name__)
            return instance

        monkeypatch.setattr(
            "repro.analysis.scheduler.resolve_executor", spying_resolve
        )
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread"
        )
        events = events_for(
            service, request_line(kernels=["gemm"], config={"max_depth": 0, "n_jobs": 2})
        )
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert resolved == ["ThreadExecutor"]
        service.close()

    def test_live_executor_instance_stays_callers(self, tmp_path):
        from repro.analysis import ThreadExecutor

        executor = ThreadExecutor(n_jobs=2)
        try:
            service = AnalysisService(
                store=BoundStore(tmp_path / "store"), executor=executor
            )
            events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))
            service.close()  # must NOT close the caller's executor
            assert list(executor.map(lambda x: x + 1, [1, 2])) is not None
        finally:
            executor.close()


class TestStreamingOrder:
    def test_small_kernel_streams_before_big_one_lands(self, tmp_path):
        """Within one request, results arrive in completion order: the
        single-task kernel's event precedes the many-task kernel's even
        though the request listed the big one first."""
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        events = events_for(service, request_line(kernels=["durbin", "gemm"]))
        result_order = [event["kernel"] for event in events if event["event"] == "result"]
        assert result_order == ["gemm", "durbin"]


class TestTCP:
    def test_round_trip_over_a_real_socket(self, tmp_path):
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        with ServiceServer(("127.0.0.1", 0), service) as server:
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                host, port = server.server_address[:2]
                with socket.create_connection((host, port), timeout=30) as conn:
                    conn.sendall(
                        (request_line(id=1, kernels=["gemm"], config={"max_depth": 0}) + "\n").encode()
                    )
                    conn.shutdown(socket.SHUT_WR)
                    stream = conn.makefile("r", encoding="utf-8")
                    events = [json.loads(line) for line in stream]
            finally:
                server.shutdown()
                thread.join(timeout=10)
        assert [event["event"] for event in events] == ["hello", "result", "done"]
        assert events[1]["kernel"] == "gemm"


class TestServeStream:
    def test_serve_stream_writes_one_json_line_per_event(self, service):
        import io

        out = io.StringIO()
        source = io.StringIO(request_line(kernels=["gemm"], config={"max_depth": 0}) + "\n")
        service.serve_stream(source, out)
        lines = out.getvalue().strip().splitlines()
        assert len(lines) == 3
        assert [json.loads(line)["event"] for line in lines] == [
            "hello", "result", "done",
        ]

    @pytest.mark.parametrize("hangup", [BrokenPipeError, ConnectionResetError])
    def test_client_hangup_ends_the_stream_cleanly(self, service, hangup):
        """A closed stdout pipe (client died) must end serve_stream without
        a traceback, and the abandoned request's in-flight count must be
        unwound immediately."""
        import io

        class HangupStream(io.StringIO):
            def __init__(self, fail_after: int):
                super().__init__()
                self.writes_left = fail_after

            def write(self, text):
                if self.writes_left <= 0:
                    raise hangup("client went away")
                self.writes_left -= 1
                return super().write(text)

        source = io.StringIO(
            request_line(kernels=["gemm", "atax"], config={"max_depth": 0}) + "\n"
        )
        out = HangupStream(fail_after=2)  # hello + first result, then the pipe dies
        service.serve_stream(source, out)  # must not raise
        assert service.in_flight == 0
        events = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [event["event"] for event in events] == ["hello", "result"]


class TestPerRequestAccounting:
    """The cross-request accounting bugfix: ``done`` events report the
    request's OWN derivations, not a delta of the process-global counter
    that every concurrent request also bumps."""

    def test_interleaved_requests_each_report_only_their_own_derivations(self, tmp_path):
        """Advance two request generators by hand so their derivations
        interleave deterministically.  The old global-delta accounting
        (``derivation_count() - derived_before``) would make the one-kernel
        request report all three derivations."""
        from repro.analysis import derivation_count

        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        derived_before = derivation_count()
        one = service.handle_request(
            request_line(id="one", kernels=["gemm"], config={"max_depth": 0})
        )
        two = service.handle_request(
            request_line(id="two", kernels=["atax", "bicg"], config={"max_depth": 0})
        )
        # Interleave: request "two" derives both its kernels between request
        # "one"'s derivation and its done event.
        assert next(one)["event"] == "result"          # one derives gemm
        assert next(two)["event"] == "result"          # two derives atax
        assert next(two)["event"] == "result"          # two derives bicg
        done_two = next(two)
        done_one = next(one)
        assert done_two["event"] == "done" and done_one["event"] == "done"
        # Three derivations happened globally while "one" was in flight...
        assert derivation_count() - derived_before == 3
        # ...but each request reports only its own.
        assert done_one["derivations"] == 1
        assert done_two["derivations"] == 2
        service.close()

    def test_in_flight_is_unwound_when_a_client_abandons_mid_request(self, service):
        request = service.handle_request(
            request_line(kernels=["gemm", "atax"], config={"max_depth": 0})
        )
        assert next(request)["event"] == "result"
        assert service.in_flight == 1
        request.close()  # client hung up between results
        assert service.in_flight == 0


class TestStats:
    def test_stats_event_reports_service_and_store_state(self, service):
        events = events_for(
            service,
            request_line(kernels=["gemm"], config={"max_depth": 0}),
            request_line(id="probe", stats=True),
        )
        stats = events[-1]
        assert stats["event"] == "stats"
        assert stats["id"] == "probe"
        assert stats["protocol"] == PROTOCOL_VERSION
        assert stats["uptime_s"] >= 0
        assert stats["in_flight"] == 0
        assert stats["requests_served"] == 1  # stats probes are not analysis requests
        assert stats["kernels"] == len(kernel_names())
        store = stats["store"]
        # A cold derivation persists the program bound plus task-level
        # sub-bounds; the quick snapshot sees every entry this session wrote.
        assert store["entries"] >= 1
        assert store["entries"] == store["writes"]
        assert store["total_bytes"] > 0
        assert store["misses"] >= 1

    def test_stats_without_a_store_reports_null(self):
        with AnalysisService(store=None) as service:
            events = events_for(service, request_line(stats=True))
            assert events[-1]["store"] is None


def _read_until(stream, kind: str) -> list[dict]:
    """Collect events from a socket line stream until `kind` (inclusive)."""
    events = []
    for line in stream:
        event = json.loads(line)
        events.append(event)
        if event["event"] == kind:
            return events
    raise AssertionError(f"stream ended before a {kind!r} event: {events}")


class _Client:
    """One interactive JSON-lines TCP connection."""

    def __init__(self, host: str, port: int, timeout: float = 120.0):
        self.conn = socket.create_connection((host, port), timeout=timeout)
        self.stream = self.conn.makefile("r", encoding="utf-8")

    def send(self, line: str) -> None:
        self.conn.sendall((line + "\n").encode("utf-8"))

    def read_event(self) -> dict:
        return json.loads(self.stream.readline())

    def read_until(self, kind: str) -> list[dict]:
        return _read_until(self.stream, kind)

    def close(self) -> None:
        self.stream.close()
        self.conn.close()


def _await_in_flight(client: "_Client", minimum: int, timeout: float = 30.0) -> dict:
    """Poll ``{"stats": true}`` until at least `minimum` requests are in
    flight; returns the satisfying stats event."""
    deadline = time.monotonic() + timeout
    while True:
        client.send(request_line(stats=True))
        stats = client.read_event()
        assert stats["event"] == "stats"
        if stats["in_flight"] >= minimum:
            return stats
        assert time.monotonic() < deadline, (
            f"no request became in-flight within {timeout}s: {stats}"
        )
        time.sleep(0.01)


class TestConcurrentTCP:
    # Disjoint single-derivation workloads, all <0.2s at max_depth 0.
    CHEAP = ["deriche", "gesummv", "mvt", "bicg", "trisolv", "gemm", "doitgen", "atax"]

    @pytest.fixture
    def server(self, tmp_path):
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server, service
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=30)
            service.close()

    def test_four_clients_get_byte_identical_payloads_and_own_counts(
        self, server, tmp_path
    ):
        """4 concurrent connections x 2 requests each: every client receives
        exactly the payload a sequential run produces, and every done event
        counts only its own request's derivation."""
        tcp, service = server
        host, port = tcp.server_address[:2]
        # Sequential ground truth from an independent service + store.
        expected = {}
        with AnalysisService(store=BoundStore(tmp_path / "seq-store")) as sequential:
            for name in self.CHEAP:
                events = events_for(
                    sequential, request_line(kernels=[name], config={"max_depth": 0})
                )
                expected[name] = events[1]["result"]

        per_client = [self.CHEAP[i::4] for i in range(4)]  # 2 disjoint kernels each
        outputs: list[list[dict] | None] = [None] * 4
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def run_client(index: int) -> None:
            try:
                lines = "".join(
                    request_line(
                        id=f"c{index}r{request}",
                        kernels=[kernel],
                        config={"max_depth": 0},
                    )
                    + "\n"
                    for request, kernel in enumerate(per_client[index])
                )
                barrier.wait(timeout=30)
                with socket.create_connection((host, port), timeout=120) as conn:
                    conn.sendall(lines.encode("utf-8"))
                    conn.shutdown(socket.SHUT_WR)
                    stream = conn.makefile("r", encoding="utf-8")
                    outputs[index] = [json.loads(line) for line in stream]
            except BaseException as error:  # surfaced in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=run_client, args=(index,)) for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert all(output is not None for output in outputs)

        for index, events in enumerate(outputs):
            assert events[0]["event"] == "hello"
            body = events[1:]
            assert [event["event"] for event in body] == [
                "result", "done", "result", "done",
            ]
            for request, kernel in enumerate(per_client[index]):
                result, done = body[2 * request], body[2 * request + 1]
                assert result["id"] == f"c{index}r{request}"
                assert result["kernel"] == kernel
                assert json.dumps(result["result"], sort_keys=True) == json.dumps(
                    expected[kernel], sort_keys=True
                ), f"client {index} payload for {kernel} differs from sequential run"
                assert done["results"] == 1
                # THE bugfix: under the old global-delta accounting,
                # overlapping requests each reported their neighbours' work.
                assert done["derivations"] == 1, (
                    f"client {index} request {request} counted foreign derivations"
                )
        assert service.in_flight == 0

    def test_warm_request_completes_while_cold_request_is_in_flight(self, server):
        tcp, service = server
        host, port = tcp.server_address[:2]
        # Pre-warm gemm so the warm request is pure store traffic.
        events_for(service, request_line(kernels=["gemm"], config={"max_depth": 0}))

        cold = _Client(host, port)
        warm = _Client(host, port)
        try:
            assert cold.read_event()["event"] == "hello"
            assert warm.read_event()["event"] == "hello"
            # jacobi-2d at depth 0 derives for seconds — a wide-open window.
            cold.send(request_line(id="cold", kernels=["jacobi-2d"], config={"max_depth": 0}))
            _await_in_flight(warm, minimum=1)

            warm.send(request_line(id="warm", kernels=["gemm"], config={"max_depth": 0}))
            warm_events = [warm.read_event(), warm.read_event()]
            assert [event["event"] for event in warm_events] == ["result", "done"]
            assert warm_events[1]["derivations"] == 0  # pure store hit

            # The cold request must still be running: the warm one was
            # served concurrently, not queued behind it.
            warm.send(request_line(stats=True))
            stats = warm.read_event()
            assert stats["in_flight"] >= 1, (
                "cold request finished before the warm turnaround — "
                "the server is serializing connections"
            )

            cold_events = cold.read_until("done")
            assert cold_events[-1]["id"] == "cold"
            assert cold_events[-1]["derivations"] == 1
        finally:
            warm.close()
            cold.close()

    def test_shutdown_drains_in_flight_requests(self, tmp_path):
        """server_close() while a request is streaming: the client still
        receives every remaining event, then the service pool closes once."""
        service = AnalysisService(store=BoundStore(tmp_path / "store"))
        server = ServiceServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]

        client = _Client(host, port)
        client.send(request_line(id="draining", kernels=["fdtd-2d"], config={"max_depth": 0}))
        # Half-close: the handler sees EOF after this one request, so the
        # drain has a definite end.
        client.conn.shutdown(socket.SHUT_WR)
        assert client.read_event()["event"] == "hello"

        probe = _Client(host, port)
        try:
            assert probe.read_event()["event"] == "hello"
            _await_in_flight(probe, minimum=1)
        finally:
            probe.close()

        closer = threading.Thread(target=lambda: (server.shutdown(), server.server_close()))
        closer.start()
        try:
            # The shutdown is in progress, yet the in-flight request streams
            # to completion.
            events = client.read_until("done")
            assert [event["event"] for event in events] == ["result", "done"]
            assert events[-1]["derivations"] == 1
        finally:
            client.close()
        closer.join(timeout=120)
        assert not closer.is_alive(), "server_close() failed to drain and return"
        thread.join(timeout=30)
        service.close()
        assert service.in_flight == 0


class TestSharedStateRaces:
    def test_lazy_pool_init_race_resolves_exactly_one_pool(self, monkeypatch):
        """Two concurrent first requests must not both observe `_shared is
        None` and leak a pool: widen the resolve window and hammer it."""
        import repro.service as service_module
        from repro.analysis.executor import resolve_executor as real_resolve

        created = []

        def slow_resolve(executor=None, n_jobs=1):
            time.sleep(0.05)  # widen the race window
            instance = real_resolve(executor, n_jobs)
            created.append(instance)
            return instance

        monkeypatch.setattr(service_module, "resolve_executor", slow_resolve)
        service = AnalysisService(executor="thread", n_jobs=2)
        seen: list[object] = []
        barrier = threading.Barrier(8)

        def grab() -> None:
            barrier.wait(timeout=30)
            seen.append(service._default_executor())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(created) == 1, "racing first requests leaked executor pools"
        assert len({id(instance) for instance in seen}) == 1
        service.close()

    def test_racing_closers_close_the_shared_pool_exactly_once(self, tmp_path):
        service = AnalysisService(
            store=BoundStore(tmp_path / "store"), executor="thread", n_jobs=2
        )
        shared = service._default_executor()
        closes: list[int] = []
        original_close = shared.close
        shared.close = lambda: (closes.append(1), original_close())  # type: ignore[method-assign]
        barrier = threading.Barrier(6)

        def racer() -> None:
            barrier.wait(timeout=30)
            service.close()

        threads = [threading.Thread(target=racer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(closes) == 1, "concurrent close() callers double-closed the pool"
        assert service._shared is None
