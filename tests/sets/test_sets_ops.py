"""Tests for set algebra: intersection, difference, projection, emptiness, images."""

import pytest

from repro.sets import (
    Constraint,
    LinExpr,
    ParamSet,
    Space,
    basic_set_is_empty,
    parse_function,
    parse_set,
    project_out,
)


def rectangle(n_name="N"):
    return parse_set(f"[{n_name}] -> {{ S[i, j] : 0 <= i < {n_name} and 0 <= j < {n_name} }}")


class TestIntersectionUnion:
    def test_intersection_enumerates_correctly(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        b = parse_set("[N] -> { S[i] : 3 <= i < 100 }")
        inter = a.intersect(b)
        assert sorted(p[0] for p in inter.enumerate_points({"N": 6})) == [3, 4, 5]

    def test_union_keeps_all_points(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < 2 }")
        b = parse_set("[N] -> { S[i] : 4 <= i < 6 }")
        union = a.union(b)
        assert sorted(p[0] for p in union.enumerate_points({"N": 10})) == [0, 1, 4, 5]

    def test_intersection_dimension_mismatch(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        b = rectangle()
        with pytest.raises(ValueError):
            a.intersect(b)


class TestDifference:
    def test_difference_of_intervals(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        b = parse_set("[N] -> { S[i] : 0 <= i < 5 }")
        diff = a.subtract(b)
        assert sorted(p[0] for p in diff.enumerate_points({"N": 8})) == [5, 6, 7]

    def test_difference_with_equality_cut(self):
        a = rectangle()
        cut = parse_set("[N] -> { S[i, j] : i = j and 0 <= i < N and 0 <= j < N }")
        diff = a.subtract(cut)
        points = diff.enumerate_points({"N": 3})
        assert (0, 0) not in points and (1, 1) not in points
        assert (0, 1) in points and len(points) == 6

    def test_difference_with_universe_is_empty(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        assert a.subtract(a).is_empty()


class TestEmptinessAndProjection:
    def test_contradictory_set_is_empty(self):
        s = parse_set("[N] -> { S[i] : i < 0 and i >= 0 }")
        assert s.is_empty()

    def test_parametric_emptiness_is_existential(self):
        # Non-empty for some N, so must not be reported empty.
        s = parse_set("[N] -> { S[i] : 5 <= i < N }")
        assert not s.is_empty()

    def test_context_constraints(self):
        s = parse_set("[N] -> { S[i] : 0 <= i < N and N <= 2 }")
        context = [Constraint(LinExpr({"N": 1}, -10))]  # N >= 10
        assert s.is_empty(context)
        assert not s.is_empty()

    def test_projection_of_triangle(self):
        tri = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
        proj = tri.project_onto(["i"])
        points = sorted(p[0] for p in proj.enumerate_points({"N": 4}))
        assert points == [0, 1, 2, 3]

    def test_project_out_single_basic(self):
        tri = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }").single_piece()
        projected = project_out(tri, ["j"])
        assert projected.space.dims == ("i",)

    def test_fix_dim(self):
        sq = rectangle()
        fixed = sq.fix_dim("i", 2)
        points = fixed.enumerate_points({"N": 4})
        assert all(p[0] == 2 for p in points)
        assert len(points) == 4


class TestImages:
    def test_image_of_translation(self):
        f, dom = parse_function("[N] -> { S[i, j] -> S[i - 1, j] : 1 <= i < N and 0 <= j < N }")
        image = f.image_of(dom, dom.space)
        points = image.enumerate_points({"N": 3})
        assert set(points) == {(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)}

    def test_image_of_broadcast_collapses_dimension(self):
        f, dom = parse_function("[M, N] -> { S[t, i] -> C[t] : 0 <= t < M and 0 <= i < N }")
        target = Space("C", ("t",), ("M", "N"))
        image = f.image_of(dom, target)
        assert sorted(p[0] for p in image.enumerate_points({"M": 3, "N": 5})) == [0, 1, 2]

    def test_image_matches_pointwise_application(self):
        f, dom = parse_function(
            "[N] -> { S[i, j] -> S[j, i] : 0 <= i < N and 0 <= j < N and i < j }"
        )
        params = {"N": 4}
        expected = {f.apply_to_point(p, params) for p in dom.enumerate_points(params)}
        image = set(f.image_of(dom, dom.space).enumerate_points(params))
        # The rational image may only over-approximate the exact image.
        assert expected <= image

    def test_empty_domain_gives_empty_image(self):
        f, dom = parse_function("[N] -> { S[i] -> S[i - 1] : 1 <= i < 1 }")
        image = f.image_of(dom, dom.space)
        assert basic_set_is_empty(image.pieces[0]) or not image.enumerate_points({"N": 5})


class TestParamSetHelpers:
    def test_single_piece_raises_on_union(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < 1 }")
        b = parse_set("[N] -> { S[i] : 2 <= i < 3 }")
        with pytest.raises(ValueError):
            a.union(b).single_piece()

    def test_with_tuple_name(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        renamed = a.with_tuple_name("T")
        assert renamed.space.tuple_name == "T"

    def test_coalesce_drops_empty_pieces(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        b = parse_set("[N] -> { S[i] : i < 0 and i >= 0 }")
        union = a.union(b)
        assert len(union.coalesce().pieces) == 1
