"""Tests for symbolic cardinality: exactness against brute-force enumeration."""

import pytest
import sympy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import (
    COUNT_BACKENDS,
    card,
    card_at,
    card_upper,
    count_backend,
    parse_set,
    sym,
)


def instance_value(expr, **values):
    return int(expr.subs({sym(k): v for k, v in values.items()}))


class TestCardExactShapes:
    def test_rectangle(self):
        d = parse_set("[M, N] -> { S[i, j] : 0 <= i < M and 0 <= j < N }")
        assert sympy.expand(card(d)) == sym("M") * sym("N")

    def test_triangle(self):
        d = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
        n = sym("N")
        assert sympy.expand(card(d) - n * (n + 1) / 2) == 0

    def test_cholesky_domain(self):
        d = parse_set("[N] -> { S[k, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }")
        assert instance_value(card(d), N=10) == card_at(d, {"N": 10}) == 120

    def test_fixed_dimension(self):
        d = parse_set("[N, W] -> { S[i, j] : 0 <= i < N and 0 <= j < N and i = W }")
        assert sympy.expand(card(d)) == sym("N")

    def test_empty_set_is_zero(self):
        d = parse_set("[N] -> { S[i] : i < 0 and i >= 0 }")
        assert card(d) == 0

    def test_union_inclusion_exclusion(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        b = parse_set("[N] -> { S[i] : 0 <= i < N }")
        union = a.union(b)
        # Identical pieces: inclusion-exclusion must not double count.
        assert sympy.expand(card(union)) == sym("N")

    def test_card_upper_is_additive(self):
        a = parse_set("[N] -> { S[i] : 0 <= i < N }")
        union = a.union(a)
        assert sympy.expand(card_upper(union)) == 2 * sym("N")


class TestCardAgainstEnumeration:
    CASES = [
        ("[N] -> { S[i, j] : 0 <= i < N and i <= j < N }", {"N": 9}),
        ("[N] -> { S[i, j] : 0 <= i < N and 0 <= j < N and j <= i + 2 }", {"N": 7}),
        ("[M, N] -> { S[i, j, k] : 0 <= i < M and 0 <= j < N and 0 <= k <= j }", {"M": 4, "N": 6}),
        ("[N] -> { S[k, i] : 0 <= k < N and k + 1 <= i < N }", {"N": 11}),
        ("[T, N] -> { S[t, i] : 0 <= t < T and 1 <= i < N - 1 }", {"T": 5, "N": 9}),
    ]

    def test_cases_match_enumeration(self):
        for text, params in self.CASES:
            d = parse_set(text)
            symbolic = instance_value(card(d), **params)
            assert symbolic == card_at(d, params), text


@settings(max_examples=30, deadline=None)
@given(
    lo1=st.integers(0, 3), hi1=st.integers(4, 8),
    lo2=st.integers(0, 3), hi2=st.integers(4, 8),
)
def test_random_rectangles_match_enumeration(lo1, hi1, lo2, hi2):
    d = parse_set(
        f"[N] -> {{ S[i, j] : {lo1} <= i < {hi1} and {lo2} <= j < {hi2} }}"
    )
    assert instance_value(card(d), N=10) == card_at(d, {"N": 10})


@settings(max_examples=30, deadline=None)
@given(offset=st.integers(-3, 3), n=st.integers(6, 12))
def test_shifted_triangles_match_enumeration(offset, n):
    d = parse_set(f"[N] -> {{ S[i, j] : 0 <= i < N and 0 <= j and j <= i + {offset} }}")
    expected = card_at(d, {"N": n})
    got = instance_value(card(d), N=n)
    if offset >= 0:
        assert got == expected
    else:
        # Negative offsets make the first |offset| rows empty; the closed-form
        # summation counts them as negative-length ranges, so the symbolic
        # count may only *under*-estimate (the safe direction for |D|).
        assert got <= expected
        assert expected - got <= abs(offset) * (abs(offset) + 1) // 2


def test_nested_split_branches_guard_empty_subranges():
    """Regression: a case split must not sum over branch-empty sub-ranges.

    Found by the differential harness (tests/sets/test_differential.py): with
    two chained incomparable-bound splits (i1's upper depends on i0, i2's on
    i1, both racing against N), the inner branch condition carves a region of
    the outer domain where the summation interval is empty.  Summing the
    closed form there *subtracted* phantom points, so the error grew with N
    (the count even went negative) instead of vanishing in the large regime.
    """
    d = parse_set(
        "[N] -> { D[i0, i1, i2] : 3 <= i0 and i0 <= N - 2 and "
        "4 <= i1 and i1 <= N - 2 and i1 <= i0 + 2 and "
        "5 <= i2 and i2 <= N - 1 and i2 <= i1 + 3 }"
    )
    symbolic = card(d)
    for n in (9, 12, 15, 20, 30):
        assert instance_value(symbolic, N=n) == card_at(d, {"N": n})


BACKEND_AGREEMENT_CASES = [
    "[M, N] -> { S[i, j] : 0 <= i < M and 0 <= j < N }",
    "[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }",
    "[N] -> { S[k, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }",
    "[N, W] -> { S[i, j] : 0 <= i < N and 0 <= j < N and i = W }",
    "[N] -> { S[i] : i < 0 and i >= 0 }",
    "[N] -> { S[i, j] : 0 <= i < N and 0 <= j and j <= i - 3 }",
    # The nested-split regression set: both backends must run the same case
    # splits and guard the same branch-empty sub-ranges.
    "[N] -> { D[i0, i1, i2] : 3 <= i0 and i0 <= N - 2 and "
    "4 <= i1 and i1 <= N - 2 and i1 <= i0 + 2 and "
    "5 <= i2 and i2 <= N - 1 and i2 <= i1 + 3 }",
]


class TestCountBackends:
    def test_backend_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_COUNT_BACKEND", raising=False)
        assert count_backend() == "native"
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "sympy")
        assert count_backend() == "sympy"
        assert count_backend("native") == "native"  # explicit beats env
        with pytest.raises(KeyError, match="unknown count backend"):
            count_backend("isl")
        monkeypatch.setenv("REPRO_COUNT_BACKEND", "bogus")
        with pytest.raises(KeyError, match="unknown count backend"):
            count_backend()

    @pytest.mark.parametrize("text", BACKEND_AGREEMENT_CASES)
    def test_backends_byte_identical(self, text):
        d = parse_set(text)
        results = {b: sympy.sstr(card(d, backend=b)) for b in COUNT_BACKENDS}
        assert results["native"] == results["sympy"], text

    def test_card_basic_memoises_per_backend(self):
        from repro.sets import memo

        memo.refresh_enabled()
        d = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
        memo.CARD_CACHE.clear()
        memo.CARD_CACHE.reset_counters()
        first = card(d, backend="native")
        misses = memo.CARD_CACHE.misses
        hits_before = memo.CARD_CACHE.hits
        assert card(d, backend="native") == first
        assert memo.CARD_CACHE.hits == hits_before + 1
        assert memo.CARD_CACHE.misses == misses
        # The other backend is a distinct cache key, not a stale hit.
        assert sympy.sstr(card(d, backend="sympy")) == sympy.sstr(first)
        assert memo.CARD_CACHE.misses == misses + 1

    def test_memo_kill_switch(self, monkeypatch):
        from repro.sets import memo

        monkeypatch.setenv("REPRO_SETS_MEMO", "0")
        memo.refresh_enabled()
        try:
            d = parse_set("[N] -> { S[i] : 0 <= i < N }")
            memo.CARD_CACHE.clear()
            memo.CARD_CACHE.reset_counters()
            card(d, backend="native")
            card(d, backend="native")
            assert memo.CARD_CACHE.hits == 0 and len(memo.CARD_CACHE) == 0
        finally:
            monkeypatch.delenv("REPRO_SETS_MEMO", raising=False)
            memo.refresh_enabled()

    def test_counting_sum_timer_attributes_summation(self):
        from repro import perf

        perf.reset()
        d = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
        from repro.sets import memo

        memo.CARD_CACHE.clear()
        card(d, backend="native")
        snapshot = perf.snapshot()
        counting = snapshot.timing("counting")
        summation = snapshot.timing("counting-sum")
        assert counting is not None and counting.calls > 0
        assert summation is not None and summation.calls > 0
        # counting-sum nests inside counting: its time must not double-count
        # into counting's exclusive column.
        assert summation.inclusive_s <= counting.inclusive_s
