"""Unit tests for the set-backend layer, memoisation and canonical caching.

The trust boundary (DESIGN.md "Set-algebra backends"): compiled backends and
memo caches are *perf-only* — the pure loops are the semantic reference, and
every optimised path must be byte-identical or decline.  These tests pin:

* backend selection (env override, auto-detection, instance caching, errors);
* ``fm_combine`` parity with the reference pair-combination loop, and the
  decline guards (fractional coefficients, int64 overflow);
* ``enumerate_points`` parity including point *order*, and its guards;
* the ``REPRO_SETS_MEMO`` kill switch, including the on-object canonical
  form caching it must also disable (so benchmark slow legs are faithful);
* constraint interning and set fingerprints;
* the ``simplify`` redundancy rules (the re-canonicalisation bugfix sweep).
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.sets import (
    BACKEND_ENV,
    EQ,
    GE,
    BasicSet,
    Constraint,
    LinExpr,
    MEMO_ENV,
    Space,
    get_backend,
    memo_enabled,
    numba_available,
    numpy_available,
    parse_set,
)
from repro.sets import memo
from repro.sets.backend import (
    ENUMERATION_GRID_LIMIT,
    NumpySetBackend,
    PureSetBackend,
    reset_backend_cache,
)
from repro.sets.basic_set import _intern_table, interned_count
from repro.sets.fourier_motzkin import eliminate_variable, project_out

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


@pytest.fixture
def clean_backends(monkeypatch):
    yield monkeypatch
    monkeypatch.undo()
    reset_backend_cache()
    memo.refresh_enabled()
    memo.clear_all()


# -- selection ----------------------------------------------------------------


class TestBackendSelection:
    def test_pure_backend_declines_everything(self):
        backend = get_backend("pure")
        assert backend.name == "pure"
        assert backend.fm_combine([], []) is None
        assert backend.fraction_free_rref is False

    def test_env_override(self, clean_backends):
        clean_backends.setenv(BACKEND_ENV, "pure")
        assert get_backend().name == "pure"

    @requires_numpy
    def test_env_override_numpy(self, clean_backends):
        clean_backends.setenv(BACKEND_ENV, "numpy")
        backend = get_backend()
        assert isinstance(backend, NumpySetBackend)
        assert backend.fraction_free_rref is True

    def test_auto_detection_matches_availability(self, clean_backends):
        clean_backends.delenv(BACKEND_ENV, raising=False)
        name = get_backend().name
        if numba_available():
            assert name == "numba"
        elif numpy_available():
            assert name == "numpy"
        else:
            assert name == "pure"

    def test_unknown_backend_raises_key_error(self):
        with pytest.raises(KeyError):
            get_backend("fortran")

    @pytest.mark.skipif(numba_available(), reason="numba is installed here")
    def test_missing_numba_raises_runtime_error(self):
        with pytest.raises(RuntimeError):
            get_backend("numba")

    def test_instances_are_cached(self):
        assert get_backend("pure") is get_backend("pure")


# -- Fourier-Motzkin parity ---------------------------------------------------


def _random_system(rng: random.Random, nvars: int = 3, n: int = 6) -> list[Constraint]:
    names = [f"x{k}" for k in range(nvars)]
    constraints = []
    for _ in range(n):
        coeffs = {name: rng.randint(-3, 3) for name in rng.sample(names, rng.randint(1, nvars))}
        if not any(coeffs.values()):
            coeffs[names[0]] = 1
        kind = EQ if rng.random() < 0.2 else GE
        constraints.append(Constraint(LinExpr(coeffs, rng.randint(-5, 5)), kind))
    return constraints


@requires_numpy
class TestFmCombineParity:
    def test_eliminate_variable_identical_across_backends(self, clean_backends):
        rng = random.Random(424242)
        systems = [_random_system(rng) for _ in range(60)]

        clean_backends.setenv(BACKEND_ENV, "pure")
        memo.clear_all()
        reference = [repr(eliminate_variable(system, "x0")) for system in systems]

        clean_backends.setenv(BACKEND_ENV, "numpy")
        memo.clear_all()
        optimised = [repr(eliminate_variable(system, "x0")) for system in systems]

        assert optimised == reference

    def test_empty_sides_combine_to_nothing(self):
        backend = get_backend("numpy")
        assert backend.fm_combine([], [(Fraction(-1), LinExpr({"y": 1}, 0))]) == []
        assert backend.fm_combine([(Fraction(1), LinExpr({"y": 1}, 0))], []) == []

    def test_fractional_coefficient_declines(self):
        backend = get_backend("numpy")
        lower = [(Fraction(1, 2), LinExpr({"y": 1}, 0))]
        upper = [(Fraction(-1), LinExpr({}, 4))]
        assert backend.fm_combine(lower, upper) is None

    def test_fractional_rest_declines(self):
        backend = get_backend("numpy")
        lower = [(Fraction(1), LinExpr({"y": Fraction(1, 3)}, 0))]
        upper = [(Fraction(-1), LinExpr({}, 4))]
        assert backend.fm_combine(lower, upper) is None

    def test_int64_overflow_declines(self):
        backend = get_backend("numpy")
        big = 1 << 33
        lower = [(Fraction(big), LinExpr({"y": big}, 0))]
        upper = [(Fraction(-big), LinExpr({}, big))]
        assert backend.fm_combine(lower, upper) is None

    def test_combination_drops_trivially_true_rows(self):
        # x >= 0 and x <= 5 combine to the trivially-true 5 >= 0: the
        # backend must drop it exactly like the reference loop's filter.
        backend = get_backend("numpy")
        lower = [(Fraction(1), LinExpr({}, 0))]
        upper = [(Fraction(-1), LinExpr({}, 5))]
        assert backend.fm_combine(lower, upper) == []


# -- enumeration parity -------------------------------------------------------


@requires_numpy
class TestEnumerationParity:
    def test_point_order_is_identical(self):
        triangle = parse_set("{ T[i, j] : 0 <= i and i <= 6 and i <= j and j <= 6 }")
        piece = triangle.pieces[0]
        backend = get_backend("numpy")
        points = backend.enumerate_points(piece, {}, 2000)
        assert points is not None
        assert points == piece.enumerate_points_pure({})

    def test_parametric_set_matches_pure(self):
        band = parse_set("[N] -> { D[i, j] : 0 <= i and i <= N - 1 and i <= j and j <= i + 2 }")
        piece = band.pieces[0]
        backend = get_backend("numpy")
        points = backend.enumerate_points(piece, {"N": 8}, 2000)
        assert points == piece.enumerate_points_pure({"N": 8})

    def test_empty_range_short_circuits(self):
        empty = parse_set("{ E[i] : 3 <= i and i <= 1 }")
        backend = get_backend("numpy")
        assert backend.enumerate_points(empty.pieces[0], {}, 2000) == []

    def test_oversized_grid_declines(self):
        unbounded = BasicSet(Space("U", ("i", "j", "k"), ()))
        backend = get_backend("numpy")
        assert backend.enumerate_points(unbounded, {}, 2000) is None
        # Sanity: the declined grid really is beyond the limit.
        assert 4001 ** 3 > ENUMERATION_GRID_LIMIT

    def test_free_name_declines_to_pure_path(self):
        space = Space("F", ("i",), ())
        leaky = BasicSet(space, [Constraint(LinExpr({"i": 1, "M": -1}, 0), GE)])
        backend = get_backend("numpy")
        assert backend.enumerate_points(leaky, {}, 10) is None

    def test_non_integer_parameter_declines(self):
        band = parse_set("[N] -> { D[i] : 0 <= i and i <= N }")
        backend = get_backend("numpy")
        assert backend.enumerate_points(band.pieces[0], {"N": 1.5}, 10) is None


# -- the memo kill switch -----------------------------------------------------


class TestMemoKillSwitch:
    def test_env_disables_caches(self, clean_backends):
        clean_backends.setenv(MEMO_ENV, "0")
        memo.refresh_enabled()
        assert not memo_enabled()
        cache = memo.MemoCache("test.kill_switch", maxsize=8)
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or len(calls))
        cache.get_or_compute("k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 2  # recomputed: nothing was cached
        assert len(cache) == 0

    def test_kill_switch_disables_on_object_canonical_caching(self, clean_backends):
        # The benchmark's slow leg relies on this: with the switch off,
        # normalisation must recompute (pre-memoisation behaviour), not be
        # served from the frozen object or the intern table.
        clean_backends.setenv(MEMO_ENV, "0")
        memo.refresh_enabled()
        constraint = Constraint(LinExpr({"i": 2}, 4), GE)
        first = constraint.normalized()
        second = constraint.normalized()
        assert first == second
        assert first is not second

    def test_memo_on_interns_and_caches_normal_forms(self, clean_backends):
        clean_backends.setenv(MEMO_ENV, "1")
        memo.refresh_enabled()
        a = Constraint(LinExpr({"i": 2}, 4), GE)
        b = Constraint(LinExpr({"i": 2}, 4), GE)
        assert a.normalized() is a.normalized()
        assert a.normalized() is b.normalized()
        assert a.normalized().expr.coeffs == {"i": 1}

    def test_cache_overflow_flushes(self):
        cache = memo.MemoCache("test.overflow", maxsize=4)
        if not memo_enabled():
            pytest.skip("memo disabled in this environment")
        for k in range(6):
            cache.get_or_compute(k, lambda k=k: k)
        assert len(cache) <= 4


# -- fingerprints and interning ----------------------------------------------


class TestFingerprints:
    def test_structurally_equal_sets_share_a_fingerprint(self):
        a = parse_set("[N] -> { S[i] : 0 <= i and i <= N - 1 }").pieces[0]
        b = parse_set("[N] -> { S[i] : 0 <= i and i <= N - 1 }").pieces[0]
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    def test_different_sets_have_different_fingerprints(self):
        a = parse_set("{ S[i] : 0 <= i and i <= 5 }").pieces[0]
        b = parse_set("{ S[i] : 0 <= i and i <= 6 }").pieces[0]
        assert a.fingerprint() != b.fingerprint()

    def test_scaled_constraints_canonicalise_to_one_fingerprint(self):
        a = parse_set("{ S[i] : 0 <= 2*i and 2*i <= 10 }").pieces[0]
        b = parse_set("{ S[i] : 0 <= i and i <= 5 }").pieces[0]
        assert a.fingerprint() == b.fingerprint()

    def test_interned_count_reports_table_size(self):
        if not memo_enabled():
            pytest.skip("memo disabled in this environment")
        before = interned_count()
        Constraint(LinExpr({"zq_unique_dim": 3}, 9), GE).normalized()
        assert interned_count() >= before
        assert interned_count() == len(_intern_table)


# -- canonicalisation and simplify (the bugfix sweep) -------------------------


class TestCanonicalisation:
    def test_scaled_to_integers_returns_self_when_canonical(self):
        expr = LinExpr({"i": 2, "j": -3}, 5)
        assert expr.scaled_to_integers() is expr

    def test_scaled_to_integers_clears_denominators(self):
        expr = LinExpr({"i": Fraction(1, 2)}, 1)
        scaled = expr.scaled_to_integers()
        assert scaled.coeffs == {"i": 1}
        assert scaled.const == 2

    def test_scaled_to_integers_divides_common_factor(self):
        expr = LinExpr({"i": -2, "j": 4}, -6)
        scaled = expr.scaled_to_integers()
        assert scaled.coeffs == {"i": -1, "j": 2}
        assert scaled.const == -3


class TestSimplify:
    def _set(self, constraints):
        return BasicSet(Space("S", ("i", "j"), ("N",)), constraints)

    def test_keeps_only_the_tightest_parallel_bound(self):
        loose = Constraint(LinExpr({"i": 1}, 3), GE)   # i >= -3
        tight = Constraint(LinExpr({"i": 1}, 0), GE)   # i >= 0
        simplified = self._set([loose, tight]).simplify()
        assert len(simplified.constraints) == 1
        assert simplified.constraints[0].expr.const == 0

    def test_drops_inequality_implied_by_equality(self):
        eq = Constraint(LinExpr({"i": 1}, -5), EQ)     # i == 5
        ge = Constraint(LinExpr({"i": 1}, 0), GE)      # i >= 0, implied
        simplified = self._set([eq, ge]).simplify()
        assert simplified.constraints == (eq.normalized(),)

    def test_keeps_inequality_stricter_than_equality(self):
        eq = Constraint(LinExpr({"i": 1}, -5), EQ)     # i == 5
        ge = Constraint(LinExpr({"i": 1}, -7), GE)     # i >= 7: contradicts
        simplified = self._set([eq, ge]).simplify()
        assert len(simplified.constraints) == 2

    def test_identity_when_nothing_is_redundant(self):
        s = self._set([
            Constraint(LinExpr({"i": 1}, 0), GE),
            Constraint(LinExpr({"j": 1, "N": -1}, 0), GE),
        ])
        assert s.simplify() is s

    def test_simplify_is_memoised_by_fingerprint(self):
        if not memo_enabled():
            pytest.skip("memo disabled in this environment")
        memo.SIMPLIFY_CACHE.clear()
        a = self._set([Constraint(LinExpr({"i": 1}, 3), GE),
                       Constraint(LinExpr({"i": 1}, 0), GE)])
        b = self._set([Constraint(LinExpr({"i": 1}, 3), GE),
                       Constraint(LinExpr({"i": 1}, 0), GE)])
        assert a.simplify() is b.simplify()


# -- memoised set queries -----------------------------------------------------


class TestQueryMemoisation:
    def test_repeated_emptiness_checks_hit_the_cache(self):
        if not memo_enabled():
            pytest.skip("memo disabled in this environment")
        from repro.sets.fourier_motzkin import basic_set_is_empty

        memo.EMPTINESS_CACHE.clear()
        memo.EMPTINESS_CACHE.reset_counters()
        piece = parse_set("[N] -> { S[i] : 0 <= i and i <= N - 1 }").pieces[0]
        first = basic_set_is_empty(piece)
        hits_before = memo.EMPTINESS_CACHE.hits
        # A structurally equal set built independently must hit the cache.
        clone = parse_set("[N] -> { S[i] : 0 <= i and i <= N - 1 }").pieces[0]
        second = basic_set_is_empty(clone)
        assert second == first
        assert memo.EMPTINESS_CACHE.hits == hits_before + 1

    def test_projection_cache_returns_shared_result(self):
        if not memo_enabled():
            pytest.skip("memo disabled in this environment")
        memo.PROJECTION_CACHE.clear()
        a = parse_set("{ S[i, j] : 0 <= i and i <= 5 and i <= j and j <= 7 }").pieces[0]
        b = parse_set("{ S[i, j] : 0 <= i and i <= 5 and i <= j and j <= 7 }").pieces[0]
        assert project_out(a, ["j"]) is project_out(b, ["j"])

    def test_projection_results_are_correct_under_memo(self):
        piece = parse_set("{ S[i, j] : 0 <= i and i <= 5 and i <= j and j <= 7 }").pieces[0]
        projected = project_out(piece, ["j"])
        assert projected.space.dims == ("i",)
        points = {p[0] for p in piece.enumerate_points({})}
        assert set(p[0] for p in projected.enumerate_points({})) == points
