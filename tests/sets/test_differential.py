"""Differential tests: the symbolic set substrate vs. brute-force enumeration.

The whole derivation stack (counting sub-bound cardinalities, projecting
may-spill sets, subtracting already-covered domains) rests on `repro.sets`.
These tests pin the symbolic machinery against ground truth on hundreds of
seeded, randomized small polytopes:

* :func:`repro.sets.card` (the Fourier–Motzkin / Faulhaber counting path)
  against explicit integer-point enumeration, inside the documented contract
  — unit-coefficient bounds, large-parameter (non-empty) regime;
* :meth:`ParamSet.project_onto` (rational projection, exact here because
  every eliminated dimension has unit coefficients) against pointwise
  projection of the enumerated set;
* the ``union`` / ``intersect`` / ``subtract`` algebra against Python set
  algebra on the enumerated points;

plus hypothesis property tests for the closed-form counting cases.
"""

from __future__ import annotations

import random

import pytest
import sympy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import (
    BasicSet,
    CountingError,
    ParamSet,
    Space,
    card,
    card_basic,
    parse_set,
    sym,
)

#: Values of N used for the brute-force comparison.  "Large" relative to
#: every offset the generator can produce: all chamber boundaries introduced
#: by case splits (conditions like ``N >= c`` with c a sum of two generated
#: offsets) lie below 17, so at these values the single asymptotic-chamber
#: polynomial that ``card`` returns must agree exactly with enumeration.
PARAM_VALUES = (17, 21)


def random_polytope(rng: random.Random, ndim: int | None = None) -> ParamSet:
    """A random parametric polytope inside `card`'s documented contract.

    Every constraint has unit coefficients, and every dimension's range is
    non-empty *pointwise* — for all values of the outer dimensions and all
    ``N >= 7`` — which is exactly the "large regime, non-empty loop ranges"
    precondition under which the symbolic count is exact (the same shape
    every PolyBench iteration domain has).  The generator tracks, per
    dimension, a guaranteed constant lower bound (``min_val``) and a
    guaranteed parametric upper bound ``N - slack`` (``slack=None`` when the
    upper bound is constant or inherited), and only emits bound pairs whose
    non-emptiness follows from those invariants.  Redundant extra bounds are
    mixed in to exercise dominant-bound selection, and the "split" shape
    creates genuinely incomparable upper bounds to exercise case splits.
    """
    ndim = ndim if ndim is not None else rng.randint(1, 3)
    dims = [f"i{k}" for k in range(ndim)]
    clauses: list[str] = []
    min_val: list[int] = []     # dim k >= min_val[k] always holds
    slack: list[int | None] = []  # dim k <= N - slack[k] always holds (if set)

    for k, dim in enumerate(dims):
        options = ["box", "constbox"]
        if k:
            options.append("band")
            if any(s is not None for s in slack):
                options.append("triangle_up")
            if any(m >= 0 for m in min_val):
                options.append("triangle_down")
            if any(s is not None and m >= 0 for s, m in zip(slack, min_val)):
                options.append("split")
        choice = rng.choice(options)

        if choice == "box":            # c0 <= dim <= N - c1
            lo, c1 = rng.randint(0, 3), rng.randint(1, 4)
            c1 = min(c1, 7 - lo)       # non-empty at N = 7
            clauses += [f"{lo} <= {dim}", f"{dim} <= N - {c1}"]
            min_val.append(lo)
            slack.append(c1)
        elif choice == "constbox":     # c0 <= dim <= c0 + w
            lo, width = rng.randint(0, 3), rng.randint(0, 5)
            clauses += [f"{lo} <= {dim}", f"{dim} <= {lo + width}"]
            min_val.append(lo)
            slack.append(None)
        elif choice == "band":         # i_j - c <= dim <= i_j + c'
            j = rng.randrange(k)
            c, cp = rng.randint(0, 3), rng.randint(0, 3)
            clauses += [f"{dims[j]} - {c} <= {dim}", f"{dim} <= {dims[j]} + {cp}"]
            min_val.append(min_val[j] - c)
            inherited = None if slack[j] is None else slack[j] - cp
            slack.append(inherited if inherited and inherited >= 1 else None)
        elif choice == "triangle_up":  # i_j <= dim <= N - c1 (c1 <= slack[j])
            j = rng.choice([x for x in range(k) if slack[x] is not None])
            c1 = rng.randint(1, slack[j])
            clauses += [f"{dims[j]} <= {dim}", f"{dim} <= N - {c1}"]
            min_val.append(min_val[j])
            slack.append(c1)
        elif choice == "triangle_down":  # c0 <= dim <= i_j (c0 <= min_val[j])
            j = rng.choice([x for x in range(k) if min_val[x] >= 0])
            lo = rng.randint(0, min_val[j])
            clauses += [f"{lo} <= {dim}", f"{dim} <= {dims[j]}"]
            min_val.append(lo)
            slack.append(slack[j])
        else:                          # split: two incomparable upper bounds
            j = rng.choice(
                [x for x in range(k) if slack[x] is not None and min_val[x] >= 0]
            )
            cp = rng.randint(0, 3)
            lo = rng.randint(0, min_val[j] + cp)
            c1 = rng.randint(1, max(1, min(4, 7 - lo)))
            clauses += [
                f"{lo} <= {dim}",
                f"{dim} <= N - {c1}",
                f"{dim} <= {dims[j]} + {cp}",
            ]
            min_val.append(lo)
            slack.append(c1)

        # Redundant bounds (never tighter than the real ones) keep the
        # dominant-bound machinery honest without changing the set.
        if min_val[k] >= 0 and rng.random() < 0.3:
            clauses.append(f"0 <= {dim}")
        if slack[k] is not None and rng.random() < 0.3:
            clauses.append(f"{dim} <= N")

    text = f"[N] -> {{ D[{', '.join(dims)}] : {' and '.join(clauses)} }}"
    return parse_set(text)


class TestCardDifferential:
    """card() == brute-force count on hundreds of random polytopes."""

    CASES = 140

    def test_symbolic_card_matches_enumeration(self):
        rng = random.Random(20260728)
        compared = 0
        uncountable = 0
        for case in range(self.CASES):
            pset = random_polytope(rng)
            try:
                symbolic = card(pset)
            except CountingError:
                uncountable += 1
                continue
            for value in PARAM_VALUES:
                points = pset.enumerate_points({"N": value})
                if not points:
                    continue  # outside the documented non-empty regime
                expected = len(points)
                actual = symbolic.subs(sym("N"), value)
                assert actual == expected, (
                    f"case {case}: card mismatch at N={value}: "
                    f"symbolic {symbolic} -> {actual}, enumeration {expected}\n{pset!r}"
                )
                compared += 1
        # The test must actually exercise the counting path, not skip its way
        # to green: most cases are countable and non-empty by construction.
        assert compared >= self.CASES, f"only {compared} comparisons ran"
        assert uncountable <= self.CASES // 5, f"{uncountable} CountingErrors"

    def test_card_upper_is_a_true_upper_bound_on_unions(self):
        from repro.sets import card_upper

        rng = random.Random(42)
        compared = 0
        for _ in range(60):
            a = random_polytope(rng, ndim=2)
            b = random_polytope(rng, ndim=2)
            union = a.union(b.with_tuple_name(a.space.tuple_name))
            try:
                upper = card_upper(union)
            except CountingError:
                continue
            for value in PARAM_VALUES:
                exact = len(union.enumerate_points({"N": value}))
                if exact == 0:
                    continue
                bound = upper.subs(sym("N"), value)
                assert bound >= exact, (
                    f"card_upper {bound} < exact {exact} at N={value}\n{union!r}"
                )
                compared += 1
        assert compared >= 60


class TestProjectionDifferential:
    """Rational projection is integer-exact for unit-coefficient polytopes."""

    CASES = 70

    def test_project_onto_matches_pointwise_projection(self):
        rng = random.Random(987654321)
        compared = 0
        for case in range(self.CASES):
            pset = random_polytope(rng, ndim=rng.randint(2, 3))
            dims = pset.space.dims
            keep = sorted(rng.sample(range(len(dims)), rng.randint(1, len(dims) - 1)))
            kept_names = [dims[k] for k in keep]
            projected = pset.project_onto(kept_names)
            assert projected.space.dims == tuple(kept_names)
            for value in PARAM_VALUES:
                params = {"N": value}
                expected = {
                    tuple(point[k] for k in keep)
                    for point in pset.enumerate_points(params)
                }
                actual = set(projected.enumerate_points(params))
                assert actual == expected, (
                    f"case {case}: projection onto {kept_names} diverges at "
                    f"N={value}: {sorted(actual ^ expected)[:8]}\n{pset!r}"
                )
                if expected:
                    compared += 1
        assert compared >= self.CASES


class TestAlgebraDifferential:
    """union / intersect / subtract agree with set algebra on the points."""

    CASES = 50

    def _pairs(self):
        rng = random.Random(555)
        for _ in range(self.CASES):
            ndim = rng.randint(1, 3)
            a = random_polytope(rng, ndim=ndim)
            b = random_polytope(rng, ndim=ndim).with_tuple_name(a.space.tuple_name)
            yield a, b

    def test_union_intersect_subtract_match_point_algebra(self):
        checked = 0
        for a, b in self._pairs():
            for value in PARAM_VALUES:
                params = {"N": value}
                pa = set(a.enumerate_points(params))
                pb = set(b.enumerate_points(params))
                assert set(a.union(b).enumerate_points(params)) == pa | pb
                assert set(a.intersect(b).enumerate_points(params)) == pa & pb
                assert set(a.subtract(b).enumerate_points(params)) == pa - pb
                if pa and pb:
                    checked += 1
        assert checked >= self.CASES // 2

    def test_subtract_then_intersect_partitions_the_set(self):
        rng = random.Random(777)
        for _ in range(30):
            a = random_polytope(rng, ndim=2)
            b = random_polytope(rng, ndim=2).with_tuple_name(a.space.tuple_name)
            params = {"N": 9}
            difference = set(a.subtract(b).enumerate_points(params))
            overlap = set(a.intersect(b).enumerate_points(params))
            original = set(a.enumerate_points(params))
            assert difference | overlap == original
            assert not (difference & overlap)


# -- backend parity ------------------------------------------------------------

from repro.sets import BACKEND_ENV  # noqa: E402
from repro.sets import memo as sets_memo  # noqa: E402
from repro.sets.backend import (  # noqa: E402
    numba_available,
    numpy_available,
    reset_backend_cache,
)

#: Every optimised backend importable here; numba rides along when installed.
OPTIMISED_BACKENDS = [
    name
    for name, available in (("numpy", numpy_available()), ("numba", numba_available()))
    if available
]


@pytest.fixture
def backend_env(monkeypatch):
    """Activate a named set backend (and clear memo caches, so a cached
    result from one backend can never stand in for another's computation)."""

    def activate(name: str) -> None:
        monkeypatch.setenv(BACKEND_ENV, name)
        reset_backend_cache()
        sets_memo.clear_all()

    yield activate
    reset_backend_cache()
    sets_memo.clear_all()


@pytest.mark.skipif(not OPTIMISED_BACKENDS, reason="no optimised backend importable")
class TestBackendParity:
    """Optimised backends must be byte-identical to the pure reference loops.

    The differential battery re-runs under every importable optimised
    backend, and the outputs are then compared against the pure backend
    *exactly*: the same point lists in the same order, the same projected
    constraint systems — not merely equivalent sets.
    """

    CASES = 30

    @pytest.mark.parametrize("backend", OPTIMISED_BACKENDS)
    def test_card_battery_under_optimised_backend(self, backend, backend_env):
        backend_env(backend)
        rng = random.Random(20260807)
        compared = 0
        for case in range(self.CASES):
            pset = random_polytope(rng)
            try:
                symbolic = card(pset)
            except CountingError:
                continue
            value = PARAM_VALUES[0]
            points = pset.enumerate_points({"N": value})
            if not points:
                continue
            assert symbolic.subs(sym("N"), value) == len(points), (
                f"case {case} under backend {backend}\n{pset!r}"
            )
            compared += 1
        assert compared >= self.CASES * 3 // 4

    @pytest.mark.parametrize("backend", OPTIMISED_BACKENDS)
    def test_enumeration_and_projection_byte_identical(self, backend, backend_env):
        rng = random.Random(97531)
        polys = [random_polytope(rng, ndim=rng.randint(2, 3)) for _ in range(self.CASES)]
        keeps = [poly.space.dims[: 1 + case % 2] for case, poly in enumerate(polys)]

        backend_env("pure")
        ref_points = [poly.enumerate_points({"N": 9}) for poly in polys]
        ref_projections = [
            repr(poly.project_onto(list(keep))) for poly, keep in zip(polys, keeps)
        ]

        backend_env(backend)
        fast_points = [poly.enumerate_points({"N": 9}) for poly in polys]
        fast_projections = [
            repr(poly.project_onto(list(keep))) for poly, keep in zip(polys, keeps)
        ]

        # Exact equality: identical points in identical order, identical
        # canonicalised constraint systems after Fourier-Motzkin.
        assert fast_points == ref_points
        assert fast_projections == ref_projections


# -- hypothesis property tests -------------------------------------------------

box_bounds = st.tuples(
    st.integers(min_value=-4, max_value=4), st.integers(min_value=0, max_value=6)
)


class TestCountingProperties:
    @given(bounds=st.lists(box_bounds, min_size=1, max_size=3))
    @settings(max_examples=120, deadline=None)
    def test_concrete_box_cardinality_is_the_product_of_widths(self, bounds):
        dims = tuple(f"i{k}" for k in range(len(bounds)))
        space = Space("B", dims, ())
        box = BasicSet.from_bounds(
            space, {d: (lo, lo + width) for d, (lo, width) in zip(dims, bounds)}
        )
        expected = 1
        for _lo, width in bounds:
            expected *= width + 1
        assert card_basic(box) == expected
        assert len(box.enumerate_points({})) == expected

    @given(n=st.integers(min_value=1, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_concrete_triangle_count_is_the_gauss_sum(self, n):
        triangle = parse_set(
            f"{{ T[i, j] : 0 <= i and i <= {n - 1} and i <= j and j <= {n - 1} }}"
        )
        assert card(triangle) == n * (n + 1) // 2
        assert len(triangle.enumerate_points({})) == n * (n + 1) // 2

    @given(offset=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_parametric_band_count_evaluates_exactly(self, offset):
        band = parse_set(
            f"[N] -> {{ D[i, j] : 0 <= i and i <= N - 1 and "
            f"i <= j and j <= i + {offset} }}"
        )
        symbolic = card(band)
        for value in (7, 12):
            expected = len(band.enumerate_points({"N": value}))
            assert symbolic.subs(sym("N"), value) == expected

    @given(n=st.integers(min_value=9, max_value=15), cut=st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_inclusion_exclusion_on_overlapping_intervals(self, n, cut):
        # n >= 2*cut + 1 keeps the overlap [cut, N - cut - 1] non-empty — the
        # regime in which inclusion-exclusion over the pieces is exact.
        left = parse_set(f"[N] -> {{ I[i] : 0 <= i and i <= N - {cut + 1} }}")
        right = parse_set(f"[N] -> {{ I[i] : {cut} <= i and i <= N - 1 }}")
        union = left.union(right)
        symbolic = card(union)
        expected = len(union.enumerate_points({"N": n}))
        assert symbolic.subs(sym("N"), n) == expected
        assert isinstance(symbolic, sympy.Expr)
