"""Differential tests for the native polynomial engine (repro.sets.poly).

The native Faulhaber summation must agree with ``sympy.summation`` on every
input — symbolic, numeric, empty and crossed ranges alike — and the sympy
converters must be lossless on the rational-polynomial domain.  Random
polynomials (seeded and hypothesis-driven, degree <= 6) are summed over
random affine ranges and compared against the sympy reference expression.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
import sympy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import LinExpr, Poly, PolyConversionError, sym
from repro.sets.poly import bernoulli_number, faulhaber_coefficients

VARS = ("x", "y", "N", "M")


def random_poly(rng: random.Random, names=VARS, max_degree: int = 6) -> Poly:
    """A random multivariate polynomial with rational coefficients."""
    result = Poly.zero()
    for _ in range(rng.randint(1, 6)):
        monomial = {}
        budget = max_degree
        for name in rng.sample(names, rng.randint(0, len(names))):
            exponent = rng.randint(1, max(1, budget))
            budget -= exponent
            if exponent > 0:
                monomial[name] = exponent
            if budget <= 0:
                break
        coeff = Fraction(rng.randint(-9, 9), rng.randint(1, 7))
        result = result + Poly({tuple(sorted(monomial.items())): coeff})
    return result


def random_affine(rng: random.Random, names=("N", "M")) -> LinExpr:
    """A random affine bound over parameters (possibly constant or negative)."""
    coeffs = {
        name: rng.randint(-3, 3)
        for name in rng.sample(names, rng.randint(0, len(names)))
    }
    return LinExpr(coeffs, rng.randint(-6, 6))


class TestBernoulliAndFaulhaber:
    def test_bernoulli_values(self):
        values = [bernoulli_number(n) for n in range(9)]
        assert values == [
            Fraction(1), Fraction(-1, 2), Fraction(1, 6), Fraction(0),
            Fraction(-1, 30), Fraction(0), Fraction(1, 42), Fraction(0),
            Fraction(-1, 30),
        ]

    def test_faulhaber_closed_forms(self):
        # S_k(n) = sum_{x=0}^{n-1} x^k against the textbook formulas.
        assert faulhaber_coefficients(0) == (Fraction(1),)
        assert faulhaber_coefficients(1) == (Fraction(-1, 2), Fraction(1, 2))
        assert faulhaber_coefficients(2) == (
            Fraction(1, 6), Fraction(-1, 2), Fraction(1, 3),
        )

    def test_faulhaber_concrete_sums(self):
        for k in range(7):
            for n in range(12):
                closed = sum(
                    coeff * Fraction(n) ** power
                    for power, coeff in enumerate(faulhaber_coefficients(k), start=1)
                )
                assert closed == sum(Fraction(x) ** k for x in range(n)), (k, n)


class TestPolyAlgebra:
    def test_canonical_form_drops_zeros(self):
        p = Poly.var("x") - Poly.var("x")
        assert p.is_zero() and p == Poly.zero() and p == 0

    def test_arithmetic_matches_sympy(self):
        rng = random.Random(7)
        for _ in range(25):
            a, b = random_poly(rng), random_poly(rng)
            assert sympy.expand((a + b).to_sympy()) == sympy.expand(
                a.to_sympy() + b.to_sympy()
            )
            assert sympy.expand((a * b).to_sympy()) == sympy.expand(
                a.to_sympy() * b.to_sympy()
            )
            assert sympy.expand((a - b).to_sympy()) == sympy.expand(
                a.to_sympy() - b.to_sympy()
            )

    def test_pow_matches_repeated_multiplication(self):
        p = Poly.from_lin(LinExpr({"x": 2, "N": -1}, 3))
        assert p ** 0 == Poly.one()
        assert p ** 3 == p * p * p

    def test_substitute_affine(self):
        p = Poly.var("x") * Poly.var("x") + Poly.var("N")
        q = p.substitute("x", LinExpr({"N": 1}, -1))  # x -> N - 1
        n = sym("N")
        assert sympy.expand(q.to_sympy()) == sympy.expand((n - 1) ** 2 + n)

    def test_evaluate(self):
        p = Poly.from_lin(LinExpr({"x": 1}, 0)) ** 2 * Fraction(1, 2)
        assert p.evaluate({"x": 6}) == 18
        with pytest.raises(KeyError):
            p.evaluate({})

    def test_degree_and_names(self):
        p = Poly({(("N", 2), ("x", 3)): 1, (("x", 1),): 2})
        assert p.degree("x") == 3 and p.degree("N") == 2 and p.degree("z") == 0
        assert p.names() == {"N", "x"}
        assert p.total_degree() == 5


class TestConverters:
    def test_round_trip_random(self):
        rng = random.Random(11)
        for _ in range(30):
            p = random_poly(rng)
            assert Poly.from_sympy(p.to_sympy()) == p

    def test_from_sympy_round_trip_through_expand(self):
        n, m = sym("N"), sym("M")
        expr = sympy.expand((n + m) ** 3 - sympy.Rational(5, 3) * n * m + 7)
        assert Poly.from_sympy(expr).to_sympy().expand() == expr

    def test_constants(self):
        assert Poly.from_sympy(sympy.Integer(0)) == Poly.zero()
        assert Poly.from_sympy(sympy.Rational(3, 4)) == Poly.constant(Fraction(3, 4))

    def test_non_polynomial_declines(self):
        x = sym("x")
        for expr in (sympy.sqrt(x), sympy.sin(x), 1 / x, x ** sympy.Rational(1, 2)):
            with pytest.raises(PolyConversionError):
                Poly.from_sympy(expr)

    def test_non_rational_coefficient_declines(self):
        x = sym("x")
        with pytest.raises(PolyConversionError):
            Poly.from_sympy(sympy.pi * x)
        with pytest.raises(PolyConversionError):
            Poly.from_sympy(sympy.pi + sympy.Integer(0))


def _sympy_sum(p: Poly, name: str, lower: LinExpr, upper: LinExpr) -> sympy.Expr:
    from repro.sets.counting import lin_to_sympy

    return sympy.expand(
        sympy.summation(p.to_sympy(), (sym(name), lin_to_sympy(lower), lin_to_sympy(upper)))
    )


class TestFaulhaberSummation:
    def test_unit_weight_rectangle(self):
        p = Poly.one()
        total = p.sum_over("x", LinExpr({}, 0), LinExpr({"N": 1}, -1))
        assert total.to_sympy().expand() == sym("N")

    def test_triangle_weight(self):
        # sum_{x=0}^{i} 1 then sum_{i=0}^{N-1} (i+1) = N(N+1)/2
        inner = Poly.one().sum_over("x", LinExpr({}, 0), LinExpr({"i": 1}, 0))
        outer = inner.sum_over("i", LinExpr({}, 0), LinExpr({"N": 1}, -1))
        n = sym("N")
        assert sympy.expand(outer.to_sympy() - n * (n + 1) / 2) == 0

    def test_empty_range_is_zero(self):
        p = Poly.var("x") ** 2
        lower = LinExpr({"N": 1}, 0)
        upper = LinExpr({"N": 1}, -1)  # U = L - 1
        assert p.sum_over("x", lower, upper).is_zero()

    def test_crossed_numeric_range_matches_sympy_convention(self):
        # sympy: Sum(x, (x, 5, 2)) == -7, Sum(x**2, (x, 10, 3)) == -271.
        assert Poly.var("x").sum_over(
            "x", LinExpr({}, 5), LinExpr({}, 2)
        ) == Poly.constant(-7)
        assert (Poly.var("x") ** 2).sum_over(
            "x", LinExpr({}, 10), LinExpr({}, 3)
        ) == Poly.constant(-271)

    def test_bounds_involving_summed_name_rejected(self):
        with pytest.raises(ValueError):
            Poly.one().sum_over("x", LinExpr({"x": 1}, 0), LinExpr({}, 5))

    def test_seeded_random_differential(self):
        """Random polynomials over random symbolic affine ranges vs sympy."""
        rng = random.Random(2024)
        for case in range(40):
            p = random_poly(rng, names=("x", "y", "N", "M"), max_degree=6)
            lower, upper = random_affine(rng), random_affine(rng)
            native = p.sum_over("x", lower, upper)
            assert native.to_sympy().expand() == _sympy_sum(p, "x", lower, upper), (
                case, p, lower, upper,
            )

    def test_seeded_numeric_cross_check(self):
        """Summed closed forms evaluate to the honest term-by-term sum."""
        rng = random.Random(5)
        for _ in range(20):
            p = random_poly(rng, names=("x", "N"), max_degree=5)
            lo, hi = rng.randint(-4, 2), rng.randint(3, 9)
            closed = p.sum_over("x", LinExpr({}, lo), LinExpr({}, hi))
            for n in (2, 7):
                direct = sum(
                    p.evaluate({"x": value, "N": n}) for value in range(lo, hi + 1)
                )
                assert closed.evaluate({"N": n}) == direct


@settings(max_examples=40, deadline=None)
@given(
    degree=st.integers(0, 6),
    coeff_num=st.integers(-8, 8),
    coeff_den=st.integers(1, 6),
    lower_const=st.integers(-5, 5),
    lower_n=st.integers(-2, 2),
    upper_const=st.integers(-5, 5),
    upper_n=st.integers(-2, 2),
)
def test_hypothesis_single_power_sum_matches_sympy(
    degree, coeff_num, coeff_den, lower_const, lower_n, upper_const, upper_n
):
    """c * x^k * N summed over affine (possibly crossed/negative) ranges."""
    p = (
        Poly.var("x") ** degree
        * Poly.var("N")
        * Fraction(coeff_num, coeff_den)
    )
    lower = LinExpr({"N": lower_n} if lower_n else {}, lower_const)
    upper = LinExpr({"N": upper_n} if upper_n else {}, upper_const)
    native = p.sum_over("x", lower, upper)
    assert native.to_sympy().expand() == _sympy_sum(p, "x", lower, upper)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_hypothesis_random_poly_sum_matches_sympy(seed):
    rng = random.Random(seed)
    p = random_poly(rng, max_degree=6)
    lower, upper = random_affine(rng), random_affine(rng)
    native = p.sum_over("x", lower, upper)
    assert native.to_sympy().expand() == _sympy_sum(p, "x", lower, upper)
