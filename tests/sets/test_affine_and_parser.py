"""Tests for affine expressions, constraint parsing and the ISL-like parser."""

from fractions import Fraction

import pytest

from repro.sets import LinExpr, ParseError, parse_function, parse_set


class TestLinExpr:
    def test_var_and_constant(self):
        x = LinExpr.var("x")
        assert x.coeff("x") == 1
        assert LinExpr.constant(5).const == 5

    def test_arithmetic(self):
        x, y = LinExpr.var("x"), LinExpr.var("y")
        expr = 2 * x + y - 3
        assert expr.coeff("x") == 2
        assert expr.coeff("y") == 1
        assert expr.const == -3

    def test_zero_coefficients_are_dropped(self):
        x = LinExpr.var("x")
        expr = x - x
        assert expr.is_constant()
        assert not expr.names()

    def test_substitute(self):
        x, y = LinExpr.var("x"), LinExpr.var("y")
        expr = (2 * x + 1).substitute({"x": y - 1})
        assert expr == 2 * y - 1

    def test_evaluate(self):
        expr = 3 * LinExpr.var("i") + LinExpr.var("N") - 2
        assert expr.evaluate({"i": 4, "N": 10}) == 20

    def test_evaluate_missing_name_raises(self):
        with pytest.raises(KeyError):
            LinExpr.var("i").evaluate({})

    def test_scaled_to_integers(self):
        expr = LinExpr({"x": Fraction(1, 2), "y": Fraction(1, 3)})
        scaled = expr.scaled_to_integers()
        assert scaled.coeff("x") == 3
        assert scaled.coeff("y") == 2

    def test_scaled_removes_common_factor(self):
        expr = LinExpr({"x": 4, "y": 6}, 2)
        scaled = expr.scaled_to_integers()
        assert scaled.coeff("x") == 2
        assert scaled.coeff("y") == 3
        assert scaled.const == 1

    def test_equality_and_hash(self):
        assert LinExpr({"x": 1}, 2) == LinExpr.var("x") + 2
        assert hash(LinExpr({"x": 1})) == hash(LinExpr.var("x"))


class TestParseSet:
    def test_simple_rectangle(self):
        d = parse_set("[M, N] -> { S[t, i] : 0 <= t < M and 0 <= i < N }")
        assert d.space.tuple_name == "S"
        assert d.space.dims == ("t", "i")
        assert d.space.params == ("M", "N")
        assert d.contains_point((0, 0), {"M": 2, "N": 2})
        assert not d.contains_point((2, 0), {"M": 2, "N": 2})

    def test_chained_comparison(self):
        d = parse_set("[N] -> { A[i] : 0 <= i < N }")
        points = d.enumerate_points({"N": 4})
        assert sorted(points) == [(0,), (1,), (2,), (3,)]

    def test_triangular_domain(self):
        d = parse_set("[N] -> { S[i, j] : 0 <= i < N and 0 <= j <= i }")
        assert len(d.enumerate_points({"N": 4})) == 10

    def test_equality_constraint(self):
        d = parse_set("[N] -> { S[i, j] : 0 <= i < N and j = 2 }")
        points = d.enumerate_points({"N": 3})
        assert sorted(points) == [(0, 2), (1, 2), (2, 2)]

    def test_coefficient_syntax(self):
        d = parse_set("[N] -> { S[i] : 0 <= 2*i and 2*i < N }")
        assert sorted(d.enumerate_points({"N": 7})) == [(0,), (1,), (2,), (3,)]

    def test_no_constraints(self):
        d = parse_set("{ S[i] }")
        assert d.space.params == ()

    def test_malformed_raises(self):
        with pytest.raises(ParseError):
            parse_set("[N] -> S[i] : 0 <= i < N")
        with pytest.raises(ParseError):
            parse_set("[N] -> { S[i] : i ? N }")


class TestParseFunction:
    def test_uniform_dependence(self):
        f, dom = parse_function("[N] -> { S[i, j] -> S[i, j - 1] : 0 <= i < N and 1 <= j < N }")
        assert f.target_tuple == "S"
        assert f.is_translation()
        assert f.translation_vector() == (0, -1)
        assert dom.contains_point((0, 1), {"N": 3})
        assert not dom.contains_point((0, 0), {"N": 3})

    def test_broadcast_dependence(self):
        f, _ = parse_function("[M, N] -> { S[t, i] -> C[t] : 0 <= t < M and 0 <= i < N }")
        assert f.target_tuple == "C"
        assert f.target_arity == 1
        assert f.kernel().dim == 1

    def test_apply_to_point(self):
        f, _ = parse_function("[N] -> { S[i, j] -> A[j, i - 1] : 0 <= i < N }")
        assert f.apply_to_point((3, 5), {"N": 10}) == (5, 2)

    def test_requires_arrow(self):
        with pytest.raises(ParseError):
            parse_function("[N] -> { S[i, j] : 0 <= i < N }")
