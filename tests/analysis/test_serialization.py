"""JSON serialization: exact round-trips of results, documents and caches."""

import json

import sympy

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    load_results,
    program_fingerprint,
    results_from_document,
    results_to_document,
    save_results,
)
from repro.core import IOBoundResult
from repro.polybench import get_kernel


def _analyze(name, **config_kwargs):
    spec = get_kernel(name)
    config_kwargs.setdefault("max_depth", spec.max_depth)
    return Analyzer(AnalysisConfig(**config_kwargs)).analyze(spec.program)


class TestResultRoundTrip:
    def test_gemm_round_trip_preserves_expressions(self):
        result = _analyze("gemm")
        reloaded = IOBoundResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert reloaded.expression == result.expression
        assert reloaded.smooth == result.smooth
        assert reloaded.asymptotic == result.asymptotic
        assert reloaded.input_size == result.input_size
        assert reloaded.total_flops == result.total_flops
        assert reloaded.parameters == result.parameters
        assert reloaded.log == result.log

    def test_round_trip_preserves_sub_bounds_and_may_spill(self):
        result = _analyze("gemm")
        reloaded = IOBoundResult.from_dict(result.to_dict())
        assert len(reloaded.sub_bounds) == len(result.sub_bounds)
        for original, loaded in zip(result.sub_bounds, reloaded.sub_bounds):
            assert loaded.expression == original.expression
            assert loaded.smooth == original.smooth
            assert loaded.method == original.method
            assert loaded.statement == original.statement
            assert loaded.depth == original.depth
            assert set(loaded.may_spill) == {
                s for s, d in original.may_spill.items() if d.pieces
            }
            for statement, domain in loaded.may_spill.items():
                assert repr(domain) == repr(original.may_spill[statement])

    def test_wavefront_result_round_trip(self):
        result = _analyze("durbin")
        reloaded = IOBoundResult.from_dict(result.to_dict())
        assert reloaded.asymptotic == result.asymptotic
        assert {b.method for b in reloaded.sub_bounds} == {
            b.method for b in result.sub_bounds
        }

    def test_reloaded_result_still_evaluates(self):
        result = _analyze("gemm")
        reloaded = IOBoundResult.from_dict(result.to_dict())
        instance = {"Ni": 40, "Nj": 40, "Nk": 40, "S": 64}
        assert reloaded.evaluate(instance) == result.evaluate(instance)
        assert sympy.simplify(reloaded.oi_upper_bound() - result.oi_upper_bound()) == 0

    def test_malicious_expression_rejected(self):
        """Deserialization must not eval arbitrary code from a document."""
        data = _analyze("gemm").to_dict()
        data["asymptotic"] = "__import__('os').system('true')"
        try:
            IOBoundResult.from_dict(data)
        except ValueError as error:
            assert "refusing" in str(error)
        else:
            raise AssertionError("expected malicious payload to be rejected")

    def test_schema_mismatch_rejected(self):
        data = _analyze("gemm").to_dict()
        data["schema"] = 999
        try:
            IOBoundResult.from_dict(data)
        except ValueError as error:
            assert "schema" in str(error)
        else:
            raise AssertionError("expected a schema ValueError")


class TestDocuments:
    def test_document_round_trip(self, tmp_path):
        results = [_analyze("gemm"), _analyze("atax")]
        path = save_results(results, tmp_path / "bounds.json")
        reloaded = load_results(path)
        assert sorted(reloaded) == ["atax", "gemm"]
        assert reloaded["gemm"].asymptotic == results[0].asymptotic
        assert reloaded["atax"].smooth == results[1].smooth

    def test_document_schema_guard(self):
        document = results_to_document([_analyze("gemm")])
        document["schema"] = -1
        try:
            results_from_document(document)
        except ValueError as error:
            assert "schema" in str(error)
        else:
            raise AssertionError("expected a schema ValueError")


class TestFingerprintAndCache:
    def test_fingerprint_is_stable_and_discriminating(self):
        gemm = get_kernel("gemm").program
        atax = get_kernel("atax").program
        assert program_fingerprint(gemm) == program_fingerprint(gemm)
        assert program_fingerprint(gemm) != program_fingerprint(atax)

    def test_disk_cache_hit_returns_equal_bound(self, tmp_path):
        spec = get_kernel("gemm")
        analyzer = Analyzer(AnalysisConfig(max_depth=0, cache_dir=tmp_path))
        first = analyzer.analyze(spec.program)
        assert list(tmp_path.glob("objects/*/*.json"))
        second = analyzer.analyze(spec.program)
        assert second.smooth == first.smooth
        assert second.asymptotic == first.asymptotic

    def test_cache_key_depends_on_config(self, tmp_path):
        spec = get_kernel("gemm")
        a = Analyzer(AnalysisConfig(max_depth=0, cache_dir=tmp_path))
        b = Analyzer(AnalysisConfig(max_depth=0, gamma=0.5, cache_dir=tmp_path))
        assert a.cache_key(spec.program) != b.cache_key(spec.program)

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        spec = get_kernel("gemm")
        analyzer = Analyzer(AnalysisConfig(max_depth=0, cache_dir=tmp_path))
        fresh = analyzer.analyze(spec.program)
        (entry,) = (
            p for p in tmp_path.glob("objects/*/*.json") if not p.stem.endswith("-task")
        )
        entry.write_text("{ not json")
        again = analyzer.analyze(spec.program)
        assert again.smooth == fresh.smooth
