"""Store replication: ``export_archive`` / ``import_archive`` semantics.

The archive closes the PR 2 follow-up ("replicate a store across machines"):
a tarball of the sharded object layout that any other root can import, with
the same schema negotiation as the read path — an import only ever *adds*
knowledge, never rolls an entry back to an older envelope version, and a
hostile archive cannot write outside the store's own entry slots.
"""

from __future__ import annotations

import io
import json
import tarfile

import pytest

from repro.analysis import AnalysisConfig, Analyzer, BoundStore
from repro.analysis.store import STORE_SCHEMA
from repro.polybench import get_kernel

KERNELS = ["gemm", "atax"]


@pytest.fixture
def populated_store(tmp_path):
    store = BoundStore(tmp_path / "source")
    analyzer = Analyzer(AnalysisConfig(max_depth=0), store=store)
    for name in KERNELS:
        analyzer.analyze(get_kernel(name).program)
    return store


def result_keys(analyzer_config=None):
    config = analyzer_config or AnalysisConfig(max_depth=0)
    analyzer = Analyzer(config)
    return {name: analyzer.cache_key(get_kernel(name).program) for name in KERNELS}


class TestRoundTrip:
    def test_export_import_replicates_results_and_tasks(self, tmp_path, populated_store):
        archive = tmp_path / "replica.tar.gz"
        exported = populated_store.export_archive(archive)
        assert exported == len(populated_store) > 0

        replica = BoundStore(tmp_path / "replica")
        imported, skipped = replica.import_archive(archive)
        assert imported == exported
        assert skipped == 0

        source_stats = populated_store.stats()
        replica_stats = replica.stats()
        assert replica_stats.kinds == source_stats.kinds
        for name, key in result_keys().items():
            restored = replica.get(key)
            assert restored is not None
            assert restored.program_name == get_kernel(name).program.name

    def test_second_import_is_a_no_op(self, tmp_path, populated_store):
        archive = tmp_path / "replica.tar.gz"
        exported = populated_store.export_archive(archive)
        replica = BoundStore(tmp_path / "replica")
        replica.import_archive(archive)
        imported, skipped = replica.import_archive(archive)
        assert imported == 0
        assert skipped == exported

    def test_export_overwrites_in_place(self, tmp_path, populated_store):
        archive = tmp_path / "replica.tar.gz"
        populated_store.export_archive(archive)
        count = populated_store.export_archive(archive)
        assert count > 0
        with tarfile.open(archive) as tar:  # replaced atomically, still readable
            assert len(tar.getmembers()) == count


class TestSimulationEntries:
    """PR 6: ``simulation`` kind entries replicate like results and tasks."""

    SIM_KEY = "c" * 64 + "-sim"
    SIM_PAYLOAD = {
        "shape": [2, 2, 1], "policy": "opt", "capacity": 16,
        "simulated": True, "used_fallback": False,
        "loads": 123, "evictions": 45, "operations": 216, "flops": 432,
    }

    def test_export_import_round_trips_simulations(self, tmp_path, populated_store):
        populated_store.put_simulation(self.SIM_KEY, self.SIM_PAYLOAD)
        assert populated_store.stats().kinds.get("simulation") == 1

        archive = tmp_path / "replica.tar.gz"
        exported = populated_store.export_archive(archive)
        replica = BoundStore(tmp_path / "replica")
        imported, skipped = replica.import_archive(archive)
        assert (imported, skipped) == (exported, 0)

        assert replica.get_simulation(self.SIM_KEY) == self.SIM_PAYLOAD
        assert replica.stats().kinds.get("simulation") == 1

    def test_cache_stats_cli_lists_simulation_kind(self, tmp_path, populated_store, capsys):
        from repro.__main__ import main

        populated_store.put_simulation(self.SIM_KEY, self.SIM_PAYLOAD)
        assert main(["cache", "stats", "--root", str(populated_store.root)]) == 0
        output = capsys.readouterr().out
        assert "simulation" in output


class TestSchemaNegotiation:
    def test_never_overwrites_newer_entry(self, tmp_path, populated_store):
        archive = tmp_path / "replica.tar.gz"
        populated_store.export_archive(archive)

        replica = BoundStore(tmp_path / "replica")
        key = next(iter(result_keys().values()))
        # A future library version already owns this slot in the replica.
        newer_path = replica.path_for(key)
        newer_path.parent.mkdir(parents=True, exist_ok=True)
        newer_payload = {"store_schema": STORE_SCHEMA + 5, "key": key, "future": True}
        newer_path.write_text(json.dumps(newer_payload))

        imported, skipped = replica.import_archive(archive)
        assert skipped >= 1
        assert json.loads(newer_path.read_text()) == newer_payload

    def test_entries_from_a_newer_library_are_skipped(self, tmp_path):
        """An archive exported by a newer library version must not poison
        this library's store: it could neither read such entries nor ever
        replace them (put refuses newer slots), so import skips them."""
        key = "a" * 64 + "-" + "b" * 16
        archive = tmp_path / "future.tar.gz"
        payload = json.dumps({"store_schema": STORE_SCHEMA + 1, "key": key}).encode()
        with tarfile.open(archive, "w:gz") as tar:
            info = tarfile.TarInfo(f"objects/{key[:2]}/{key}.json")
            info.size = len(payload)
            tar.addfile(info, io.BytesIO(payload))

        store = BoundStore(tmp_path / "store")
        imported, skipped = store.import_archive(archive)
        assert (imported, skipped) == (0, 1)
        assert not store.path_for(key).exists()

    def test_older_entry_is_upgraded(self, tmp_path, populated_store):
        archive = tmp_path / "replica.tar.gz"
        populated_store.export_archive(archive)

        replica = BoundStore(tmp_path / "replica")
        key = next(iter(result_keys().values()))
        stale_path = replica.path_for(key)
        stale_path.parent.mkdir(parents=True, exist_ok=True)
        # A schema-0 bare payload (the legacy flat format) loses to the
        # archived schema-1 envelope.
        stale_path.write_text(json.dumps({"legacy": True}))

        replica.import_archive(archive)
        assert json.loads(stale_path.read_text()).get("store_schema") == STORE_SCHEMA


class TestHostileArchives:
    def _tar_with(self, tmp_path, members: dict[str, bytes]):
        archive = tmp_path / "hostile.tar.gz"
        with tarfile.open(archive, "w:gz") as tar:
            for name, data in members.items():
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        return archive

    def test_traversal_and_foreign_members_are_skipped(self, tmp_path):
        key = "0" * 64 + "-" + "1" * 16
        archive = self._tar_with(
            tmp_path,
            {
                "../evil.json": b"{}",
                "objects/zz/not-a-key.json": b"{}",
                "objects/00/readme.txt": b"hello",
                f"objects/{key[:2]}/{key}.json": b"not json at all",
            },
        )
        store = BoundStore(tmp_path / "store")
        imported, skipped = store.import_archive(archive)
        assert imported == 0
        assert skipped == 4
        assert len(store) == 0
        assert not (tmp_path / "evil.json").exists()

    def test_member_shard_dir_is_ignored_for_placement(self, tmp_path, populated_store):
        """Entries land at path_for(key) regardless of the shard directory
        the archive claims — a mismatched shard cannot scatter files."""
        key = next(iter(result_keys().values()))
        payload = json.dumps({"store_schema": STORE_SCHEMA, "kind": "task", "key": key,
                              "task_result": {"sub_bounds": [], "log": []}}).encode()
        wrong_shard = "ff" if key[:2] != "ff" else "00"
        archive = self._tar_with(
            tmp_path, {f"objects/{wrong_shard}/{key}.json": payload}
        )
        store = BoundStore(tmp_path / "store")
        imported, skipped = store.import_archive(archive)
        assert (imported, skipped) == (1, 0)
        assert store.path_for(key).exists()

    def test_unreadable_archive_raises_cleanly(self, tmp_path):
        bogus = tmp_path / "bogus.tar.gz"
        bogus.write_bytes(b"this is not a tarball")
        store = BoundStore(tmp_path / "store")
        with pytest.raises(tarfile.ReadError):
            store.import_archive(bogus)


class TestCLI:
    def test_cache_export_import_roundtrip(self, tmp_path, populated_store, capsys):
        from repro.__main__ import main

        archive = tmp_path / "cli.tar.gz"
        assert main(["cache", "export", str(archive), "--root", str(populated_store.root)]) == 0
        replica_root = tmp_path / "cli-replica"
        assert main(["cache", "import", str(archive), "--root", str(replica_root)]) == 0
        output = capsys.readouterr().out
        assert "packed" in output and "imported" in output

        replica = BoundStore(replica_root)
        assert len(replica) == len(populated_store)

    def test_cache_import_bad_archive_exits_with_message(self, tmp_path):
        from repro.__main__ import main

        bogus = tmp_path / "bogus.tar.gz"
        bogus.write_bytes(b"nope")
        with pytest.raises(SystemExit, match="cannot read archive"):
            main(["cache", "import", str(bogus), "--root", str(tmp_path / "root")])
