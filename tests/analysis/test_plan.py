"""The derivation plan: task decomposition, ordering, keys, and compat.

The plan is the contract of the whole pipeline: deterministic task lists
(one per statement x strategy x depth), stable task fingerprints that key
the task-level store entries, and a ``derive`` compatibility wrapper that
must reproduce the monolithic loops bit for bit.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    plan_program,
    register_strategy,
    reset_task_derivation_count,
    task_derivation_count,
    unregister_strategy,
)
from repro.analysis.plan import WHOLE_STRATEGY, DerivationTask, TaskResult
from repro.ir import DFG
from repro.polybench import get_kernel


class TestPlanStructure:
    def test_one_task_per_statement_strategy_depth(self):
        program = get_kernel("durbin").program
        plan = plan_program(program, AnalysisConfig(max_depth=1))
        ids = [task.task_id for task in plan.tasks]
        # One kpartition task per statement (topological order), then one
        # wavefront task per admissible (statement, depth) pair, depth-major.
        kpart = [i for i in ids if i.startswith("kpartition:")]
        wave = [i for i in ids if i.startswith("wavefront:")]
        assert len(kpart) == len(program.statements)
        assert wave and all(i.endswith(":d1") for i in wave)
        assert ids == kpart + wave  # strategy order = config order

    def test_max_depth_zero_plans_no_wavefront_tasks(self):
        program = get_kernel("durbin").program
        plan = plan_program(program, AnalysisConfig(max_depth=0))
        assert all(task.strategy == "kpartition" for task in plan.tasks)

    def test_plan_is_deterministic(self):
        program = get_kernel("correlation").program
        config = AnalysisConfig(max_depth=1)
        first = plan_program(program, config)
        second = plan_program(program, config)
        assert first.tasks == second.tasks
        assert first.task_keys() == second.task_keys()

    def test_wavefront_tasks_respect_statement_dimensionality(self):
        # gemm's single 3-D statement admits depths 1 and 2, not 3.
        program = get_kernel("gemm").program
        plan = plan_program(program, AnalysisConfig(max_depth=5))
        depths = sorted(t.depth for t in plan.tasks if t.strategy == "wavefront")
        assert depths == [1, 2]

    def test_task_roundtrips_through_dict(self):
        task = DerivationTask(strategy="wavefront", statement="S", depth=2)
        assert DerivationTask.from_dict(task.to_dict()) == task


class TestTaskKeys:
    def test_keys_are_disjoint_from_result_keys(self):
        program = get_kernel("gemm").program
        plan = plan_program(program, AnalysisConfig(max_depth=1))
        for key in plan.task_keys():
            assert key.endswith("-task")

    def test_gamma_invalidates_kpartition_but_not_wavefront_tasks(self):
        program = get_kernel("durbin").program
        base = plan_program(program, AnalysisConfig(max_depth=1))
        tweaked = plan_program(program, AnalysisConfig(max_depth=1, gamma=0.5))
        for task, old_key, new_key in zip(
            base.tasks, base.task_keys(), tweaked.task_keys()
        ):
            if task.strategy == "kpartition":
                assert old_key != new_key
            else:
                assert old_key == new_key

    def test_executor_and_jobs_do_not_touch_task_keys(self):
        program = get_kernel("gemm").program
        serial = plan_program(program, AnalysisConfig(max_depth=1))
        parallel = plan_program(
            program, AnalysisConfig(max_depth=1, executor="thread", n_jobs=4)
        )
        assert serial.task_keys() == parallel.task_keys()

    def test_raising_max_depth_reuses_finished_depths(self, tmp_path):
        """A store populated at max_depth=1 serves its tasks to a max_depth=2
        run: only the genuinely new depth-2 tasks execute."""
        store = BoundStore(tmp_path)
        program = get_kernel("gemm").program
        shallow = AnalysisConfig(max_depth=1)
        deep = shallow.replace(max_depth=2)
        Analyzer(shallow, store=store).analyze(program)

        new_tasks = len(plan_program(program, deep).tasks) - len(
            plan_program(program, shallow).tasks
        )
        assert new_tasks > 0
        reset_task_derivation_count()
        Analyzer(deep, store=store).analyze(program)
        assert task_derivation_count() == new_tasks


class TestDeriveCompatibility:
    @pytest.mark.parametrize("kernel", ["durbin", "bicg"])
    def test_derive_wrapper_matches_task_pipeline(self, kernel):
        """The legacy per-strategy ``derive`` (plan + run serially) must equal
        running the tasks one by one — same bounds, same log, same order."""
        from repro.analysis.plan import run_strategy_task
        from repro.analysis.strategies import resolve_strategies

        program = get_kernel(kernel).program
        config = AnalysisConfig(max_depth=1)
        dfg = DFG.from_program(program)
        instance = config.heuristic_instance(program.params)

        for strategy in resolve_strategies(config.strategies):
            log: list[str] = []
            via_derive = strategy.derive(dfg, config, instance, log)
            task_log: list[str] = []
            via_tasks = []
            for task in strategy.plan(dfg, config):
                result = run_strategy_task(strategy, dfg, config, instance, task)
                via_tasks.extend(result.sub_bounds)
                task_log.extend(result.log)
            assert [b.to_dict() for b in via_derive] == [b.to_dict() for b in via_tasks]
            assert log == task_log

    def test_legacy_derive_only_strategy_plans_one_whole_task(self):
        """Strategies predating the pipeline are scheduled as a single task."""

        class LegacyStrategy:
            name = "test-legacy"

            def derive(self, dfg, config, instance, log):
                log.append("legacy ran")
                return []

        register_strategy(LegacyStrategy)
        try:
            program = get_kernel("gemm").program
            config = AnalysisConfig(strategies=("test-legacy",))
            plan = plan_program(program, config)
            assert [t.statement for t in plan.tasks] == [WHOLE_STRATEGY]
            result = Analyzer(config).analyze(program)
            assert "legacy ran" in result.log
        finally:
            unregister_strategy("test-legacy")


class TestTaskResultSerialization:
    def test_roundtrip_preserves_bounds_and_log(self):
        from repro.analysis.plan import run_strategy_task
        from repro.analysis.strategies import get_strategy

        program = get_kernel("durbin").program
        config = AnalysisConfig(max_depth=1)
        dfg = DFG.from_program(program)
        instance = config.heuristic_instance(program.params)
        strategy = get_strategy("wavefront")
        task = DerivationTask(strategy="wavefront", statement="Y", depth=1)
        result = run_strategy_task(strategy, dfg, config, instance, task)
        assert result.sub_bounds, "durbin's Y must yield a wavefront bound"

        restored = TaskResult.from_dict(result.to_dict())
        assert restored.task == task
        assert restored.log == result.log
        assert [b.to_dict() for b in restored.sub_bounds] == [
            b.to_dict() for b in result.sub_bounds
        ]
