"""AnalysisConfig: validation, defaults, and equivalence with the legacy API."""

import pytest
import sympy

from repro.analysis import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_GAMMA,
    DEFAULT_PARAM_VALUE,
    AnalysisConfig,
    Analyzer,
)
from repro.core import derive_bounds
from repro.polybench import get_kernel


class TestDefaults:
    def test_default_fields_match_legacy_derive_bounds_signature(self):
        config = AnalysisConfig()
        assert config.instance is None
        assert config.gamma == DEFAULT_GAMMA
        assert config.max_depth == 1
        assert config.validate_wavefront is True
        assert config.wavefront_validation_instance is None
        assert config.max_subcdags_per_statement == 1
        assert config.strategies == ("kpartition", "wavefront")
        assert config.n_jobs == 1
        assert config.cache_dir is None

    def test_heuristic_instance_defaults(self):
        config = AnalysisConfig()
        instance = config.heuristic_instance(("Ni", "Nj"))
        assert instance == {
            "Ni": DEFAULT_PARAM_VALUE,
            "Nj": DEFAULT_PARAM_VALUE,
            "S": DEFAULT_CACHE_SIZE,
        }

    def test_heuristic_instance_overrides(self):
        config = AnalysisConfig(instance={"Ni": 7, "S": 32})
        assert config.heuristic_instance(("Ni", "Nj")) == {
            "Ni": 7,
            "Nj": DEFAULT_PARAM_VALUE,
            "S": 32,
        }

    def test_strategies_normalised_to_tuple(self):
        config = AnalysisConfig(strategies=["kpartition"])
        assert config.strategies == ("kpartition",)


class TestValidation:
    @pytest.mark.parametrize("gamma", [-0.1, 1.5])
    def test_gamma_out_of_range(self, gamma):
        with pytest.raises(ValueError, match="gamma"):
            AnalysisConfig(gamma=gamma)

    def test_negative_max_depth(self):
        with pytest.raises(ValueError, match="max_depth"):
            AnalysisConfig(max_depth=-1)

    def test_zero_subcdag_rounds(self):
        with pytest.raises(ValueError, match="max_subcdags_per_statement"):
            AnalysisConfig(max_subcdags_per_statement=0)

    def test_zero_jobs(self):
        with pytest.raises(ValueError, match="n_jobs"):
            AnalysisConfig(n_jobs=0)

    def test_empty_strategies(self):
        with pytest.raises(ValueError, match="strategies"):
            AnalysisConfig(strategies=())

    def test_unknown_strategy_fails_at_analysis_time(self):
        config = AnalysisConfig(strategies=("no-such-strategy",))
        with pytest.raises(KeyError, match="no-such-strategy"):
            Analyzer(config).analyze(get_kernel("gemm").program)

    def test_unknown_wavefront_validation_mode(self):
        with pytest.raises(ValueError, match="wavefront_validation"):
            AnalysisConfig(wavefront_validation="both")

    def test_wavefront_validation_default_and_signature(self):
        assert AnalysisConfig().wavefront_validation == "symbolic"
        symbolic = AnalysisConfig().signature()
        concrete = AnalysisConfig(wavefront_validation="concrete").signature()
        assert symbolic != concrete  # different semantics -> different cache keys

    def test_concrete_validation_mode_still_derives_durbin(self):
        config = AnalysisConfig(max_depth=1, wavefront_validation="concrete")
        result = Analyzer(config).analyze(get_kernel("durbin").program)
        assert any(b.method == "wavefront" for b in result.sub_bounds)


class TestRoundTripAndSignature:
    def test_dict_round_trip(self):
        config = AnalysisConfig(
            instance={"Ni": 12}, gamma=0.5, max_depth=2, n_jobs=3, cache_dir="/tmp/x"
        )
        assert AnalysisConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            AnalysisConfig.from_dict({"gama": 0.5})

    def test_signature_ignores_execution_fields(self):
        base = AnalysisConfig()
        assert base.signature() == AnalysisConfig(n_jobs=4, cache_dir="/tmp/c").signature()
        assert base.signature() != AnalysisConfig(gamma=0.5).signature()

    def test_replace(self):
        config = AnalysisConfig().replace(max_depth=3)
        assert config.max_depth == 3
        assert config.gamma == DEFAULT_GAMMA


class TestLegacyEquivalence:
    @pytest.mark.parametrize("name,max_depth", [("gemm", 0), ("durbin", 1)])
    def test_analyzer_matches_derive_bounds(self, name, max_depth):
        """Acceptance: Analyzer and legacy derive_bounds agree on gemm and a
        wavefront kernel (identical smooth/asymptotic expressions)."""
        program = get_kernel(name).program
        legacy = derive_bounds(program, max_depth=max_depth)
        new = Analyzer(AnalysisConfig(max_depth=max_depth)).analyze(program)
        assert sympy.simplify(legacy.smooth - new.smooth) == 0
        assert sympy.simplify(legacy.asymptotic - new.asymptotic) == 0
        assert legacy.log == new.log
