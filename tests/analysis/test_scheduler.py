"""Streaming scheduler acceptance: completion-order semantics, priority,
determinism, and interrupt-resume.

The scheduler's headline guarantees:

* **streaming** — a program's bound is yielded the moment its last task
  lands, while other programs' tasks are still running (never "after the
  whole batch");
* **priority** — workers drain the program with the fewest remaining tasks
  first, so small programs do not queue behind big ones;
* **determinism** — collected stream output is byte-identical to the
  barrier pipeline (`analyze_many`) on every executor and under adversarial
  completion orders;
* **interrupt safety** — a KeyboardInterrupt mid-batch loses only in-flight
  tasks: everything that landed is in the store, and the next run executes
  only what is missing.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    StreamCounters,
    ThreadExecutor,
    derivation_count,
    plan_program,
    reset_task_derivation_count,
    schedule_plans,
    stream_analyses,
    task_derivation_count,
)
from repro.analysis.scheduler import _execute_payload
from repro.polybench import analyze_suite, analyze_suite_stream, get_kernel

#: A deliberately lopsided batch: durbin's plan has several tasks, the
#: BLAS kernels' plans are small — the material for priority/streaming tests.
BIG = "durbin"
SMALL = ["bicg", "mvt"]


def result_bytes(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode()


class ReversedExecutor:
    """Completion-order adversary: completes tasks in *reverse* submission
    order, so the scheduler's lowest-priority work lands first — the
    worst case for "slowest program was submitted first" streaming."""

    name = "reversed"

    def map(self, fn, items):
        items = list(items)
        for index in reversed(range(len(items))):
            yield index, fn(items[index])

    def close(self) -> None:
        pass


class RecordingExecutor:
    """Map-only executor that records the order tasks were handed over in."""

    name = "recording"

    def __init__(self):
        self.seen: list[tuple] = []

    def map(self, fn, items):
        for index, item in enumerate(items):
            self.seen.append((item[0].name, item[2].task_id))
            yield index, fn(item)

    def close(self) -> None:
        pass


class InterruptingExecutor:
    """Simulates Ctrl-C: completes ``after`` tasks, then raises
    KeyboardInterrupt out of the scheduling loop."""

    name = "interrupting"

    def __init__(self, after: int):
        self.after = after

    def map(self, fn, items):
        for index, item in enumerate(list(items)):
            if index >= self.after:
                raise KeyboardInterrupt
            yield index, fn(item)

    def close(self) -> None:
        pass


class TestStreamingSemantics:
    def test_small_program_yields_before_batch_finishes(self):
        """The slowest-program-first adversary: the batch *starts* with the
        big kernel, yet the stream's first result arrives while the big
        kernel's tasks are still outstanding."""
        programs = [get_kernel(name).program for name in [BIG] + SMALL]
        config = AnalysisConfig(max_depth=1)
        total_tasks = sum(len(plan_program(p, config).tasks) for p in programs)

        reset_task_derivation_count()
        stream = Analyzer(config).analyze_stream(programs)
        first_name, first_result = next(stream)
        executed_at_first_yield = task_derivation_count()

        assert executed_at_first_yield < total_tasks, (
            "first result must stream out before the whole batch executed"
        )
        # Priority rule: the first completion is one of the small programs,
        # not the big kernel the batch led with.
        assert first_name in SMALL
        remaining = dict(stream)
        assert set(remaining) | {first_name} == {BIG, *SMALL}

    def test_priority_hands_small_programs_over_first(self):
        """Fewest-remaining-tasks-per-program first: every small program's
        tasks are scheduled before the big program's."""
        programs = [get_kernel(name).program for name in [BIG] + SMALL]
        config = AnalysisConfig(max_depth=1)
        recorder = RecordingExecutor()
        list(Analyzer(config).analyze_stream(programs, executor=recorder))

        big_positions = [
            position for position, (name, _) in enumerate(recorder.seen) if name == BIG
        ]
        small_positions = [
            position for position, (name, _) in enumerate(recorder.seen) if name != BIG
        ]
        assert small_positions and big_positions
        assert max(small_positions) < min(big_positions)

    def test_adversarial_completion_order_streams_and_matches_barrier(self):
        """Reverse-completion adversary: results stream in an order that
        differs from the input order, yet collected content is byte-equal
        to analyze_many's."""
        programs = [get_kernel(name).program for name in [BIG] + SMALL]
        config = AnalysisConfig(max_depth=1)
        streamed = list(
            Analyzer(config).analyze_stream(programs, executor=ReversedExecutor())
        )
        # Under reversed completions the big lead kernel lands first and the
        # highest-priority small kernel last — a completion order that
        # differs from the input order end to end.
        assert [name for name, _ in streamed] != [p.name for p in programs]
        barrier = Analyzer(config).analyze_many(programs)
        by_name = dict(streamed)
        for program, expected in zip(programs, barrier):
            assert result_bytes(by_name[program.name]) == result_bytes(expected)

    def test_warm_programs_yield_immediately_without_tasks(self, tmp_path):
        store = BoundStore(tmp_path)
        programs = [get_kernel(name).program for name in SMALL]
        config = AnalysisConfig(max_depth=1)
        analyzer = Analyzer(config, store=store)
        cold = analyzer.analyze_many(programs)

        reset_task_derivation_count()
        warm = list(analyzer.analyze_stream(programs))
        assert task_derivation_count() == 0
        assert [name for name, _ in warm] == [p.name for p in programs]
        for (_, warm_result), cold_result in zip(warm, cold):
            assert result_bytes(warm_result) == result_bytes(cold_result)

    def test_schedule_plans_yields_task_results_in_plan_order(self):
        config = AnalysisConfig(max_depth=1)
        plans = [
            plan_program(get_kernel(name).program, config) for name in [BIG] + SMALL
        ]
        seen = {}
        for plan_index, task_results in schedule_plans(plans, executor=ReversedExecutor()):
            seen[plan_index] = task_results
        assert sorted(seen) == [0, 1, 2]
        for plan_index, plan in enumerate(plans):
            assert [r.task for r in seen[plan_index]] == list(plan.tasks)

    def test_duplicate_programs_fan_out_one_derivation(self):
        program = get_kernel("gemm").program
        config = AnalysisConfig(max_depth=0)
        reset_task_derivation_count()
        streamed = list(Analyzer(config).analyze_stream([program, program]))
        assert len(streamed) == 2
        assert task_derivation_count() == len(plan_program(program, config).tasks)
        assert result_bytes(streamed[0][1]) == result_bytes(streamed[1][1])


class TestStreamEqualsBarrier:
    @pytest.mark.parametrize("kernel", [BIG] + SMALL)
    def test_byte_equality_per_kernel_serial(self, kernel):
        program = get_kernel(kernel).program
        config = AnalysisConfig(max_depth=1)
        ((name, streamed),) = list(Analyzer(config).analyze_stream([program]))
        (barrier,) = Analyzer(config).analyze_many([program])
        assert name == program.name
        assert result_bytes(streamed) == result_bytes(barrier)

    def test_byte_equality_threaded_batch(self):
        programs = [get_kernel(name).program for name in [BIG] + SMALL]
        config = AnalysisConfig(max_depth=1, executor="thread", n_jobs=4)
        streamed = dict(Analyzer(config).analyze_stream(programs))
        barrier = Analyzer(config).analyze_many(programs)
        for program, expected in zip(programs, barrier):
            assert result_bytes(streamed[program.name]) == result_bytes(expected)

    def test_suite_stream_collects_to_suite_results(self, tmp_path):
        names = ["gemm", "atax", BIG]
        streamed = {
            analysis.spec.name: analysis
            for analysis in analyze_suite_stream(names, store=BoundStore(tmp_path))
        }
        assert set(streamed) == set(names)
        barrier = analyze_suite(names)
        for analysis in barrier:
            assert result_bytes(streamed[analysis.spec.name].result) == result_bytes(
                analysis.result
            )


class TestEventLoopExecutors:
    def test_thread_pool_event_loop_streams_results(self):
        """The submit-based event loop (bounded in-flight set, priority
        refill) produces the same bytes as serial for a mixed batch."""
        programs = [get_kernel(name).program for name in [BIG] + SMALL]
        config = AnalysisConfig(max_depth=1)
        serial = Analyzer(config).analyze_many(programs)
        with ThreadExecutor(n_jobs=3) as executor:
            streamed = dict(Analyzer(config).analyze_stream(programs, executor=executor))
        for program, expected in zip(programs, serial):
            assert result_bytes(streamed[program.name]) == result_bytes(expected)

    def test_event_loop_failure_cancels_queued_tasks(self):
        """A failing task aborts the stream and cancels queued futures
        instead of grinding through the rest of the batch."""
        calls = []

        def flaky(payload):
            calls.append(payload[2].task_id)
            if len(calls) == 2:
                raise RuntimeError("boom")
            time.sleep(0.01)
            return _execute_payload(payload)

        config = AnalysisConfig(max_depth=1)
        plans = [plan_program(get_kernel(name).program, config) for name in [BIG] + SMALL]
        total_tasks = sum(len(plan.tasks) for plan in plans)

        executor = ThreadExecutor(n_jobs=1)
        # Substitute the payload runner via a tiny shim executor so the
        # failure happens inside the pool, after some successes.
        class Shim:
            name = "shim"
            n_jobs = 1

            def submit(self, fn, item):
                return executor.submit(flaky, item)

            def close(self):
                executor.close()

        with pytest.raises(RuntimeError, match="boom"):
            list(schedule_plans(plans, executor=Shim()))
        assert len(calls) < total_tasks


class TestInterruptResume:
    def test_keyboard_interrupt_mid_suite_resumes_missing_tasks_only(self, tmp_path):
        """Ctrl-C mid-suite: finished tasks are already persisted, and the
        resumed run re-executes exactly the missing ones."""
        store = BoundStore(tmp_path)
        names = ["bicg", "mvt", BIG]
        configs = {
            name: AnalysisConfig(max_depth=get_kernel(name).max_depth) for name in names
        }
        total_tasks = sum(
            len(plan_program(get_kernel(name).program, configs[name]).tasks)
            for name in names
        )
        interrupted_after = 3
        assert interrupted_after < total_tasks

        with pytest.raises(KeyboardInterrupt):
            list(
                analyze_suite_stream(
                    names, store=store, executor=InterruptingExecutor(interrupted_after)
                )
            )

        stats = store.stats()
        assert stats.kinds.get("task", 0) == interrupted_after
        # Streaming means a small kernel may have fully completed (and
        # stored its result) before the interrupt — but never all of them.
        assert stats.kinds.get("result", 0) < len(names)

        reset_task_derivation_count()
        resumed = analyze_suite(names, store=store)
        assert task_derivation_count() == total_tasks - interrupted_after

        baseline = analyze_suite(names)
        for resumed_analysis, base_analysis in zip(resumed, baseline):
            assert result_bytes(resumed_analysis.result) == result_bytes(
                base_analysis.result
            )

    def test_pool_close_cancels_queued_futures(self):
        """close() must cancel still-queued work (no orphan grinding): with
        one worker busy, the queued tasks never execute once close runs."""
        started = threading.Event()
        release = threading.Event()
        executed = []

        def task(index):
            executed.append(index)
            started.set()
            release.wait(timeout=10)
            return index

        executor = ThreadExecutor(n_jobs=1)
        first = executor.submit(task, 0)
        queued = [executor.submit(task, index) for index in (1, 2)]
        assert started.wait(timeout=10)

        closer = threading.Thread(target=executor.close)
        closer.start()
        # shutdown(cancel_futures=True) drains the queue before waiting on
        # the running task; wait for the cancellations, then release it.
        deadline = time.monotonic() + 10
        while not all(future.cancelled() for future in queued):
            assert time.monotonic() < deadline, "queued futures were not cancelled"
            time.sleep(0.005)
        release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        assert first.result() == 0
        assert executed == [0]


class TestStreamCounters:
    """Per-stream accounting: the concurrency-correctness substrate of the
    threaded service.  The module-global derivation_count() aggregates over
    every stream in the process; a StreamCounters instance threaded through
    one stream_analyses() call chain must count that stream's work alone."""

    @staticmethod
    def _jobs(names):
        config = AnalysisConfig(max_depth=0)
        return [(get_kernel(name).program, config) for name in names]

    def test_counters_scope_to_one_stream_under_interleaving(self):
        """Two interleaved streams: each counter sees only its own stream's
        derivations, while the global counter sees both.  The interleave is
        deterministic (generators advanced by hand), so with global-delta
        accounting stream 1 would observe stream 2's work — the exact bug
        the concurrent service hit."""
        counters_one, counters_two = StreamCounters(), StreamCounters()
        stream_one = stream_analyses(self._jobs(["gemm"]), counters=counters_one)
        stream_two = stream_analyses(
            self._jobs(["atax", "bicg"]), counters=counters_two
        )
        global_before = derivation_count()

        next(stream_one)          # stream 1 derives its single program ...
        results_two = list(stream_two)  # ... then stream 2 derives both of its
        assert list(stream_one) == []   # stream 1 finishes: nothing left

        assert counters_one.derivations == 1
        assert counters_two.derivations == 2
        assert len(results_two) == 2
        assert derivation_count() - global_before == 3

    def test_task_derivations_are_counted_per_stream(self):
        counters = StreamCounters()
        plans = [plan_program(get_kernel("gemm").program, AnalysisConfig(max_depth=0))]
        list(schedule_plans(plans, counters=counters))
        assert counters.task_derivations == len(plans[0].tasks)
        assert counters.derivations == 0  # schedule_plans counts tasks only

    def test_warm_stream_counts_zero(self, tmp_path):
        store = BoundStore(tmp_path / "store")
        jobs = self._jobs(["gemm"])
        cold = StreamCounters()
        list(stream_analyses(jobs, store=store, counters=cold))
        assert cold.derivations == 1

        warm = StreamCounters()
        results = list(stream_analyses(jobs, store=store, counters=warm))
        assert len(results) == 1
        assert warm.derivations == 0
        assert warm.task_derivations == 0

    def test_counters_are_thread_safe(self):
        counters = StreamCounters()
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for _ in range(500):
                counters.count_derivation()
                counters.count_task_derivations(2)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counters.derivations == 2000
        assert counters.task_derivations == 4000
