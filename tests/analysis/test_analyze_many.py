"""Regression tests for the batch alignment contract of ``analyze_many``.

The docstring promises an output list index-aligned with the input programs.
An earlier implementation filtered ``None`` slots out of the result list
instead, so a single silently-failed derivation would shift every later
result onto the wrong program — callers zipping ``programs`` with the return
value would mis-attribute bounds.  ``analyze_many`` must raise instead.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    derivation_count,
    reset_derivation_count,
)
from repro.analysis import analyzer as analyzer_module
from repro.polybench import get_kernel

KERNELS = ["gemm", "atax", "mvt"]


class TestBatchAlignment:
    def test_results_align_with_inputs_even_with_duplicates(self, tmp_path):
        programs = [get_kernel(name).program for name in KERNELS]
        programs.append(get_kernel("gemm").program)  # duplicate of index 0
        analyzer = Analyzer(AnalysisConfig(max_depth=0), store=BoundStore(tmp_path))
        reset_derivation_count()
        results = analyzer.analyze_many(programs)
        assert [r.program_name for r in results] == [p.name for p in programs]
        # The duplicate shares one derivation rather than re-deriving.
        assert derivation_count() == len(KERNELS)

    def test_mixed_cached_and_fresh_batch_stays_aligned(self, tmp_path):
        analyzer = Analyzer(AnalysisConfig(max_depth=0), store=BoundStore(tmp_path))
        gemm = get_kernel("gemm").program
        analyzer.analyze(gemm)  # pre-populate one entry
        programs = [get_kernel(name).program for name in ["atax", "gemm", "mvt"]]
        results = analyzer.analyze_many(programs)
        assert [r.program_name for r in results] == ["atax", "gemm", "mvt"]

    def test_silent_none_result_raises_instead_of_misaligning(self, monkeypatch):
        """A derivation that produces no result must not shrink the batch."""
        programs = [get_kernel(name).program for name in KERNELS]
        real_combine = analyzer_module.combine_plan

        def broken_combine(plan, task_results):
            if plan.program.name == "atax":
                return None  # simulate a silently failed combination
            return real_combine(plan, task_results)

        monkeypatch.setattr(analyzer_module, "combine_plan", broken_combine)
        analyzer = Analyzer(AnalysisConfig(max_depth=0))
        with pytest.raises(RuntimeError, match=r"indices \[1\].*atax"):
            analyzer.analyze_many(programs)
