"""Strategy registry: built-ins, custom plug-ins, and the batch entry point."""

import pytest
import sympy

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)
from repro.polybench import get_kernel


class TestRegistry:
    def test_builtins_registered(self):
        assert "kpartition" in available_strategies()
        assert "wavefront" in available_strategies()

    def test_get_strategy_instantiates(self):
        strategy = get_strategy("kpartition")
        assert strategy.name == "kpartition"
        assert callable(strategy.derive)

    def test_unknown_strategy_lists_alternatives(self):
        with pytest.raises(KeyError, match="kpartition"):
            get_strategy("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        class Duplicate:
            name = "kpartition"

            def derive(self, dfg, config, instance, log):
                return []

        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Duplicate)

    def test_factory_without_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_strategy(lambda: None)


class TestCustomStrategy:
    def test_noop_strategy_plugs_into_the_driver(self):
        """A registered no-op strategy runs through Analyzer unchanged: the
        driver still combines sub-bounds and adds the compulsory misses."""

        calls = []

        class NoOpStrategy:
            name = "test-noop"

            def derive(self, dfg, config, instance, log):
                calls.append(dfg.program.name)
                log.append("noop: nothing derived")
                return []

        register_strategy(NoOpStrategy)
        try:
            program = get_kernel("gemm").program
            result = Analyzer(AnalysisConfig(strategies=("test-noop",))).analyze(program)
        finally:
            unregister_strategy("test-noop")

        assert calls == ["gemm"]
        assert result.sub_bounds == []
        assert "noop: nothing derived" in result.log
        # No sub-bounds -> the bound degenerates to the compulsory input misses.
        assert sympy.simplify(result.smooth - program.input_size()) == 0

    def test_custom_strategy_composes_with_builtins(self):
        class MarkerStrategy:
            name = "test-marker"

            def derive(self, dfg, config, instance, log):
                log.append("marker ran")
                return []

        register_strategy(MarkerStrategy)
        try:
            config = AnalysisConfig(strategies=("kpartition", "test-marker"), max_depth=0)
            result = Analyzer(config).analyze(get_kernel("gemm").program)
        finally:
            unregister_strategy("test-marker")

        assert "marker ran" in result.log
        assert any(b.method == "kpartition" for b in result.sub_bounds)

    def test_kpartition_only_config_skips_wavefront(self):
        program = get_kernel("durbin").program
        full = Analyzer(AnalysisConfig(max_depth=1)).analyze(program)
        kpart_only = Analyzer(
            AnalysisConfig(max_depth=1, strategies=("kpartition",))
        ).analyze(program)
        assert any(b.method == "wavefront" for b in full.sub_bounds)
        assert not any(b.method == "wavefront" for b in kpart_only.sub_bounds)


class TestAnalyzeMany:
    KERNELS = ["gemm", "atax", "mvt", "trisolv", "bicg"]

    def test_parallel_matches_sequential(self):
        """Acceptance: analyze_many over >= 5 PolyBench kernels with n_jobs=2
        matches the sequential results."""
        programs = [get_kernel(name).program for name in self.KERNELS]
        sequential = Analyzer(AnalysisConfig(max_depth=0)).analyze_many(programs)
        parallel = Analyzer(AnalysisConfig(max_depth=0, n_jobs=2)).analyze_many(programs)
        assert [r.program_name for r in parallel] == [r.program_name for r in sequential]
        for seq, par in zip(sequential, parallel):
            assert sympy.simplify(seq.smooth - par.smooth) == 0
            assert sympy.simplify(seq.asymptotic - par.asymptotic) == 0

    def test_batch_preserves_input_order(self):
        names = list(reversed(self.KERNELS))
        programs = [get_kernel(name).program for name in names]
        results = Analyzer(AnalysisConfig(max_depth=0)).analyze_many(programs)
        assert [r.program_name for r in results] == names

    def test_suite_honours_n_jobs_on_config(self):
        """analyze_suite must not silently reset parallelism requested via
        the config object (regression: the n_jobs parameter clobbered it)."""
        from repro.analysis import AnalysisConfig
        from repro.polybench import analyze_suite

        analyses = analyze_suite(
            self.KERNELS[:3], config=AnalysisConfig(max_depth=0, n_jobs=2)
        )
        assert [a.spec.name for a in analyses] == self.KERNELS[:3]
        reference = analyze_suite(self.KERNELS[:3], max_depth=0)
        for batch, ref in zip(analyses, reference):
            assert sympy.simplify(batch.result.smooth - ref.result.smooth) == 0

    def test_batch_uses_disk_cache(self, tmp_path):
        programs = [get_kernel(name).program for name in self.KERNELS[:3]]
        analyzer = Analyzer(AnalysisConfig(max_depth=0, cache_dir=tmp_path))
        first = analyzer.analyze_many(programs)
        entries = list(tmp_path.glob("objects/*/*.json"))
        results = [p for p in entries if not p.stem.endswith("-task")]
        tasks = [p for p in entries if p.stem.endswith("-task")]
        assert len(results) == 3
        assert tasks, "task-level entries must be memoised alongside results"
        second = analyzer.analyze_many(programs)
        for a, b in zip(first, second):
            assert a.asymptotic == b.asymptotic
