"""``program_fingerprint``: declaration-order invariance, content sensitivity.

The fingerprint keys every store entry (result- and task-level), so it must
be a function of the program's *mathematical content* only: permuting the
order in which arrays, statements or dependences were declared must not
change it, while perturbing any dependence function must.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.analysis import program_fingerprint
from repro.ir import AffineProgram
from repro.polybench import get_kernel, kernel_names
from repro.sets import AffineFunction, LinExpr

#: A representative spread: single-statement, multi-statement, stencils.
KERNELS = ["gemm", "atax", "durbin", "correlation", "jacobi-2d"]

SEEDS = range(6)


def rebuilt(program: AffineProgram, seed: int | None = None) -> AffineProgram:
    """A structurally identical program, optionally with every declaration
    list shuffled by ``seed``."""
    arrays = list(program.arrays.values())
    statements = list(program.statements.values())
    dependences = list(program.dependences)
    if seed is not None:
        rng = random.Random(seed)
        rng.shuffle(arrays)
        rng.shuffle(statements)
        rng.shuffle(dependences)
    return AffineProgram(
        program.name, program.params, arrays, statements, dependences
    )


def existing_kernel(name: str) -> str:
    if name not in kernel_names():
        pytest.skip(f"kernel {name} not registered")
    return name


class TestDeclarationOrderInvariance:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_rebuild_preserves_fingerprint(self, kernel):
        program = get_kernel(existing_kernel(kernel)).program
        assert program_fingerprint(rebuilt(program)) == program_fingerprint(program)

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_shuffled_declarations_preserve_fingerprint(self, kernel, seed):
        program = get_kernel(existing_kernel(kernel)).program
        shuffled = rebuilt(program, seed=seed)
        assert program_fingerprint(shuffled) == program_fingerprint(program)


class TestContentSensitivity:
    def perturbed_dependence_program(self, program: AffineProgram, dep_index: int):
        """The same program with one dependence function offset by +1 in its
        last coordinate — a genuinely different data flow."""
        dependences = list(program.dependences)
        dep = dependences[dep_index]
        function = dep.function
        last = function.exprs[-1]
        bumped = LinExpr(dict(last.coeffs), last.const + 1)
        dependences[dep_index] = dataclasses.replace(
            dep,
            function=AffineFunction(
                function.domain_space, function.target_tuple, (*function.exprs[:-1], bumped)
            ),
        )
        return AffineProgram(
            program.name, program.params, program.arrays.values(),
            program.statements.values(), dependences,
        )

    @pytest.mark.parametrize("kernel", ["gemm", "durbin"])
    def test_perturbed_dependence_changes_fingerprint(self, kernel):
        program = get_kernel(existing_kernel(kernel)).program
        for dep_index in range(len(program.dependences)):
            perturbed = self.perturbed_dependence_program(program, dep_index)
            assert program_fingerprint(perturbed) != program_fingerprint(program), (
                f"bumping dependence {dep_index} of {kernel} must change the "
                "fingerprint"
            )

    def test_renamed_statement_changes_fingerprint(self):
        program = get_kernel("gemm").program
        statements = [
            dataclasses.replace(statement, name=f"renamed_{statement.name}")
            for statement in program.statements.values()
        ]
        dependences = [
            dataclasses.replace(
                dep,
                source=f"renamed_{dep.source}" if dep.source in program.statements else dep.source,
                sink=f"renamed_{dep.sink}",
            )
            for dep in program.dependences
        ]
        renamed = AffineProgram(
            program.name, program.params, program.arrays.values(), statements, dependences
        )
        assert program_fingerprint(renamed) != program_fingerprint(program)

    def test_distinct_kernels_never_collide(self):
        fingerprints = {}
        for name in kernel_names():
            fingerprints[name] = program_fingerprint(get_kernel(name).program)
        assert len(set(fingerprints.values())) == len(fingerprints)
