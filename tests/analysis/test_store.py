"""Tests for the content-addressed persistent bound store.

Covers the acceptance properties of the store subsystem: sharded layout and
key addressing, the ``$REPRO_STORE`` environment override, schema-version
negotiation (legacy entries readable, newer entries never corrupted),
corrupted/truncated entries as misses, LRU-by-atime eviction under a size
budget, survival under concurrent writer processes, and the CLI maintenance
subcommands (``python -m repro cache {stats,gc,clear}``).
"""

from __future__ import annotations

import concurrent.futures
import json
import os
import time

import pytest
import sympy

from repro.__main__ import main as cli_main
from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    derivation_count,
    parse_size,
    reset_derivation_count,
)
from repro.analysis.store import STORE_SCHEMA, default_store_root
from repro.core.bounds import IOBoundResult
from repro.sets import sym


def make_result(name: str = "prog", value: int = 1) -> IOBoundResult:
    """A small, fully valid result (cheap to build, no derivation needed)."""
    n = sym("N")
    expr = sympy.Integer(value) * n
    return IOBoundResult(
        program_name=name,
        parameters=("N",),
        expression=expr,
        smooth=expr,
        asymptotic=expr,
        input_size=n,
        total_flops=2 * n,
        sub_bounds=[],
        log=[f"value={value}"],
    )


KEY = "aa" + "0" * 62 + "-cafebabecafebabe"


class TestLayoutAndRoundtrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = BoundStore(tmp_path)
        result = make_result("gemm-like", 3)
        path = store.put(KEY, result)
        assert path == tmp_path / "objects" / KEY[:2] / f"{KEY}.json"
        assert path.exists()
        loaded = store.get(KEY)
        assert loaded is not None
        assert loaded.program_name == "gemm-like"
        assert loaded.smooth == result.smooth

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        store = BoundStore(tmp_path)
        keys = [f"{i:02x}" + "0" * 62 for i in range(16)]
        for i, key in enumerate(keys):
            store.put(key, make_result(f"p{i}", i + 1))
        shards = {p.parent.name for p in (tmp_path / "objects").glob("*/*.json")}
        assert shards == {key[:2] for key in keys}
        assert len(store) == 16

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = BoundStore(tmp_path)
        assert store.get(KEY) is None
        stats = store.stats()
        assert stats.misses == 1 and stats.hits == 0


class TestEnvironmentOverride:
    def test_repro_store_env_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "shared"))
        assert default_store_root() == tmp_path / "shared"
        store = BoundStore()
        store.put(KEY, make_result())
        assert (tmp_path / "shared" / "objects" / KEY[:2] / f"{KEY}.json").exists()

    def test_default_root_without_env_is_user_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        root = default_store_root()
        assert root.name == "repro" and root.parent.name == ".cache"

    def test_budget_env_is_parsed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_BUDGET", "2K")
        assert BoundStore(tmp_path).size_budget == 2048

    def test_parse_size_units(self):
        assert parse_size(4096) == 4096
        assert parse_size("4096") == 4096
        assert parse_size("64M") == 64 * 1024**2
        assert parse_size("1.5K") == 1536
        assert parse_size("2GiB") == 2 * 1024**3
        assert parse_size(None) is None
        with pytest.raises(ValueError):
            parse_size("lots")


class TestSchemaNegotiation:
    def test_legacy_flat_entry_is_read_and_migrated(self, tmp_path):
        # The pre-store Analyzer cache wrote bare result dicts at the root.
        result = make_result("legacy", 7)
        (tmp_path / f"{KEY}.json").write_text(json.dumps(result.to_dict()))
        store = BoundStore(tmp_path)
        loaded = store.get(KEY)
        assert loaded is not None and loaded.program_name == "legacy"
        # Migrated into the sharded layout; the legacy file is left in place
        # for concurrent readers of the old layout.
        assert store.path_for(KEY).exists()
        assert (tmp_path / f"{KEY}.json").exists()

    def test_newer_schema_entry_is_a_miss(self, tmp_path):
        store = BoundStore(tmp_path)
        store.path_for(KEY).parent.mkdir(parents=True)
        store.path_for(KEY).write_text(
            json.dumps({"store_schema": STORE_SCHEMA + 1, "payload": "from the future"})
        )
        assert store.get(KEY) is None

    def test_newer_schema_entry_is_never_overwritten(self, tmp_path):
        store = BoundStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        future = {"store_schema": STORE_SCHEMA + 1, "payload": "from the future"}
        path.write_text(json.dumps(future))
        assert store.put(KEY, make_result()) is None
        assert json.loads(path.read_text()) == future

    @pytest.mark.parametrize(
        "content",
        [
            "",                                  # truncated to nothing
            '{"store_schema": 1, "result": ',    # truncated mid-write
            "{ not json at all",                 # garbage
            '"a json string, not an object"',    # wrong JSON shape
            '{"store_schema": 1, "result": {"program_name": "x"}}',  # missing fields
            "[1, 2, 3]",                         # wrong container
        ],
    )
    def test_corrupted_entries_are_misses(self, tmp_path, content):
        store = BoundStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(content)
        assert store.get(KEY) is None

    def test_corrupted_entry_is_replaced_by_fresh_put(self, tmp_path):
        store = BoundStore(tmp_path)
        path = store.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{ not json")
        assert store.get(KEY) is None
        store.put(KEY, make_result("fresh"))
        assert store.get(KEY).program_name == "fresh"


class TestReadOnlyStore:
    def test_put_degrades_to_noop_when_root_is_unwritable(self, tmp_path, monkeypatch):
        store = BoundStore(tmp_path)

        def denied(*args, **kwargs):
            raise PermissionError("read-only store root")

        monkeypatch.setattr("repro.analysis.store.tempfile.mkstemp", denied)
        assert store.put(KEY, make_result()) is None  # no exception escapes

    def test_legacy_hit_on_readonly_root_still_returns_the_result(
        self, tmp_path, monkeypatch
    ):
        # A read-only replica holding only legacy flat entries: the migration
        # write inside get() must not turn the hit into a crash.
        result = make_result("legacy-ro", 5)
        (tmp_path / f"{KEY}.json").write_text(json.dumps(result.to_dict()))
        store = BoundStore(tmp_path)

        def denied(*args, **kwargs):
            raise PermissionError("read-only store root")

        monkeypatch.setattr("repro.analysis.store.tempfile.mkstemp", denied)
        loaded = store.get(KEY)
        assert loaded is not None and loaded.program_name == "legacy-ro"


class TestEvictionAndMaintenance:
    def _fill(self, store: BoundStore, count: int) -> list[str]:
        keys = [f"{i:02x}" + "f" * 62 for i in range(count)]
        now = time.time()
        for i, key in enumerate(keys):
            path = store.put(key, make_result(f"p{i}", i + 1))
            # Spread access times one minute apart, oldest first, so the LRU
            # order is unambiguous regardless of filesystem atime behavior.
            os.utime(path, (now - 60 * (count - i), now - 60 * (count - i)))
        return keys

    def test_gc_enforces_size_budget_evicting_lru_first(self, tmp_path):
        store = BoundStore(tmp_path)
        keys = self._fill(store, 10)
        entry_size = store.path_for(keys[0]).stat().st_size
        budget = int(entry_size * 4.5)  # room for 4 entries
        evicted = store.gc(budget)
        assert evicted == 6
        stats = store.stats()
        assert stats.entries == 4
        assert stats.total_bytes <= budget
        # The oldest-atime entries went first; the most recent four survive.
        survivors = {p.stem for p in (tmp_path / "objects").glob("*/*.json")}
        assert survivors == set(keys[-4:])

    def test_recently_read_entries_survive_gc(self, tmp_path):
        store = BoundStore(tmp_path)
        keys = self._fill(store, 6)
        assert store.get(keys[0]) is not None  # hit bumps atime
        entry_size = store.path_for(keys[0]).stat().st_size
        store.gc(int(entry_size * 2.5))
        survivors = {p.stem for p in (tmp_path / "objects").glob("*/*.json")}
        assert keys[0] in survivors

    def test_gc_without_budget_is_noop(self, tmp_path):
        store = BoundStore(tmp_path)
        self._fill(store, 3)
        assert store.gc() == 0
        assert len(store) == 3

    def test_put_triggers_gc_when_budget_configured(self, tmp_path):
        entry_size = None
        probe = BoundStore(tmp_path / "probe")
        entry_size = probe.put("aa" + "0" * 62, make_result()).stat().st_size
        store = BoundStore(tmp_path, size_budget=entry_size * 3)
        self._fill(store, 8)
        assert len(store) <= 3

    def test_clear_removes_sharded_and_legacy_entries_only(self, tmp_path):
        store = BoundStore(tmp_path)
        self._fill(store, 3)
        (tmp_path / f"{KEY}.json").write_text("{}")          # legacy entry shape
        (tmp_path / "bounds.json").write_text("{}")          # unrelated export
        removed = store.clear()
        assert removed == 4
        assert len(store) == 0
        assert not (tmp_path / f"{KEY}.json").exists()
        assert (tmp_path / "bounds.json").exists()           # never touched

    def test_stats_reports_layout_and_schemas(self, tmp_path):
        store = BoundStore(tmp_path, size_budget="1G")
        self._fill(store, 5)
        bad = store.path_for("ee" + "0" * 62)
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("{ not json")
        stats = store.stats()
        assert stats.entries == 6
        assert stats.total_bytes > 0
        assert stats.size_budget == 1024**3
        assert stats.schema_versions.get(STORE_SCHEMA) == 5
        assert stats.schema_versions.get(-1) == 1  # the unreadable probe
        payload = stats.to_dict()
        assert payload["entries"] == 6 and payload["session"]["writes"] == 5


# -- concurrency ---------------------------------------------------------------

WRITER_COUNT = 8
WRITES_PER_PROCESS = 25


def _hammer_store(args: tuple[str, int]) -> int:
    """Worker: interleave puts and gets against one shared store.

    Every process rewrites the same contended key plus a private key range,
    reading back as it goes — any torn write would surface as a parse error
    (a miss) on a key the process just wrote.
    """
    root, seed = args
    store = BoundStore(root)
    contended = "cc" + "0" * 62
    ok = 0
    for i in range(WRITES_PER_PROCESS):
        store.put(contended, make_result("contended", seed * 1000 + i))
        private = f"{seed:02x}" + "b" * 60 + f"{i:02x}"
        store.put(private, make_result(f"private-{seed}", i))
        if store.get(private) is not None:
            ok += 1
        store.get(contended)  # may be any writer's value, never torn
    return ok


class TestConcurrentWriters:
    def test_store_survives_eight_concurrent_writers(self, tmp_path):
        root = str(tmp_path)
        with concurrent.futures.ProcessPoolExecutor(max_workers=WRITER_COUNT) as pool:
            results = list(
                pool.map(_hammer_store, [(root, seed) for seed in range(WRITER_COUNT)])
            )
        # Every process read back each of its own private writes.
        assert results == [WRITES_PER_PROCESS] * WRITER_COUNT

        # No corrupted entries anywhere in the store: every file parses and
        # decodes into a valid result.
        store = BoundStore(root)
        entries = list((tmp_path / "objects").glob("*/*.json"))
        assert len(entries) == WRITER_COUNT * WRITES_PER_PROCESS + 1
        for path in entries:
            payload = json.loads(path.read_text())
            assert payload["store_schema"] == STORE_SCHEMA
            assert store.get(path.stem) is not None
        # No stray temp files left behind.
        assert not list((tmp_path / "objects").glob("*/*.tmp"))


# -- integration with the Analyzer and the CLI ---------------------------------

class TestAnalyzerIntegration:
    def test_fresh_process_equivalent_warm_analyzer_derives_nothing(self, tmp_path):
        from repro.polybench import get_kernel

        program = get_kernel("gemm").program
        config = AnalysisConfig(max_depth=0)
        cold = Analyzer(config, store=BoundStore(tmp_path)).analyze(program)

        # A brand-new Analyzer + store instance simulates a process restart.
        reset_derivation_count()
        warm = Analyzer(config, store=BoundStore(tmp_path)).analyze(program)
        assert derivation_count() == 0
        assert warm.smooth == cold.smooth
        assert warm.asymptotic == cold.asymptotic

    def test_cache_key_embeds_the_derivation_semantics_version(self, monkeypatch):
        from repro.analysis import analyzer as analyzer_module
        from repro.polybench import get_kernel

        program = get_kernel("gemm").program
        analyzer = Analyzer(AnalysisConfig(max_depth=0))
        before = analyzer.cache_key(program)
        monkeypatch.setattr(analyzer_module, "DERIVATION_VERSION", 999)
        after = analyzer.cache_key(program)
        # Changed semantics -> changed key: stale warm results are unreachable.
        assert before != after

    def test_pre_bump_warm_store_rederives(self, tmp_path, monkeypatch):
        """A store populated under the previous DERIVATION_VERSION must not
        serve those entries after the bump: the key changes, the lookup
        misses, and the kernel is re-derived with current semantics."""
        from repro.analysis import analyzer as analyzer_module
        from repro.analysis.store import DERIVATION_VERSION
        from repro.polybench import get_kernel

        program = get_kernel("gemm").program
        config = AnalysisConfig(max_depth=0)
        store = BoundStore(tmp_path)

        # Populate the store as the previous library version would have.
        # (Scoped context: a bare monkeypatch.undo() would also revert the
        # autouse store-env isolation fixture's patches.)
        with monkeypatch.context() as patch:
            patch.setattr(
                analyzer_module, "DERIVATION_VERSION", DERIVATION_VERSION - 1
            )
            stale_key = Analyzer(config, store=store).cache_key(program)
            store.put(stale_key, make_result("gemm", value=123))

        reset_derivation_count()
        result = Analyzer(config, store=store).analyze(program)
        assert derivation_count() == 1, "stale pre-bump entry must not be served"
        assert result.log, "a fresh derivation carries its log"
        # Both generations coexist on disk under distinct keys.
        assert store.contains(stale_key)
        assert store.contains(Analyzer(config, store=store).cache_key(program))

    def test_explicit_store_beats_cache_dir_alias(self, tmp_path):
        config = AnalysisConfig(cache_dir=tmp_path / "alias")
        analyzer = Analyzer(config, store=BoundStore(tmp_path / "explicit"))
        assert analyzer.store.root == tmp_path / "explicit"
        alias_only = Analyzer(config)
        assert alias_only.store.root == tmp_path / "alias"
        assert Analyzer(AnalysisConfig()).store is None


class TestCacheCLI:
    def test_suite_is_warm_on_second_cli_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert cli_main(["suite", "--kernels", "gemm", "atax"]) == 0
        cold_out = capsys.readouterr().out
        assert "derivations: 2" in cold_out

        assert cli_main(["suite", "--kernels", "gemm", "atax"]) == 0
        warm_out = capsys.readouterr().out
        assert "derivations: 0" in warm_out
        assert "store hits: 2" in warm_out

    def test_no_cache_flag_disables_the_store(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert cli_main(["suite", "--kernels", "atax", "--no-cache"]) == 0
        assert "store disabled" in capsys.readouterr().out
        assert not (tmp_path / "objects").exists()

    def test_cache_stats_gc_clear_subcommands(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        store = BoundStore(tmp_path)
        for i in range(4):
            store.put(f"{i:02x}" + "d" * 62, make_result(f"p{i}"))

        assert cli_main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries     : 4" in out

        assert cli_main(["cache", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 4

        entry_size = store.path_for("00" + "d" * 62).stat().st_size
        assert cli_main(["cache", "gc", "--budget", str(entry_size * 2)]) == 0
        assert "evicted" in capsys.readouterr().out
        assert len(store) <= 2

        assert cli_main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert len(store) == 0

    def test_cache_gc_without_budget_is_an_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        monkeypatch.delenv("REPRO_STORE_BUDGET", raising=False)
        with pytest.raises(SystemExit):
            cli_main(["cache", "gc"])
