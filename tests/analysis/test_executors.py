"""Executor acceptance: determinism, resume, counters, selection.

The pipeline's headline guarantee is that the executor changes *wall time
only*: serial, thread and process execution — and any completion order at
all — produce byte-identical results.  These tests also cover the task-level
resume path (a run killed half-way reuses its finished tasks) and the
thread-safety of the derivation counters.
"""

from __future__ import annotations

import concurrent.futures
import json
import random

import pytest

from repro.analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    derivation_count,
    execute_plan,
    plan_program,
    reset_derivation_count,
    reset_task_derivation_count,
    resolve_executor,
    task_derivation_count,
)
from repro.analysis.executor import EXECUTOR_ENV
from repro.analysis.plan import run_strategy_task
from repro.analysis.strategies import get_strategy
from repro.ir import DFG
from repro.polybench import get_kernel

#: Multi-statement kernels: several independent tasks per derivation.
KERNELS = ["durbin", "bicg", "mvt"]


def result_bytes(result) -> bytes:
    return json.dumps(result.to_dict(), sort_keys=True).encode()


class ShuffledExecutor:
    """Executes and completes tasks in a (seeded) random order, in-process.

    Models the adversarial scheduling a pool could exhibit: the pipeline
    must combine results in plan order no matter what order the executor
    yields them in.
    """

    name = "shuffled"

    def __init__(self, seed: int):
        self.seed = seed

    def map(self, fn, items):
        items = list(items)
        order = list(range(len(items)))
        random.Random(self.seed).shuffle(order)
        for index in order:
            yield index, fn(items[index])

    def close(self) -> None:
        pass


class TestByteIdenticalAcrossExecutors:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_thread_and_process_match_serial(self, kernel):
        program = get_kernel(kernel).program
        config = AnalysisConfig(max_depth=1)
        serial = result_bytes(Analyzer(config).analyze(program))
        thread = result_bytes(
            Analyzer(config.replace(executor="thread", n_jobs=4)).analyze(program)
        )
        process = result_bytes(
            Analyzer(config.replace(executor="process", n_jobs=2)).analyze(program)
        )
        assert thread == serial
        assert process == serial

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_shuffled_completion_order_is_invisible(self, seed):
        """sub_bounds and log ordering must be plan-deterministic even when
        tasks complete in an arbitrary (here: seeded random) order."""
        program = get_kernel("durbin").program
        config = AnalysisConfig(max_depth=1)
        baseline = Analyzer(config).analyze(program)
        shuffled = Analyzer(config).analyze(program, executor=ShuffledExecutor(seed))
        assert result_bytes(shuffled) == result_bytes(baseline)
        assert shuffled.log == baseline.log
        assert [b.to_dict() for b in shuffled.sub_bounds] == [
            b.to_dict() for b in baseline.sub_bounds
        ]

    def test_analyze_many_matches_per_program_results(self):
        programs = [get_kernel(name).program for name in KERNELS]
        config = AnalysisConfig(max_depth=1)
        individual = [Analyzer(config).analyze(p) for p in programs]
        batched = Analyzer(config.replace(executor="thread", n_jobs=4)).analyze_many(
            programs
        )
        for single, batch in zip(individual, batched):
            assert result_bytes(single) == result_bytes(batch)


class TestTaskLevelResume:
    def test_killed_run_resumes_from_finished_tasks(self, tmp_path):
        """Simulate a cold run killed mid-way: some task entries are in the
        store, the result entry is not.  The next run must execute only the
        missing tasks and still produce the full result."""
        store = BoundStore(tmp_path)
        program = get_kernel("durbin").program
        config = AnalysisConfig(max_depth=1)
        plan = plan_program(program, config)
        assert len(plan.tasks) >= 4

        # The "crashed" run finished exactly two tasks before dying.
        dfg = DFG.from_program(program)
        instance = config.heuristic_instance(program.params)
        finished = plan.tasks[:2]
        for task in finished:
            result = run_strategy_task(
                get_strategy(task.strategy), dfg, config, instance, task
            )
            store.put_task(plan.task_key(task), result.to_dict())

        reset_task_derivation_count()
        resumed = Analyzer(config, store=store).analyze(program)
        assert task_derivation_count() == len(plan.tasks) - len(finished)

        baseline = Analyzer(config).analyze(program)
        assert resumed.log == baseline.log
        assert resumed.smooth == baseline.smooth
        assert resumed.asymptotic == baseline.asymptotic

    def test_complete_task_set_still_counts_a_program_derivation(self, tmp_path):
        """Task-level hits don't make a run free: the warm-store *program*
        invariant is carried by result-level entries, which record the
        combination too."""
        store = BoundStore(tmp_path)
        program = get_kernel("gemm").program
        config = AnalysisConfig(max_depth=0)
        Analyzer(config, store=store).analyze(program)

        # Drop only the result-level entry, keeping every task entry.
        for path in tmp_path.glob("objects/*/*.json"):
            if not path.stem.endswith("-task"):
                path.unlink()

        reset_derivation_count()
        reset_task_derivation_count()
        Analyzer(config, store=store).analyze(program)
        assert task_derivation_count() == 0  # every task reloaded
        assert derivation_count() == 1  # but the pipeline (plan+combine) ran

        reset_derivation_count()
        Analyzer(config, store=store).analyze(program)
        assert derivation_count() == 0  # result entry restored: fully warm


class TestCounters:
    def test_concurrent_analyses_do_not_lose_counts(self):
        """Hammer the shared counters from parallel analyzer threads: with
        the lock in place, no increment may be lost."""
        programs = [get_kernel(name).program for name in KERNELS]
        config = AnalysisConfig(max_depth=1, executor="thread", n_jobs=2)
        expected_tasks = sum(
            len(plan_program(program, config).tasks) for program in programs
        )
        reset_derivation_count()
        reset_task_derivation_count()
        with concurrent.futures.ThreadPoolExecutor(max_workers=len(programs)) as pool:
            futures = [
                pool.submit(Analyzer(config).analyze, program) for program in programs
            ]
            for future in futures:
                future.result()
        assert derivation_count() == len(programs)
        assert task_derivation_count() == expected_tasks


class TestSelection:
    def test_resolve_by_name(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread", 4), ThreadExecutor)
        assert isinstance(resolve_executor("process", 4), ProcessExecutor)

    def test_instances_pass_through(self):
        executor = ThreadExecutor(n_jobs=3)
        assert resolve_executor(executor, 8) is executor

    def test_default_depends_on_n_jobs(self):
        assert isinstance(resolve_executor(None, 1), SerialExecutor)
        assert isinstance(resolve_executor(None, 4), ProcessExecutor)

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "thread")
        executor = resolve_executor(None, 4)
        assert isinstance(executor, ThreadExecutor)
        assert executor.n_jobs == 4

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("fibers")
        with pytest.raises(ValueError, match="executor"):
            AnalysisConfig(executor="fibers")

    def test_config_executor_drives_execute_plan(self):
        """execute_plan with no explicit executor resolves the config's."""
        program = get_kernel("gemm").program
        plan = plan_program(program, AnalysisConfig(max_depth=0, executor="thread", n_jobs=2))
        results = execute_plan(plan)
        assert [r.task for r in results] == list(plan.tasks)


class TestPoolLifecycle:
    def test_pool_is_reused_across_maps_and_closed_once(self):
        executor = ThreadExecutor(n_jobs=2)
        first = list(executor.map(lambda x: x * 2, [1, 2, 3]))
        pool = executor._pool
        second = list(executor.map(lambda x: x + 1, [1, 2, 3]))
        assert executor._pool is pool, "map must reuse the lazily-created pool"
        assert sorted(first) == [(0, 2), (1, 4), (2, 6)]
        assert sorted(second) == [(0, 2), (1, 3), (2, 4)]
        executor.close()
        assert executor._pool is None
        executor.close()  # idempotent

    def test_single_item_map_skips_the_pool(self):
        executor = ProcessExecutor(n_jobs=4)
        assert list(executor.map(abs, [-3])) == [(0, 3)]
        assert executor._pool is None
        executor.close()

    def test_map_propagates_worker_exceptions(self):
        def boom(x):
            raise RuntimeError(f"task {x} failed")

        executor = ThreadExecutor(n_jobs=2)
        try:
            with pytest.raises(RuntimeError, match="task"):
                list(executor.map(boom, [1, 2, 3]))
        finally:
            executor.close()
