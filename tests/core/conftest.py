"""Shared example programs for the core-algorithm tests.

These are the worked examples of the paper: Fig. 1 (elementary example),
Fig. 3 (Example 2, the wavefront example), gemm (Sec. 1/9), cholesky
(Appendix A) and LU (Appendix B).
"""

import pytest

from repro.ir import ProgramBuilder


@pytest.fixture(scope="session")
def example1():
    """Fig. 1: for t, i: A[i] = A[i] * C[t]."""
    return (
        ProgramBuilder("example1", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_array("[M] -> { C[t] : 0 <= t < M }")
        .add_statement("[M, N] -> { S[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { S[t, i] -> S[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> C[t] : 0 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .build()
    )


@pytest.fixture(scope="session")
def example2():
    """Fig. 3: per outer iteration, a reduction into a scalar then a broadcast."""
    return (
        ProgramBuilder("example2", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_statement("[M, N] -> { S1[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_statement("[M, N] -> { S2[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { S1[t, i] -> S1[t, i - 1] : 0 <= t < M and 1 <= i < N }")
        .add_dependence("[M, N] -> { S1[t, i] -> S2[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S1[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> S1[t, N - 1] : 0 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> S2[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .build()
    )


@pytest.fixture(scope="session")
def gemm():
    return (
        ProgramBuilder("gemm", ["Ni", "Nj", "Nk"])
        .add_array("[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
        .add_array("[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
        .add_array("[Ni, Nj] -> { C[i, j] : 0 <= i < Ni and 0 <= j < Nj }")
        .add_statement(
            "[Ni, Nj, Nk] -> { S[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            flops=2,
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < Ni and 0 <= j < Nj and 1 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> A[i, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> B[k, j] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> C[i, j] : 0 <= i < Ni and 0 <= j < Nj and k = 0 }"
        )
        .build()
    )
