"""Unit tests for decomposition/combination, bound expressions and OI analysis."""

import sympy

from repro.core import (
    Classification,
    asymptotic_leading,
    classify,
    combine_sub_q,
    evaluate,
    may_spill_interferes,
    remove_may_spill,
)
from repro.core.bounds import S_SYMBOL, SubBound
from repro.sets import parse_set, sym


def make_bound(expr, statement, domain_text):
    domain = parse_set(domain_text)
    return SubBound(
        expression=expr, smooth=expr, may_spill={statement: domain}, statement=statement
    )


class TestMaySpillInterference:
    def test_disjoint_statements_do_not_interfere(self):
        a = make_bound(sym("N"), "S1", "[N] -> { S1[i] : 0 <= i < N }")
        b = make_bound(sym("N"), "S2", "[N] -> { S2[i] : 0 <= i < N }")
        assert not may_spill_interferes(a.may_spill, b.may_spill)

    def test_overlapping_domains_interfere(self):
        a = make_bound(sym("N"), "S", "[N] -> { S[i] : 0 <= i < N }")
        b = make_bound(sym("N"), "S", "[N] -> { S[i] : 5 <= i < N }")
        assert may_spill_interferes(a.may_spill, b.may_spill)

    def test_disjoint_regions_of_same_statement(self):
        a = make_bound(sym("N"), "S", "[N] -> { S[i] : 0 <= i < 5 }")
        b = make_bound(sym("N"), "S", "[N] -> { S[i] : 10 <= i < N }")
        assert not may_spill_interferes(a.may_spill, b.may_spill)


class TestCombineSubQ:
    def test_non_interfering_bounds_are_summed(self):
        a = make_bound(sym("N") ** 2, "S1", "[N] -> { S1[i] : 0 <= i < N }")
        b = make_bound(sym("N"), "S2", "[N] -> { S2[i] : 0 <= i < N }")
        total, accepted = combine_sub_q([a, b], {"N": 100, "S": 10})
        assert len(accepted) == 2
        assert sympy.expand(total - (sym("N") ** 2 + sym("N"))) == 0

    def test_interfering_bounds_keep_the_largest(self):
        a = make_bound(sym("N") ** 2, "S", "[N] -> { S[i] : 0 <= i < N }")
        b = make_bound(sym("N"), "S", "[N] -> { S[i] : 0 <= i < N }")
        total, accepted = combine_sub_q([a, b], {"N": 100, "S": 10})
        assert len(accepted) == 1
        assert total == sym("N") ** 2

    def test_negative_bounds_are_dropped(self):
        a = make_bound(-sym("N"), "S", "[N] -> { S[i] : 0 <= i < N }")
        total, accepted = combine_sub_q([a], {"N": 100, "S": 10})
        assert accepted == []
        assert total == 0

    def test_remove_may_spill_shrinks_domains(self):
        domains = {"S": parse_set("[N] -> { S[i] : 0 <= i < N }")}
        spill = {"S": parse_set("[N] -> { S[i] : 0 <= i < 10 }")}
        updated = remove_may_spill(domains, spill)
        points = updated["S"].enumerate_points({"N": 15})
        assert sorted(p[0] for p in points) == list(range(10, 15))


class TestAsymptoticLeading:
    def test_dominant_term_extraction(self):
        n = sym("N")
        expr = n ** 3 / sympy.sqrt(S_SYMBOL) + n ** 2 + 7 * n - S_SYMBOL
        assert asymptotic_leading(expr, {"N"}) == n ** 3 / sympy.sqrt(S_SYMBOL)

    def test_cache_terms_rank_below_parameters(self):
        n = sym("N")
        expr = n + S_SYMBOL ** 2
        # S = o(N) would make N dominant only if degrees say so: S^2 ~ t^4 = N.
        leading = asymptotic_leading(expr, {"N"})
        assert leading in (n, n + S_SYMBOL ** 2, S_SYMBOL ** 2)

    def test_floor_and_max_are_smoothed(self):
        n = sym("N")
        expr = sympy.Max(sympy.floor(n ** 2 / S_SYMBOL) * S_SYMBOL, n)
        assert asymptotic_leading(expr, {"N"}) == n ** 2

    def test_evaluate(self):
        n = sym("N")
        assert evaluate(n ** 2 / S_SYMBOL, {"N": 10, "S": 4}) == 25.0


class TestOIUpperBoundMemoisation:
    """``oi_upper_bound`` runs a full sympy expand/simplify; ``__repr__``
    calls it on every log line, so it must compute once per instance —
    including instances freshly rebuilt by ``from_dict``."""

    def fresh_result(self):
        from repro.analysis import AnalysisConfig, Analyzer
        from repro.polybench import get_kernel

        return Analyzer(AnalysisConfig(max_depth=0)).analyze(
            get_kernel("gemm").program
        )

    def test_repeated_calls_return_the_cached_object(self):
        result = self.fresh_result()
        first = result.oi_upper_bound()
        assert result.oi_upper_bound() is first
        assert repr(result).count("OI_up") == 1  # repr goes through the cache

    def test_cache_survives_from_dict(self, monkeypatch):
        from repro.core.bounds import IOBoundResult

        result = IOBoundResult.from_dict(self.fresh_result().to_dict())
        first = result.oi_upper_bound()
        # Poison simplify: a second simplification pass would now blow up.
        monkeypatch.setattr(
            sympy, "simplify", lambda *a, **k: (_ for _ in ()).throw(AssertionError)
        )
        assert result.oi_upper_bound() is first

    def test_cache_stays_out_of_serialization_and_equality(self):
        result = self.fresh_result()
        reference = result.to_dict()
        result.oi_upper_bound()
        assert result.to_dict() == reference


class TestClassification:
    def test_compute_bound_when_achieved_oi_above_mb(self):
        assert classify(100.0, 20.0, 8.0) is Classification.COMPUTE_BOUND

    def test_bandwidth_bound_when_upper_bound_below_mb(self):
        assert classify(4.0, 2.0, 8.0) is Classification.BANDWIDTH_BOUND

    def test_undecided_when_mb_between(self):
        assert classify(100.0, 3.0, 8.0) is Classification.UNDECIDED

    def test_no_achieved_oi(self):
        assert classify(100.0, None, 8.0) is Classification.UNDECIDED
        assert classify(2.0, None, 8.0) is Classification.BANDWIDTH_BOUND
