"""End-to-end tests of the derivation on the paper's worked examples.

These tests check the *asymptotically dominant term* of the derived bounds
against the formulae stated in the paper (Sec. 2, Sec. 5.3, Appendix A/B,
Fig. 3) and the soundness of the bounds against brute-force cache simulation
on small explicit CDAGs.
"""

import sympy

from repro.core import (
    BROADCAST,
    CHAIN,
    asymptotic_leading,
    coeff_interf,
    derive_bounds,
    genpaths,
    paths_independent,
    sub_param_q_by_wavefront,
)
from repro.core.bounds import S_SYMBOL
from repro.ir import CDAG, DFG
from repro.pebble import lexicographic_schedule, simulate_schedule
from repro.sets import sym


def leading_ratio(expr, reference, params):
    """expr / reference, asymptotically simplified; 1 means exact match."""
    return sympy.simplify(
        asymptotic_leading(expr, set(params)) / reference
    )


class TestGenpaths:
    def test_example1_paths(self, example1):
        dfg = DFG.from_program(example1)
        paths = genpaths(dfg, "S")
        kinds = sorted(p.kind for p in paths)
        assert kinds.count(CHAIN) == 1
        assert kinds.count(BROADCAST) >= 1
        chain = next(p for p in paths if p.kind == CHAIN)
        assert chain.function.translation_vector() == (-1, 0)

    def test_gemm_paths_and_kernels(self, gemm):
        dfg = DFG.from_program(gemm)
        paths = genpaths(dfg, "S")
        sources = {p.source for p in paths}
        assert {"A", "B", "S"} <= sources
        kernel_dims = {p.source: p.kernel().dim for p in paths}
        assert kernel_dims["A"] == 1 and kernel_dims["B"] == 1 and kernel_dims["S"] == 1

    def test_gemm_paths_pairwise_independent(self, gemm):
        dfg = DFG.from_program(gemm)
        paths = genpaths(dfg, "S")
        domain = dfg.program.statement("S").domain
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                if paths[i].source != paths[j].source:
                    assert paths_independent(dfg, paths[i], paths[j], domain)

    def test_gemm_betas_are_one(self, gemm):
        dfg = DFG.from_program(gemm)
        paths = [p for p in genpaths(dfg, "S") if p.source in ("A", "B", "S")][:3]
        domain = dfg.program.statement("S").domain
        betas = coeff_interf(dfg, paths, domain)
        assert all(beta == 1 for beta in betas)


class TestExample1:
    def test_partition_bound_is_mn_over_s(self, example1):
        result = derive_bounds(example1, max_depth=0)
        m, n, s = sym("M"), sym("N"), S_SYMBOL
        assert leading_ratio(result.asymptotic, m * n / s, ["M", "N"]) == 1

    def test_bound_below_simulated_loads(self, example1):
        result = derive_bounds(example1, max_depth=0)
        params = {"M": 8, "N": 10}
        cdag = CDAG.expand(example1, params)
        for capacity in (3, 5, 9):
            simulated = simulate_schedule(
                cdag, lexicographic_schedule(cdag), capacity, policy="opt"
            )
            bound = result.evaluate({**params, "S": capacity})
            assert bound <= simulated.loads + 1e-9


class TestGemm:
    def test_oi_upper_is_sqrt_s(self, gemm):
        result = derive_bounds(gemm, max_depth=0)
        assert sympy.simplify(result.oi_upper_bound() - sympy.sqrt(S_SYMBOL)) == 0

    def test_asymptotic_matches_2n3_over_sqrt_s(self, gemm):
        result = derive_bounds(gemm, max_depth=0)
        ni, nj, nk = sym("Ni"), sym("Nj"), sym("Nk")
        expected = 2 * ni * nj * nk / sympy.sqrt(S_SYMBOL)
        assert sympy.simplify(result.asymptotic / expected) == 1

    def test_bound_below_simulated_loads(self, gemm):
        result = derive_bounds(gemm, max_depth=0)
        params = {"Ni": 6, "Nj": 6, "Nk": 6}
        cdag = CDAG.expand(gemm, params)
        for capacity in (8, 16):
            simulated = simulate_schedule(
                cdag, lexicographic_schedule(cdag), capacity, policy="opt"
            )
            bound = result.evaluate({**params, "S": capacity})
            assert bound <= simulated.loads + 1e-9


class TestExample2Wavefront:
    def test_wavefront_bound_detected(self, example2):
        dfg = DFG.from_program(example2)
        bound = sub_param_q_by_wavefront(dfg, "S2", depth=1, validation_instance={"M": 4, "N": 4})
        assert bound is not None
        m, n, s = sym("M"), sym("N"), S_SYMBOL
        # Paper: Q >= (M - 1)(N - S).
        difference = sympy.expand(bound.smooth - (m - 1) * (n - s))
        assert difference == 0

    def test_full_derivation_dominated_by_mn(self, example2):
        result = derive_bounds(example2, max_depth=1)
        m, n = sym("M"), sym("N")
        assert leading_ratio(result.asymptotic, m * n, ["M", "N"]) == 1

    def test_wavefront_requires_validation_pass(self, example2):
        dfg = DFG.from_program(example2)
        # With validation disabled the structural detector alone fires too.
        bound = sub_param_q_by_wavefront(dfg, "S2", depth=1, validate=False)
        assert bound is not None

    def test_bound_below_simulated_loads(self, example2):
        result = derive_bounds(example2, max_depth=1)
        params = {"M": 6, "N": 8}
        cdag = CDAG.expand(example2, params)
        simulated = simulate_schedule(
            cdag, lexicographic_schedule(cdag), capacity=4, policy="opt"
        )
        assert result.evaluate({**params, "S": 4}) <= simulated.loads + 1e-9
