"""Wavefront validation modes and the _omega_range tightest-bound fix."""

from __future__ import annotations

import pytest
import sympy

from repro.core.bounds import S_SYMBOL
from repro.core.wavefront import _omega_range, sub_param_q_by_wavefront
from repro.ir import DFG, expand_count, reset_expand_count
from repro.sets import LinExpr, parse_set, sym


class TestOmegaRange:
    def test_simple_box_bounds(self):
        domain = parse_set("[M] -> { S[t, i] : 0 <= t < M and 0 <= i < 10 }")
        bounds = _omega_range(domain, "t")
        assert bounds == (LinExpr.constant(0), LinExpr({"M": 1}, -1))

    def test_tightest_lower_bound_wins(self):
        # Two lower bounds 0 <= t and 5 <= t: the old code kept whichever
        # constraint came first; the range must start at 5.
        domain = parse_set("[M] -> { S[t] : 0 <= t and 5 <= t and t < M }")
        bounds = _omega_range(domain, "t")
        assert bounds == (LinExpr.constant(5), LinExpr({"M": 1}, -1))

    def test_tightest_upper_bound_wins(self):
        domain = parse_set("[M] -> { S[t] : 0 <= t and t < M and t <= 7 }")
        bounds = _omega_range(domain, "t")
        # M - 1 vs 7 are not comparable symbolically: must give up rather
        # than silently pick one.
        assert bounds is None

    def test_comparable_upper_bounds(self):
        domain = parse_set("[M] -> { S[t] : 0 <= t and t < M and t < M - 2 }")
        bounds = _omega_range(domain, "t")
        assert bounds == (LinExpr.constant(0), LinExpr({"M": 1}, -3))

    def test_incomparable_lower_bounds_give_up(self):
        domain = parse_set("[M, K] -> { S[t] : 0 <= t and K <= t and t < M }")
        assert _omega_range(domain, "t") is None

    def test_cross_piece_disagreement_returns_none(self):
        # A union whose pieces disagree on the slice range has no single
        # well-defined summation range.
        piece1 = parse_set("[M] -> { S[t] : 0 <= t < M }")
        piece2 = parse_set("[M] -> { S[t] : 1 <= t < M }")
        union = piece1.union(piece2)
        assert _omega_range(union, "t") is None

    def test_agreeing_pieces_are_accepted(self):
        piece = parse_set("[M] -> { S[t] : 0 <= t < M }")
        union = piece.union(piece)
        assert _omega_range(union, "t") == (
            LinExpr.constant(0),
            LinExpr({"M": 1}, -1),
        )

    def test_non_unit_coefficient_gives_up(self):
        domain = parse_set("[M] -> { S[t] : 2*t >= M and t < M }")
        assert _omega_range(domain, "t") is None


class TestValidationModes:
    def test_symbolic_and_concrete_agree_on_example2(self, example2):
        dfg = DFG.from_program(example2)
        symbolic = sub_param_q_by_wavefront(dfg, "S2", depth=1, validation="symbolic")
        concrete = sub_param_q_by_wavefront(
            dfg, "S2", depth=1, validation="concrete",
            validation_instance={"M": 4, "N": 4},
        )
        assert symbolic is not None and concrete is not None
        assert sympy.expand(symbolic.smooth - concrete.smooth) == 0
        m, n = sym("M"), sym("N")
        assert sympy.expand(symbolic.smooth - (m - 1) * (n - S_SYMBOL)) == 0

    def test_symbolic_validation_expands_no_cdag(self, example2):
        dfg = DFG.from_program(example2)
        reset_expand_count()
        bound = sub_param_q_by_wavefront(dfg, "S2", depth=1, validation="symbolic")
        assert bound is not None
        assert expand_count() == 0, "symbolic validation must not expand a CDAG"

    def test_symbolic_bound_records_exact_closure(self, example2):
        dfg = DFG.from_program(example2)
        bound = sub_param_q_by_wavefront(dfg, "S2", depth=1)
        assert "symbolic validation (exact closure)" in bound.notes

    def test_unknown_validation_mode_rejected(self, example2):
        dfg = DFG.from_program(example2)
        with pytest.raises(ValueError, match="validation"):
            sub_param_q_by_wavefront(dfg, "S2", depth=1, validation="both")

    def test_validate_false_skips_validation(self, example2):
        dfg = DFG.from_program(example2)
        bound = sub_param_q_by_wavefront(dfg, "S2", depth=1, validate=False)
        assert bound is not None
        assert "symbolic validation" not in bound.notes
