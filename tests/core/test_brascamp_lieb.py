"""Tests for the Brascamp-Lieb exponent machinery (Sec. 3.3, 5.3)."""

from fractions import Fraction

from repro.linalg import Subspace, build_lattice
from repro.core import rank_constraints, solve_exponents


def span(*vectors):
    return Subspace.span(list(vectors))


def orthogonal_kernels(dim):
    """Kernels of the canonical projections along each basis vector."""
    kernels = []
    for i in range(dim):
        vec = [0] * dim
        vec[i] = 1
        kernels.append(span(tuple(vec)))
    return kernels


class TestRankConstraints:
    def test_orthogonal_2d(self):
        kernels = orthogonal_kernels(2)
        lattice, _ = build_lattice(2, kernels)
        constraints = rank_constraints(kernels, lattice)
        # For H = each kernel line: 1 <= s_other; for H = the plane: 2 <= s1 + s2.
        rhs_values = sorted(rhs for _, rhs in constraints)
        assert rhs_values == [1, 1, 2]

    def test_projection_rank_in_constraints(self):
        kernels = orthogonal_kernels(3)
        lattice, _ = build_lattice(3, kernels)
        for coeffs, rhs in rank_constraints(kernels, lattice):
            assert all(0 <= c <= rhs for c in coeffs)


class TestSolveExponents:
    def test_2d_orthogonal_projections(self):
        """The paper's Sec. 3.3 special case: s_1 = ... = s_d = 1/(d-1)."""
        kernels = orthogonal_kernels(2)
        lattice, _ = build_lattice(2, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is not None
        assert solution.exponents == [Fraction(1), Fraction(1)]
        assert solution.sigma == 2

    def test_3d_orthogonal_projections_gemm(self):
        """gemm / matrix multiplication: s_j = 1/2, sigma = 3/2."""
        kernels = orthogonal_kernels(3)
        lattice, _ = build_lattice(3, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is not None
        assert solution.sigma == Fraction(3, 2)
        assert all(s == Fraction(1, 2) for s in solution.exponents)

    def test_cholesky_betas_keep_exponents_half(self):
        """Appendix A: beta = (1, 1/2, 1/2) still gives s = (1/2, 1/2, 1/2)."""
        kernels = orthogonal_kernels(3)
        lattice, _ = build_lattice(3, kernels)
        betas = [Fraction(1), Fraction(1, 2), Fraction(1, 2)]
        solution = solve_exponents(kernels, lattice, betas)
        assert solution is not None
        assert solution.sigma == Fraction(3, 2)

    def test_stencil_kernels_jacobi_1d(self):
        """Three 1D kernels in 2D (jacobi-1d): sigma = 2 is optimal."""
        kernels = [span((1, -1)), span((1, 0)), span((1, 1))]
        lattice, _ = build_lattice(2, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is not None
        assert solution.sigma == 2

    def test_4d_stencil_kernels_heat_3d(self):
        """Line kernels in 4D: sigma = 4/3 (cube-root-of-S behaviour)."""
        kernels = [span((1, 0, 0, 0)), span((0, 1, 0, 0)), span((0, 0, 1, 0)), span((0, 0, 0, 1))]
        lattice, _ = build_lattice(4, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is not None
        assert solution.sigma == Fraction(4, 3)

    def test_single_projection_is_infeasible(self):
        """A single projection cannot bound the set (its kernel is unbounded)."""
        kernels = [span((1, 0))]
        lattice, _ = build_lattice(2, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is None

    def test_constraints_are_satisfied_exactly(self):
        kernels = [span((1, 0, 0)), span((0, 1, 0)), span((1, 1, 1))]
        lattice, _ = build_lattice(3, kernels)
        solution = solve_exponents(kernels, lattice)
        assert solution is not None
        for coeffs, rhs in rank_constraints(kernels, lattice):
            total = sum(Fraction(c) * s for c, s in zip(coeffs, solution.exponents))
            assert total >= rhs - Fraction(1, 10**6)

    def test_empty_kernel_list(self):
        lattice, _ = build_lattice(2, [])
        assert solve_exponents([], lattice) is None
