"""The tiling search engine: shapes, keys, memoisation, fallback skipping."""

from __future__ import annotations

import pytest

from repro.analysis import BoundStore
from repro.ir import CDAG, ProgramBuilder
from repro.polybench import get_kernel
from repro.upper import (
    TileSimulation,
    UpperBoundResult,
    candidate_shapes,
    reset_simulation_count,
    search_upper_bound,
    search_upper_bounds,
    simulation_count,
    simulation_key,
    tile_sizes_for,
)
from repro.upper.result import select_best

GEMM_INSTANCE = {"Ni": 6, "Nj": 6, "Nk": 6}


def antidiagonal_program():
    """S[t, i] reads S[t-1, i+1]: every tiling with t-extent > 1 is illegal."""
    return (
        ProgramBuilder("antidiag", ["T", "N"])
        .add_array("[T, N] -> { a[i] : 0 <= i < 1 }")
        .add_statement("[T, N] -> { S[t, i] : 0 <= t < T and 0 <= i < N }", flops=1)
        .add_dependence(
            "[T, N] -> { S[t, i] -> S[t - 1, i + 1] : 1 <= t < T and 0 <= i < N - 1 }"
        )
        .add_dependence("[T, N] -> { S[t, i] -> a[i] : t = 0 and i = 0 }")
        .build()
    )


class TestCandidateShapes:
    def test_powers_of_two_plus_extent(self):
        shapes = candidate_shapes((6,), max_candidates=64)
        assert shapes == [(1,), (2,), (4,), (6,)]

    def test_baseline_always_present(self):
        shapes = candidate_shapes((8, 8, 8), max_candidates=5)
        assert (1, 1, 1) in shapes
        assert len(shapes) <= 6  # cap + possibly re-inserted baseline

    def test_cap_is_deterministic(self):
        first = candidate_shapes((16, 16), max_candidates=7)
        second = candidate_shapes((16, 16), max_candidates=7)
        assert first == second

    def test_full_grid_size(self):
        # extents (4, 4): edges {1, 2, 4} per dim -> 9 shapes.
        assert len(candidate_shapes((4, 4), max_candidates=64)) == 9


class TestTileSizesFor:
    def test_innermost_alignment_for_shallow_statements(self):
        program = (
            ProgramBuilder("mixed", ["N"])
            .add_array("[N] -> { a[i] : 0 <= i < N }")
            .add_statement("[N] -> { D[i, j] : 0 <= i < N and 0 <= j < N }")
            .add_statement("[N] -> { V[i] : 0 <= i < N }")
            .add_dependence("[N] -> { D[i, j] -> a[i] : 0 <= i < N and 0 <= j < N }")
            .add_dependence("[N] -> { V[i] -> a[i] : 0 <= i < N }")
            .build()
        )
        sizes = tile_sizes_for(program, (4, 2))
        assert sizes["D"] == (4, 2)
        assert sizes["V"] == (2,)  # shares the innermost edge

    def test_deeper_statement_pads_with_ones(self):
        program = (
            ProgramBuilder("deep", ["N"])
            .add_array("[N] -> { a[i] : 0 <= i < N }")
            .add_statement("[N] -> { D[i, j] : 0 <= i < N and 0 <= j < N }")
            .add_dependence("[N] -> { D[i, j] -> a[i] : 0 <= i < N and 0 <= j < N }")
            .build()
        )
        assert tile_sizes_for(program, (3,))["D"] == (1, 3)


class TestSimulationKey:
    def test_key_shape_and_determinism(self):
        key = simulation_key("f" * 64, {"N": 8}, 64, (2, 2), "lru")
        assert key.endswith("-sim")
        assert len(key) == 64 + 4
        assert key == simulation_key("f" * 64, {"N": 8}, 64, (2, 2), "lru")

    def test_key_sensitive_to_every_component(self):
        base = simulation_key("f" * 64, {"N": 8}, 64, (2, 2), "lru")
        assert simulation_key("e" * 64, {"N": 8}, 64, (2, 2), "lru") != base
        assert simulation_key("f" * 64, {"N": 9}, 64, (2, 2), "lru") != base
        assert simulation_key("f" * 64, {"N": 8}, 32, (2, 2), "lru") != base
        assert simulation_key("f" * 64, {"N": 8}, 64, (2, 4), "lru") != base
        assert simulation_key("f" * 64, {"N": 8}, 64, (2, 2), "opt") != base


class TestSearch:
    def test_gemm_search_finds_a_sound_upper_bound(self):
        spec = get_kernel("gemm")
        result = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16, max_candidates=16
        )
        assert result is not None
        assert result.best is not None and result.best.simulated
        assert not result.best.used_fallback
        assert result.best.loads > 0
        # The winner is the minimum over every simulated record.
        simulated = [sim for sim in result.simulations if sim.simulated]
        assert result.best.loads == min(sim.loads for sim in simulated)
        # gemm's flops ride along for the OI computation (2 flops per MAC).
        assert result.best.flops == 2 * result.best.operations

    def test_baseline_shape_always_among_candidates(self):
        spec = get_kernel("gemm")
        result = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16, max_candidates=8
        )
        assert any(all(e == 1 for e in sim.shape) for sim in result.simulations)

    def test_illegal_tilings_skipped_but_baseline_simulated(self):
        program = antidiagonal_program()
        result = search_upper_bound(
            program, {"T": 6, "N": 6}, cache_words=16, max_candidates=32
        )
        skipped = [s for s in result.simulations if not s.simulated and s.used_fallback]
        assert skipped, "t-tilings of the anti-diagonal program must be skipped"
        for sim in skipped:
            assert sim.loads == 0  # never scored
        assert result.best is not None and result.best.simulated
        assert result.skipped_fallback == len(skipped)

    def test_search_counts_simulations_and_store_makes_rerun_free(self, tmp_path):
        spec = get_kernel("gemm")
        store = BoundStore(tmp_path / "store")
        reset_simulation_count()
        cold = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16,
            max_candidates=8, store=store,
        )
        cold_count = simulation_count()
        assert cold_count == len(cold.simulations)

        reset_simulation_count()
        warm = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16,
            max_candidates=8, store=store,
        )
        assert simulation_count() == 0
        assert warm.to_dict() == cold.to_dict()

    def test_batch_search_returns_job_order(self):
        gemm = get_kernel("gemm")
        atax = get_kernel("atax")
        results = search_upper_bounds(
            [(gemm.program, GEMM_INSTANCE), (atax.program, {"M": 6, "N": 6})],
            cache_words=16,
            max_candidates=8,
        )
        assert [r.program for r in results] == ["gemm", "atax"]
        assert all(r.best is not None for r in results)

    def test_thread_executor_matches_serial_byte_for_byte(self):
        spec = get_kernel("gemm")
        serial = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16,
            max_candidates=8, executor="serial",
        )
        threaded = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16,
            max_candidates=8, executor="thread", n_jobs=4,
        )
        assert serial.to_dict() == threaded.to_dict()

    def test_unexpandable_instance_yields_none(self):
        spec = get_kernel("gemm")
        results = search_upper_bounds(
            [(spec.program, {"Ni": 0, "Nj": 0, "Nk": 0})], cache_words=16
        )
        assert results == [None]


class TestResultSerialization:
    def test_tile_simulation_round_trip(self):
        sim = TileSimulation(
            shape=(4, 2, 1), policy="opt", capacity=64, simulated=True,
            used_fallback=False, loads=217, evictions=665,
            operations=512, flops=1024,
        )
        assert TileSimulation.from_dict(sim.to_dict()) == sim
        assert sim.achieved_oi() == pytest.approx(1024 / 217)

    def test_upper_bound_result_round_trip(self):
        spec = get_kernel("gemm")
        result = search_upper_bound(
            spec.program, GEMM_INSTANCE, cache_words=16, max_candidates=8
        )
        reloaded = UpperBoundResult.from_dict(result.to_dict())
        assert reloaded.to_dict() == result.to_dict()
        assert reloaded.best == result.best
        assert reloaded.candidates == result.candidates

    def test_skipped_record_oi_is_zero(self):
        sim = TileSimulation(shape=(2, 2), policy="lru", capacity=8, simulated=False)
        assert sim.achieved_oi() == 0.0

    def test_select_best_prefers_fewest_loads(self):
        a = TileSimulation(shape=(2,), policy="lru", capacity=8, simulated=True, loads=10)
        b = TileSimulation(shape=(4,), policy="lru", capacity=8, simulated=True, loads=7)
        skipped = TileSimulation(shape=(8,), policy="lru", capacity=8, simulated=False)
        assert select_best([a, b, skipped]) == b
        assert select_best([skipped]) is None
