"""The tightness report and its CLI: sandwich rows, warm reruns, JSON."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis import BoundStore
from repro.upper import TightnessReport, tightness_report

GEMM_SMALL = ["--instance", "Ni=6", "Nj=6", "Nk=6"]


def small_gemm_report(store):
    return tightness_report(
        ["gemm"],
        cache_words=16,
        instance={"Ni": 6, "Nj": 6, "Nk": 6},
        store=store,
        max_candidates=8,
    )


class TestTightnessReport:
    def test_row_is_a_valid_sandwich(self, tmp_path):
        report = small_gemm_report(BoundStore(tmp_path / "store"))
        assert report.cache_words == 16
        (row,) = report.rows
        assert row.kernel == "gemm"
        assert row.error is None
        assert row.lower_value > 0
        assert row.upper_loads is not None
        # The sandwich: a legal pebble game can never beat the lower bound.
        assert row.lower_value <= row.upper_loads
        assert row.tightness is not None and row.tightness >= 1.0
        assert row.best is not None and row.best.simulated
        # Achieved OI is routed through SimulationResult.operational_intensity
        # with the registry's per-statement flops (gemm: 2 per MAC).
        assert row.achieved_oi == pytest.approx(row.best.flops / row.best.loads)
        assert row.best.flops == 2 * row.best.operations

    def test_report_counts_work_and_warm_rerun_is_free(self, tmp_path):
        store = BoundStore(tmp_path / "store")
        cold = small_gemm_report(store)
        assert cold.derivations == 1
        assert cold.simulations == len(cold.rows[0].upper.simulations)

        warm = small_gemm_report(store)
        assert warm.derivations == 0
        assert warm.simulations == 0
        assert warm.rows[0].to_dict() == cold.rows[0].to_dict()

    def test_document_round_trip(self, tmp_path):
        report = small_gemm_report(BoundStore(tmp_path / "store"))
        document = report.to_dict()
        assert document["schema"] == 1
        reloaded = TightnessReport.from_dict(document)
        assert reloaded.to_dict() == document

    def test_format_table_lists_every_column(self, tmp_path):
        report = small_gemm_report(BoundStore(tmp_path / "store"))
        table = report.format_table()
        for column in ("kernel", "Q_low@inst", "Q_up (loads)", "tile", "tightness"):
            assert column in table
        assert "gemm" in table


class TestReportCLI:
    def test_text_output_prints_row_and_summary(self, tmp_path, capsys):
        assert main([
            "report", "gemm", "--cache-words", "16", "--max-candidates", "8",
            *GEMM_SMALL, "--cache-dir", str(tmp_path / "store"),
        ]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out
        assert "tightness" in out
        assert "derivations: 1" in out
        assert "simulations:" in out

    def test_json_output_and_warm_rerun_zero_work(self, tmp_path, capsys):
        args = [
            "report", "gemm", "--cache-words", "16", "--max-candidates", "8",
            *GEMM_SMALL, "--cache-dir", str(tmp_path / "store"), "--json",
        ]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["derivations"] == 1
        assert cold["simulations"] > 0
        (row,) = cold["rows"]
        assert row["lower_value"] <= row["upper_loads"]
        assert row["tightness"] >= 1.0
        assert row["tile_shape"] is not None

        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["derivations"] == 0
        assert warm["simulations"] == 0
        assert warm["rows"] == cold["rows"]

    def test_unknown_kernel_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", "nope", "--cache-dir", str(tmp_path / "store")])

    def test_no_cache_disables_the_store(self, tmp_path, capsys):
        assert main([
            "report", "gemm", "--cache-words", "16", "--max-candidates", "8",
            *GEMM_SMALL, "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "root:" not in out  # no store summary without a store


class TestAcceptance:
    """The issue's acceptance command, exactly as specified."""

    def test_report_gemm_jacobi2d_cache_64(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main([
            "report", "gemm", "jacobi-2d", "--cache-words", "64",
            "--cache-dir", store_dir,
        ]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert any(line.startswith("gemm") for line in lines)
        assert any(line.startswith("jacobi-2d") for line in lines)
        assert "tightness" in lines[0]

        # Warm JSON rerun: zero derivations, zero simulations, and every
        # kernel's simulated upper bound at least the evaluated lower bound.
        assert main([
            "report", "gemm", "jacobi-2d", "--cache-words", "64",
            "--cache-dir", store_dir, "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["derivations"] == 0
        assert document["simulations"] == 0
        assert [row["kernel"] for row in document["rows"]] == ["gemm", "jacobi-2d"]
        for row in document["rows"]:
            assert row["error"] is None
            assert row["lower_value"] <= row["upper_loads"]
            assert row["tightness"] is not None
            assert row["tile_shape"] is not None
