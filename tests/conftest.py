"""Suite-wide fixtures: keep every test hermetic w.r.t. the bound store.

``BoundStore`` reads ``$REPRO_STORE`` (default root) and
``$REPRO_STORE_BUDGET`` (eviction budget) — both documented user knobs.  A
developer or CI runner who has them exported must not see spurious failures
(e.g. a budget evicting entries a test just wrote), and no test may ever
touch the user's real ``~/.cache/repro``.  Tests that exercise the env
handling re-set the variables explicitly via ``monkeypatch.setenv``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolate_bound_store_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_BUDGET", raising=False)
