"""Suite-wide fixtures: keep every test hermetic w.r.t. the bound store.

``BoundStore`` reads ``$REPRO_STORE`` (default root) and
``$REPRO_STORE_BUDGET`` (eviction budget) — both documented user knobs.  A
developer or CI runner who has them exported must not see spurious failures
(e.g. a budget evicting entries a test just wrote), and no test may ever
touch the user's real ``~/.cache/repro``.  Tests that exercise the env
handling re-set the variables explicitly via ``monkeypatch.setenv``.

This conftest also registers the ``slow`` marker: the differential
reachability sweeps (tests/rel/) are thorough but long, so they are skipped
by default and opt in with ``--runslow``; the tier-1 run stays fast.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (e.g. the differential reachability sweeps)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running sweep; skipped unless --runslow is given"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow sweep; use --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _isolate_bound_store_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_STORE_BUDGET", raising=False)
