"""AffineRelation algebra: constructors, operations, and hypothesis laws.

Every property is checked against brute-force pair enumeration on small
concrete boxes — the relation is, extensionally, nothing but a set of point
pairs, so set algebra is the ground truth.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rel import AffineRelation, in_name, out_name, translation_of_piece
from repro.sets import Constraint, EQ, LinExpr, Space

from .conftest import (
    box_domain,
    box_space,
    brute_pairs,
    translation,
    translation_relation,
)

BOX = 4

#: Immutable (frozen dataclass) -- safe to share across hypothesis examples.
SPACE2 = box_space("S", ("i", "j"))

offsets2 = st.tuples(st.integers(-2, 2), st.integers(-2, 2))


def compose_pairs(left: set, right: set) -> set:
    return {(a, d) for a, b in left for c, d in right if b == c}


class TestConstruction:
    def test_from_function_matches_pointwise_application(self):
        domain = box_domain(SPACE2, BOX)
        function = translation(SPACE2, (1, 0))
        relation = AffineRelation.from_function(domain, function, SPACE2)
        for point in domain.enumerate_points({}):
            image = function.apply_to_point(point, {})
            assert relation.contains_pair(point, image, {})
        assert relation.exact

    def test_identity_relates_exactly_equal_points(self):
        identity = AffineRelation.identity(SPACE2)
        assert identity.contains_pair((2, 3), (2, 3), {})
        assert not identity.contains_pair((2, 3), (3, 2), {})

    def test_universal_relates_every_pair(self):
        domain = box_domain(SPACE2, 3)
        universal = AffineRelation.universal(domain, domain)
        pairs = brute_pairs(universal)
        assert len(pairs) == 9 * 9

    def test_space_mismatch_is_rejected(self):
        other = box_space("T", ("a",))
        r1 = translation_relation(SPACE2, BOX, (1, 0))
        r2 = AffineRelation.identity(other)
        with pytest.raises(ValueError):
            r1.union(r2)
        with pytest.raises(ValueError):
            r1.compose(r2)

    def test_translation_of_piece_recognises_offsets(self):
        relation = translation_relation(SPACE2, BOX, (1, -2))
        assert translation_of_piece(relation, relation.pieces[0]) == (1, -2)
        # A reflection is not a translation.
        domain = box_domain(SPACE2, BOX)
        reflect = AffineRelation.universal(domain, domain).restrict(
            [
                Constraint(LinExpr({out_name(0): 1, in_name(0): -1}), EQ),
                Constraint(LinExpr({out_name(1): 1, in_name(1): 1}, -3), EQ),
            ]
        )
        assert translation_of_piece(reflect, reflect.pieces[0]) is None


class TestAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(a=offsets2, b=offsets2)
    def test_compose_matches_pair_composition(self, a, b):
        ra = translation_relation(SPACE2, BOX, a)
        rb = translation_relation(SPACE2, BOX, b)
        expected = compose_pairs(brute_pairs(ra), brute_pairs(rb))
        assert brute_pairs(ra.compose(rb)) == expected

    @settings(max_examples=15, deadline=None)
    @given(a=offsets2, b=offsets2, c=offsets2)
    def test_compose_is_associative(self, a, b, c):
        ra = translation_relation(SPACE2, BOX, a)
        rb = translation_relation(SPACE2, BOX, b)
        rc = translation_relation(SPACE2, BOX, c)
        left = ra.compose(rb).compose(rc)
        right = ra.compose(rb.compose(rc))
        assert brute_pairs(left) == brute_pairs(right)

    @settings(max_examples=20, deadline=None)
    @given(a=offsets2)
    def test_inverse_swaps_pairs(self, a):
        relation = translation_relation(SPACE2, BOX, a)
        assert brute_pairs(relation.inverse()) == {
            (y, x) for x, y in brute_pairs(relation)
        }

    @settings(max_examples=20, deadline=None)
    @given(a=offsets2, b=offsets2)
    def test_union_and_intersection_are_set_ops(self, a, b):
        ra = translation_relation(SPACE2, BOX, a)
        rb = translation_relation(SPACE2, BOX, b)
        assert brute_pairs(ra.union(rb)) == brute_pairs(ra) | brute_pairs(rb)
        assert brute_pairs(ra.intersect(rb)) == brute_pairs(ra) & brute_pairs(rb)

    @settings(max_examples=20, deadline=None)
    @given(a=offsets2)
    def test_domain_and_range_project_the_pairs(self, a):
        relation = translation_relation(SPACE2, BOX, a)
        pairs = brute_pairs(relation)
        assert set(relation.domain().enumerate_points({})) == {x for x, _ in pairs}
        assert set(relation.range().enumerate_points({})) == {y for _, y in pairs}

    def test_apply_is_the_image(self):
        relation = translation_relation(SPACE2, BOX, (1, 1))
        sub = box_domain(SPACE2, 2)  # the 2x2 corner
        image = set(relation.apply(sub).enumerate_points({}))
        assert image == {(1, 1), (1, 2), (2, 1), (2, 2)}

    @settings(max_examples=20, deadline=None)
    @given(a=offsets2, b=offsets2)
    def test_is_subset_agrees_with_pair_inclusion(self, a, b):
        ra = translation_relation(SPACE2, BOX, a)
        rb = translation_relation(SPACE2, BOX, b)
        union = ra.union(rb)
        assert ra.is_subset(union)
        if not (brute_pairs(ra) <= brute_pairs(rb)):
            assert not ra.is_subset(rb)

    def test_restrict_domain_and_range(self):
        relation = translation_relation(SPACE2, BOX, (1, 0))
        corner = box_domain(SPACE2, 2)
        restricted = relation.restrict_domain(corner)
        assert brute_pairs(restricted) == {
            (x, y) for x, y in brute_pairs(relation) if x in {(0, 0), (0, 1), (1, 0), (1, 1)}
        }
        restricted = relation.restrict_range(corner)
        assert brute_pairs(restricted) == {
            (x, y) for x, y in brute_pairs(relation) if y in {(0, 0), (0, 1), (1, 0), (1, 1)}
        }


class TestParametricPieces:
    def test_parametric_domain_membership(self):
        space = Space("S", ("i",), ("N",))
        from repro.sets import BasicSet, ParamSet

        domain = ParamSet.from_basic(
            BasicSet.from_bounds(space, {"i": (0, LinExpr({"N": 1}, -1))})
        )
        relation = AffineRelation.from_function(
            domain,
            translation(space, (1,)),
            space,
        ).restrict_range(domain)
        assert relation.contains_pair((3,), (4,), {"N": 6})
        assert not relation.contains_pair((5,), (6,), {"N": 6})  # image out of range
