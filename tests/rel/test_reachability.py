"""Differential tests: symbolic reachability vs. brute-force CDAG search.

The certificate property under test is *soundness*: whenever the symbolic
validator certifies the wavefront hypothesis (``holds=True``), the
brute-force check on a concretely expanded CDAG must agree at every
instance.  The converse cannot hold in general — the symbolic answer
quantifies over all parameter values while the concrete oracle looks at one
small instance — and ``adi`` is the canonical witness: its concrete check
*passes* at the historical default instance 4 (the inner slices are 2x2, so
the +-1 neighbourhood trivially spans them) but fails from instance 5 on,
while the symbolic validator correctly rejects for all sizes.
"""

from __future__ import annotations

import pytest

from repro.core.wavefront import (
    _validate_reachability_concrete,
    _validate_reachability_symbolic,
)
from repro.ir import DFG, ProgramBuilder
from repro.polybench import get_kernel
from repro.rel import PurePythonBackend, get_backend, islpy_available


def example2_program():
    return (
        ProgramBuilder("example2", ["M", "N"])
        .add_array("[N] -> { A[i] : 0 <= i < N }")
        .add_statement("[M, N] -> { S1[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_statement("[M, N] -> { S2[t, i] : 0 <= t < M and 0 <= i < N }", flops=1)
        .add_dependence("[M, N] -> { S1[t, i] -> S1[t, i - 1] : 0 <= t < M and 1 <= i < N }")
        .add_dependence("[M, N] -> { S1[t, i] -> S2[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S1[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> S1[t, N - 1] : 0 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> S2[t - 1, i] : 1 <= t < M and 0 <= i < N }")
        .add_dependence("[M, N] -> { S2[t, i] -> A[i] : t = 0 and 0 <= i < N }")
        .build()
    )


class TestPaperExamples:
    def test_example2_certifies_exactly(self):
        dfg = DFG.from_program(example2_program())
        for statement in ("S1", "S2"):
            result = _validate_reachability_symbolic(dfg, statement, 1)
            assert result.holds and result.exact
            assert _validate_reachability_concrete(dfg, statement, 1, {"M": 4, "N": 4})

    def test_durbin_certifies_exactly(self):
        dfg = DFG.from_program(get_kernel("durbin").program)
        result = _validate_reachability_symbolic(dfg, "Y", 1)
        assert result.holds and result.exact
        assert _validate_reachability_concrete(dfg, "Y", 1, {"N": 4})

    @pytest.mark.slow
    def test_durbin_sum_statement_also_certifies(self):
        dfg = DFG.from_program(get_kernel("durbin").program)
        result = _validate_reachability_symbolic(dfg, "SUM", 1)
        assert result.holds and result.exact

    @pytest.mark.slow
    def test_adi_rejects_where_the_concrete_oracle_is_instance_blind(self):
        """adi's hypothesis is false for N >= 5, yet the concrete check at
        the historical default instance 4 passes — the symbolic validator
        must reject (for all N), retiring exactly this blind spot."""
        dfg = DFG.from_program(get_kernel("adi").program)
        for statement in ("V", "U"):
            assert not _validate_reachability_symbolic(dfg, statement, 1).holds
        assert _validate_reachability_concrete(dfg, "V", 1, {"T": 3, "N": 4})
        assert not _validate_reachability_concrete(dfg, "V", 1, {"T": 3, "N": 6})


# -- random DFG soundness sweep ---------------------------------------------

# The seeded two-statement generator that historically lived here is now the
# "small" profile of the first-class fuzzer — same seeds, same programs
# (tests/fuzz/test_generator.py locks the fingerprints), one source of truth.
from repro.fuzz.generator import random_program


def assert_symbolic_sound_against_concrete(seed: int) -> None:
    program = random_program(seed)
    dfg = DFG.from_program(program)
    for statement in ("P", "Q"):
        symbolic = _validate_reachability_symbolic(dfg, statement, 1)
        if symbolic.holds:
            # A certificate quantifies over every instance: the brute-force
            # CDAG check must agree wherever it is applicable.
            for instance in ({"M": 3, "N": 3}, {"M": 4, "N": 5}):
                assert _validate_reachability_concrete(dfg, statement, 1, instance), (
                    f"seed {seed}: symbolic certificate for {statement} not "
                    f"confirmed by the concrete CDAG at {instance}"
                )


@pytest.mark.parametrize("seed", [2, 3])
def test_random_dfg_soundness_fast(seed):
    assert_symbolic_sound_against_concrete(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, *range(4, 40)])
def test_random_dfg_soundness_sweep(seed):
    assert_symbolic_sound_against_concrete(seed)


# -- backends ----------------------------------------------------------------


class TestBackends:
    def test_pure_backend_always_available(self):
        assert isinstance(get_backend("pure"), PurePythonBackend)

    def test_auto_selection_respects_availability(self, monkeypatch):
        monkeypatch.delenv("REPRO_REL_BACKEND", raising=False)
        backend = get_backend()
        if islpy_available():
            assert backend.name == "islpy"
        else:
            assert backend.name == "pure"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REL_BACKEND", "pure")
        assert get_backend().name == "pure"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            get_backend("no-such-backend")

    @pytest.mark.skipif(not islpy_available(), reason="islpy not installed")
    def test_islpy_backend_agrees_on_examples(self):
        from repro.rel import IslBackend

        backend = IslBackend()
        dfg = DFG.from_program(example2_program())
        from repro.core.wavefront import dfg_forward_relations, slice_step_relation
        from repro.sets import Constraint, LinExpr

        stmt = dfg.program.statement("S2")
        edges = dfg_forward_relations(dfg)
        target = slice_step_relation(stmt.domain, 1)
        context = [Constraint(LinExpr({p: 1}, -1)) for p in dfg.program.params]
        result = backend.check_reachability(edges, target, "S2", context)
        assert result.holds

    @pytest.mark.skipif(not islpy_available(), reason="islpy not installed")
    def test_isl_serialization_parses(self):
        import islpy

        from repro.core.wavefront import dfg_forward_relations
        from repro.rel import relation_to_isl_str

        dfg = DFG.from_program(get_kernel("durbin").program)
        for edge in dfg_forward_relations(dfg):
            text = relation_to_isl_str(edge, list(dfg.program.params))
            parsed = islpy.UnionMap(text)
            assert not parsed.is_empty()
