"""Shared helpers for the relation-algebra tests.

Brute-force ground truth: a relation over small concrete boxes is just a set
of point pairs, so every algebraic property (composition, inverse, closure)
can be checked against plain Python set manipulation.
"""

from __future__ import annotations

import pytest

from repro.rel import AffineRelation
from repro.sets import AffineFunction, BasicSet, LinExpr, ParamSet, Space


def box_space(name: str, dims: tuple[str, ...], params: tuple[str, ...] = ()) -> Space:
    return Space(name, dims, params)


def box_domain(space: Space, size: int) -> ParamSet:
    """The concrete box ``[0, size)^dim`` over ``space``."""
    bounds = {d: (0, size - 1) for d in space.dims}
    return ParamSet.from_basic(BasicSet.from_bounds(space, bounds))


def translation(space: Space, offsets: tuple[int, ...]) -> AffineFunction:
    """The map ``x -> x + offsets`` on ``space``."""
    exprs = [LinExpr({d: 1}, off) for d, off in zip(space.dims, offsets)]
    return AffineFunction(space, space.tuple_name, exprs)


def translation_relation(
    space: Space, size: int, offsets: tuple[int, ...]
) -> AffineRelation:
    """``{x -> x + offsets}`` restricted so both endpoints stay in the box."""
    domain = box_domain(space, size)
    relation = AffineRelation.from_function(domain, translation(space, offsets), space)
    return relation.restrict_range(domain)


def brute_pairs(relation: AffineRelation, params=None) -> set:
    return relation.enumerate_pairs(params or {})


def brute_closure(pairs: set) -> set:
    """Transitive closure of a finite pair set (Floyd-Warshall on points)."""
    closure = set(pairs)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


@pytest.fixture
def space2():
    return box_space("S", ("i", "j"))
