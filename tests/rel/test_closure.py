"""Transitive closure: algebraic laws and exactness-flag soundness.

The exactness certificate is the load-bearing part of the engine — a
wavefront bound is only accepted on a certified closure — so the hypothesis
sweeps pin the flag against brute-force reachability on concrete boxes:

* always: the closure contains the relation (``R subset-of R+``);
* ``exact=True``: the closure equals brute-force reachability;
* ``direction="over"``: the closure contains brute-force reachability;
* ``direction="under"``: the closure is contained in it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.rel import AffineRelation, transitive_closure
from repro.sets import LinExpr, Space

from .conftest import (
    box_domain,
    box_space,
    brute_closure,
    brute_pairs,
    translation,
    translation_relation,
)

BOX = 4

#: Immutable (frozen dataclass) -- safe to share across hypothesis examples.
SPACE2 = box_space("S", ("i", "j"))

offsets2 = st.tuples(st.integers(-2, 2), st.integers(-2, 2))


def union_of_translations(space, offset_list):
    relation = None
    for offsets in offset_list:
        piece = translation_relation(space, BOX, offsets)
        relation = piece if relation is None else relation.union(piece)
    return relation


class TestSingleTranslation:
    def test_unit_chain_closure_formula(self):
        space = Space("S", ("i",), ("N",))
        from repro.sets import BasicSet, ParamSet

        domain = ParamSet.from_basic(
            BasicSet.from_bounds(space, {"i": (0, LinExpr({"N": 1}, -1))})
        )
        step = AffineRelation.from_function(
            domain, translation(space, (1,)), space
        ).restrict_range(domain)
        result = transitive_closure(step)
        assert result.exact
        # { i -> i' : 0 <= i < i' < N } for every N
        for n in (1, 3, 5):
            pairs = result.relation.enumerate_pairs({"N": n})
            assert pairs == {((i,), (j,)) for i in range(n) for j in range(i + 1, n)}

    def test_zero_translation_closure_is_itself(self):
        identity_like = translation_relation(SPACE2, BOX, (0, 0))
        result = transitive_closure(identity_like)
        assert result.exact
        assert brute_pairs(result.relation) == brute_pairs(identity_like)

    @settings(max_examples=25, deadline=None)
    @given(offsets=offsets2)
    def test_closure_of_one_translation_is_exact(self, offsets):
        relation = translation_relation(SPACE2, BOX, offsets)
        result = transitive_closure(relation)
        pairs = brute_pairs(relation)
        closed = brute_closure(pairs)
        assert pairs <= brute_pairs(result.relation)          # R subset-of R+
        if result.exact:
            assert brute_pairs(result.relation) == closed
        else:
            assert brute_pairs(result.relation) >= closed     # over mode


class TestTranslationFamilies:
    @settings(max_examples=20, deadline=None)
    @given(a=offsets2, b=offsets2)
    def test_two_family_closure_soundness(self, a, b):
        relation = union_of_translations(SPACE2, [a, b])
        truth = brute_closure(brute_pairs(relation))
        over = transitive_closure(relation, direction="over")
        under = transitive_closure(relation, direction="under")
        assert brute_pairs(relation) <= brute_pairs(over.relation)
        assert brute_pairs(over.relation) >= truth
        assert brute_pairs(under.relation) <= truth
        if over.exact:
            assert brute_pairs(over.relation) == truth
        if under.exact:
            assert brute_pairs(under.relation) == truth

    def test_closure_is_idempotent_when_exact(self):
        relation = union_of_translations(SPACE2, [(1, 0), (0, 1)])
        first = transitive_closure(relation)
        if not first.exact:
            pytest.skip("closure not exact on this family")
        second = transitive_closure(first.relation)
        assert brute_pairs(second.relation) == brute_pairs(first.relation)


class TestGenericRelations:
    def test_reflection_closure_reaches_fixpoint_exactly(self):
        # i -> (j, i) on a box: applying twice gives the identity, so the
        # closure is the 2-cycle orbit — finite, and the saturation loop
        # certifies the fixpoint (exact).
        from repro.rel import in_name, out_name
        from repro.sets import Constraint, EQ

        domain = box_domain(SPACE2, BOX)
        swap = AffineRelation.universal(domain, domain).restrict(
            [
                Constraint(
                    LinExpr({out_name(0): 1, in_name(1): -1}), EQ
                ),
                Constraint(
                    LinExpr({out_name(1): 1, in_name(0): -1}), EQ
                ),
            ]
        )
        result = transitive_closure(swap)
        truth = brute_closure(brute_pairs(swap))
        assert result.exact
        assert brute_pairs(result.relation) == truth

    def test_inexact_over_closure_is_a_superset(self):
        # A translation with no unit coordinate: the step counter cannot be
        # eliminated exactly, so the closure must flag itself and
        # over-approximate.
        relation = translation_relation(SPACE2, 6, (2, 2))
        result = transitive_closure(relation)
        truth = brute_closure(brute_pairs(relation))
        assert brute_pairs(result.relation) >= truth
        if brute_pairs(result.relation) != truth:
            assert not result.exact

    def test_empty_relation_closure(self):
        empty = AffineRelation.empty(SPACE2, SPACE2)
        result = transitive_closure(empty)
        assert result.exact
        assert result.relation.is_obviously_empty()
