"""Tests for the red-white pebble game, schedules and cache simulators."""

import pytest

from repro.ir import CDAG, ProgramBuilder
from repro.pebble import (
    GameState,
    Move,
    PebbleGameError,
    lexicographic_schedule,
    simulate_schedule,
    tiled_schedule,
    topological_schedule,
)


def chain_program(n=5):
    """A simple chain: S[i] depends on S[i-1], S[0] reads the input a[0]."""
    return (
        ProgramBuilder("chain", ["N"])
        .add_array("[N] -> { a[i] : 0 <= i < 1 }")
        .add_statement("[N] -> { S[i] : 0 <= i < N }")
        .add_dependence("[N] -> { S[i] -> S[i - 1] : 1 <= i < N }")
        .add_dependence("[N] -> { S[i] -> a[i] : i = 0 }")
        .build()
    )


def gemm_program():
    return (
        ProgramBuilder("gemm", ["Ni", "Nj", "Nk"])
        .add_array("[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
        .add_array("[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
        .add_statement(
            "[Ni, Nj, Nk] -> { S[i, j, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }",
            flops=2,
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < Ni and 0 <= j < Nj and 1 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> A[i, k] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .add_dependence(
            "[Ni, Nj, Nk] -> { S[i, j, k] -> B[k, j] : 0 <= i < Ni and 0 <= j < Nj and 0 <= k < Nk }"
        )
        .build()
    )


class TestGameRules:
    def test_compute_requires_operands_in_fast_memory(self):
        cdag = CDAG.expand(chain_program(), {"N": 3})
        state = GameState(cdag, capacity=2)
        with pytest.raises(PebbleGameError):
            state.apply(Move("compute", ("S", (1,))))

    def test_no_recomputation(self):
        cdag = CDAG.expand(chain_program(), {"N": 2})
        state = GameState(cdag, capacity=4)
        state.apply(Move("load", ("a", (0,))))
        state.apply(Move("compute", ("S", (0,))))
        with pytest.raises(PebbleGameError):
            state.apply(Move("compute", ("S", (0,))))

    def test_capacity_enforced(self):
        cdag = CDAG.expand(chain_program(), {"N": 5})
        state = GameState(cdag, capacity=1)
        state.apply(Move("load", ("a", (0,))))
        with pytest.raises(PebbleGameError):
            state.apply(Move("compute", ("S", (0,))))

    def test_load_requires_computed_value(self):
        cdag = CDAG.expand(chain_program(), {"N": 3})
        state = GameState(cdag, capacity=3)
        with pytest.raises(PebbleGameError):
            state.apply(Move("load", ("S", (2,))))

    def test_evict_frees_space(self):
        cdag = CDAG.expand(chain_program(), {"N": 3})
        state = GameState(cdag, capacity=2)
        state.apply(Move("load", ("a", (0,))))
        state.apply(Move("compute", ("S", (0,))))
        state.apply(Move("evict", ("a", (0,))))
        state.apply(Move("compute", ("S", (1,))))
        assert state.loads == 1


class TestSchedules:
    def test_lexicographic_schedule_is_valid(self):
        cdag = CDAG.expand(gemm_program(), {"Ni": 3, "Nj": 3, "Nk": 3})
        schedule = lexicographic_schedule(cdag)
        assert cdag.is_valid_schedule(schedule)

    def test_tiled_schedule_is_valid(self):
        cdag = CDAG.expand(gemm_program(), {"Ni": 4, "Nj": 4, "Nk": 4})
        schedule = tiled_schedule(cdag, {"S": (2, 2, 2)})
        assert cdag.is_valid_schedule(schedule)

    def test_topological_schedule_is_valid(self):
        cdag = CDAG.expand(chain_program(), {"N": 6})
        schedule = topological_schedule(cdag)
        assert cdag.is_valid_schedule(schedule)


class TestCacheSimulation:
    def test_chain_needs_one_load(self):
        cdag = CDAG.expand(chain_program(), {"N": 8})
        schedule = topological_schedule(cdag)
        result = simulate_schedule(cdag, schedule, capacity=2)
        assert result.loads == 1  # only the initial input load
        assert result.operations == 8

    def test_opt_never_worse_than_lru(self):
        cdag = CDAG.expand(gemm_program(), {"Ni": 4, "Nj": 4, "Nk": 4})
        schedule = lexicographic_schedule(cdag)
        lru = simulate_schedule(cdag, schedule, capacity=6, policy="lru")
        opt = simulate_schedule(cdag, schedule, capacity=6, policy="opt")
        assert opt.loads <= lru.loads

    def test_tiling_reduces_loads_for_gemm(self):
        cdag = CDAG.expand(gemm_program(), {"Ni": 6, "Nj": 6, "Nk": 6})
        untiled = simulate_schedule(cdag, lexicographic_schedule(cdag), capacity=10)
        tiled = simulate_schedule(cdag, tiled_schedule(cdag, {"S": (2, 2, 6)}), capacity=10)
        assert tiled.loads <= untiled.loads

    def test_larger_cache_never_hurts(self):
        cdag = CDAG.expand(gemm_program(), {"Ni": 4, "Nj": 4, "Nk": 4})
        schedule = lexicographic_schedule(cdag)
        small = simulate_schedule(cdag, schedule, capacity=5)
        large = simulate_schedule(cdag, schedule, capacity=30)
        assert large.loads <= small.loads

    def test_invalid_schedule_rejected(self):
        cdag = CDAG.expand(chain_program(), {"N": 4})
        schedule = list(reversed(topological_schedule(cdag)))
        with pytest.raises(ValueError):
            simulate_schedule(cdag, schedule, capacity=4)

    def test_operational_intensity(self):
        cdag = CDAG.expand(chain_program(), {"N": 8})
        result = simulate_schedule(cdag, topological_schedule(cdag), capacity=2)
        assert result.operational_intensity() == 8.0
