"""Differential and sandwich properties of the cache simulators (PR 6).

* Belady (``opt``) can never load more than LRU for the same schedule and
  capacity — checked on seeded random DAGs and on small kernel CDAGs;
* every simulated schedule is a legal pebble game, so its load count can
  never be below the evaluated IOLB lower bound — checked across a dozen
  PolyBench kernels (the tightness sandwich the report builds on).
"""

import random
import warnings

import pytest

from repro.ir import CDAG
from repro.pebble import (
    TilingFallbackWarning,
    lexicographic_schedule,
    simulate_schedule,
    topological_schedule,
)
from repro.polybench import get_kernel
from repro.polybench.suite import analyze_kernel


def random_cdag(seed: int, operations: int = 40, inputs: int = 6) -> CDAG:
    """A seeded random DAG built directly (no affine program behind it).

    Statement vertex ``("S", (j,))`` may only read inputs and earlier
    statements, so the construction is acyclic by index; at most 4 operands
    per vertex keeps every operation simulable at small capacities.
    """
    rng = random.Random(seed)
    cdag = CDAG(program=None, params={})
    for index in range(inputs):
        vertex = ("in", (index,))
        cdag.graph.add_node(vertex, kind="input")
        cdag.inputs.add(vertex)
    for index in range(operations):
        vertex = ("S", (index,))
        cdag.graph.add_node(vertex, kind="statement")
        pool = [("in", (i,)) for i in range(inputs)]
        pool += [("S", (i,)) for i in range(index)]
        for operand in rng.sample(pool, k=min(len(pool), rng.randint(1, 4))):
            cdag.graph.add_edge(operand, vertex)
    return cdag


class TestBeladyNeverWorseThanLRU:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_dags(self, seed):
        cdag = random_cdag(seed)
        schedule = topological_schedule(cdag)
        for capacity in (5, 8, 16):
            lru = simulate_schedule(cdag, schedule, capacity, policy="lru")
            opt = simulate_schedule(cdag, schedule, capacity, policy="opt")
            assert opt.loads <= lru.loads, (
                f"seed {seed}, capacity {capacity}: "
                f"Belady {opt.loads} > LRU {lru.loads}"
            )
            assert opt.operations == lru.operations == len(schedule)

    @pytest.mark.parametrize("name,instance,capacity", [
        ("gemm", {"Ni": 5, "Nj": 5, "Nk": 5}, 8),
        ("atax", {"M": 7, "N": 7}, 6),
        ("trisolv", {"N": 9}, 5),
        ("covariance", {"M": 6, "N": 6}, 8),
    ])
    def test_kernel_cdags(self, name, instance, capacity):
        spec = get_kernel(name)
        cdag = CDAG.expand(spec.program, instance)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TilingFallbackWarning)
            schedule = lexicographic_schedule(cdag, warn=False)
        lru = simulate_schedule(cdag, list(schedule), capacity, policy="lru")
        opt = simulate_schedule(cdag, list(schedule), capacity, policy="opt")
        assert opt.loads <= lru.loads


class TestSandwich:
    """Simulated loads >= evaluated lower bound: the report's core invariant."""

    CASES = [
        ("gemm", {"Ni": 6, "Nj": 6, "Nk": 6}, 8),
        ("cholesky", {"N": 8}, 8),
        ("lu", {"N": 8}, 8),
        ("atax", {"M": 8, "N": 8}, 6),
        ("trisolv", {"N": 10}, 4),
        ("covariance", {"M": 6, "N": 6}, 8),
        ("bicg", {"M": 8, "N": 8}, 6),
        ("gesummv", {"N": 8}, 6),
        ("trmm", {"M": 6, "N": 6}, 8),
        ("doitgen", {"Nq": 6, "Nr": 6, "Np": 6}, 8),
        ("jacobi-2d", {"T": 12, "N": 12}, 16),
        ("fdtd-2d", {"T": 8, "Nx": 8, "Ny": 8}, 16),
    ]

    @pytest.mark.parametrize("name,instance,capacity", CASES)
    def test_simulated_loads_at_least_lower_bound(self, name, instance, capacity):
        spec = get_kernel(name)
        analysis = analyze_kernel(name)
        cdag = CDAG.expand(spec.program, instance)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TilingFallbackWarning)
            schedule = lexicographic_schedule(cdag, warn=False)
        bound = analysis.result.evaluate({**instance, "S": capacity})
        for policy in ("lru", "opt"):
            simulated = simulate_schedule(cdag, list(schedule), capacity, policy=policy)
            assert bound <= simulated.loads + 1e-9, (
                f"{name} ({policy}): bound {bound} exceeds "
                f"simulated {simulated.loads}"
            )
