"""The topological fallback of schedule generators is observable (PR 6).

``tiled_schedule`` / ``lexicographic_schedule`` fall back to a plain
topological order when the requested order violates a dependence; since PR 6
the fallback is visible (``Schedule.used_fallback`` plus a
``TilingFallbackWarning``) so the tiling search can skip schedules that do
not realise the tiling they were asked for.
"""

import warnings

import pytest

from repro.ir import CDAG, ProgramBuilder
from repro.pebble import (
    Schedule,
    TilingFallbackWarning,
    lexicographic_schedule,
    tiled_schedule,
    topological_schedule,
)


def antidiagonal_program():
    """S[t, i] reads S[t-1, i+1]: rectangular t-tiling is illegal.

    With 2x2 tiles, sink S[1, 1] (tile (0, 0)) reads source S[0, 2] (tile
    (0, 1)) — the source's tile executes *after* the sink's, so the tiled
    order violates the dependence; tiles of t-extent 1 are legal.
    """
    return (
        ProgramBuilder("antidiag", ["T", "N"])
        .add_array("[T, N] -> { a[i] : 0 <= i < 1 }")
        .add_statement("[T, N] -> { S[t, i] : 0 <= t < T and 0 <= i < N }")
        .add_dependence(
            "[T, N] -> { S[t, i] -> S[t - 1, i + 1] : 1 <= t < T and 0 <= i < N - 1 }"
        )
        .add_dependence("[T, N] -> { S[t, i] -> a[i] : t = 0 and i = 0 }")
        .build()
    )


def reversed_chain_program():
    """S[i] reads S[i+1]: the lexicographic order itself is illegal."""
    return (
        ProgramBuilder("revchain", ["N"])
        .add_array("[N] -> { a[i] : 0 <= i < 1 }")
        .add_statement("[N] -> { S[i] : 0 <= i < N }")
        .add_dependence("[N] -> { S[i] -> S[i + 1] : 0 <= i < N - 1 }")
        .add_dependence("[N] -> { S[i] -> a[i] : i = N - 1 }")
        .build()
    )


@pytest.fixture
def antidiag_cdag():
    return CDAG.expand(antidiagonal_program(), {"T": 4, "N": 4})


class TestFallbackObservable:
    def test_illegal_tiling_sets_flag_and_warns(self, antidiag_cdag):
        with pytest.warns(TilingFallbackWarning):
            schedule = tiled_schedule(antidiag_cdag, {"S": (2, 2)})
        assert schedule.used_fallback
        assert schedule.requested == "tiled"
        # The fallback is still a legal schedule — just not the tiling.
        assert antidiag_cdag.is_valid_schedule(schedule)

    def test_warn_false_suppresses_the_warning(self, antidiag_cdag):
        with warnings.catch_warnings():
            warnings.simplefilter("error", TilingFallbackWarning)
            schedule = tiled_schedule(antidiag_cdag, {"S": (2, 2)}, warn=False)
        assert schedule.used_fallback

    def test_legal_tiling_does_not_fall_back(self, antidiag_cdag):
        with warnings.catch_warnings():
            warnings.simplefilter("error", TilingFallbackWarning)
            schedule = tiled_schedule(antidiag_cdag, {"S": (1, 2)})
        assert not schedule.used_fallback
        assert schedule.requested == "tiled"
        assert antidiag_cdag.is_valid_schedule(schedule)

    def test_lexicographic_fallback_observable(self):
        cdag = CDAG.expand(reversed_chain_program(), {"N": 5})
        with pytest.warns(TilingFallbackWarning):
            schedule = lexicographic_schedule(cdag)
        assert schedule.used_fallback
        assert schedule.requested == "lexicographic"
        assert cdag.is_valid_schedule(schedule)

    def test_valid_lexicographic_keeps_flag_clear(self, antidiag_cdag):
        with warnings.catch_warnings():
            warnings.simplefilter("error", TilingFallbackWarning)
            schedule = lexicographic_schedule(antidiag_cdag)
        assert not schedule.used_fallback

    def test_topological_schedule_never_falls_back(self, antidiag_cdag):
        schedule = topological_schedule(antidiag_cdag)
        assert isinstance(schedule, Schedule)
        assert not schedule.used_fallback
        assert schedule.requested == "topological"

    def test_schedule_behaves_like_a_list(self, antidiag_cdag):
        schedule = topological_schedule(antidiag_cdag)
        assert isinstance(schedule, list)
        assert len(schedule) == len(antidiag_cdag.compute_vertices())
        assert schedule[:3] == list(schedule)[:3]
