"""Command-line interface: ``python -m repro`` (or the ``repro`` entry point).

Subcommands
-----------
``analyze <kernel>``
    Derive the I/O lower bound for one PolyBench kernel and print (or dump as
    JSON) the resulting formulae.

``suite [--kernels ...] [--jobs N] --json out.json``
    Run the derivation over the PolyBench suite through
    :meth:`repro.analysis.Analyzer.analyze_many` and persist every result as
    a reloadable JSON document.

``kernels``
    List the registered PolyBench kernels.

All derivation knobs map onto :class:`repro.analysis.AnalysisConfig` fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

import sympy

from .analysis import AnalysisConfig, Analyzer, save_results
from .polybench import all_kernels, analyze_suite, get_kernel, kernel_names


def _parse_instance(pairs: Sequence[str]) -> dict[str, int] | None:
    """Parse repeated ``NAME=VALUE`` arguments into an instance mapping."""
    if not pairs:
        return None
    instance = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise argparse.ArgumentTypeError(
                f"instance entries must look like NAME=VALUE, got {pair!r}"
            )
        instance[name] = int(value)
    return instance


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("analysis configuration")
    group.add_argument(
        "--max-depth", type=int, default=None,
        help="wavefront parametrisation depth (default: the kernel's registered depth)",
    )
    group.add_argument("--gamma", type=float, default=None,
                       help="path domain-coverage threshold in [0, 1]")
    group.add_argument(
        "--strategies", nargs="+", default=None, metavar="NAME",
        help="strategies to run, in order (default: kpartition wavefront)",
    )
    group.add_argument(
        "--instance", nargs="*", default=(), metavar="NAME=VALUE",
        help="heuristic ranking instance overrides (e.g. Ni=1000 S=512)",
    )
    group.add_argument(
        "--no-validate-wavefront", action="store_true",
        help="skip the concrete validation of the wavefront hypothesis",
    )
    group.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk result cache")


def _config_for(args: argparse.Namespace, spec_max_depth: int) -> AnalysisConfig:
    kwargs: dict = {
        "max_depth": args.max_depth if args.max_depth is not None else spec_max_depth,
        "instance": _parse_instance(args.instance),
        "validate_wavefront": not args.no_validate_wavefront,
        "cache_dir": args.cache_dir,
    }
    if args.gamma is not None:
        kwargs["gamma"] = args.gamma
    if args.strategies is not None:
        kwargs["strategies"] = tuple(args.strategies)
    if getattr(args, "jobs", None):
        kwargs["n_jobs"] = args.jobs
    return AnalysisConfig(**kwargs)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.kernel not in kernel_names():
        raise SystemExit(
            f"unknown kernel {args.kernel!r}; see `python -m repro kernels`"
        )
    spec = get_kernel(args.kernel)
    config = _config_for(args, spec.max_depth)
    result = Analyzer(config).analyze(spec.program)

    if args.json is not None:
        payload = json.dumps(result.to_dict(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as stream:
                stream.write(payload)
            print(f"wrote {args.json}")
        return 0

    print(f"kernel           : {result.program_name}")
    print(f"parameters       : {', '.join(result.parameters)}")
    print(f"input size       : {result.input_size}")
    print(f"total flops      : {result.total_flops}")
    print(f"Q_low (complete) : {result.expression}")
    print(f"Q_low (leading)  : {result.asymptotic}")
    print(f"OI upper bound   : {result.oi_upper_bound()}")
    if args.verbose:
        print("derivation log:")
        for line in result.log:
            print(f"  * {line[:160]}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    names = args.kernels if args.kernels else kernel_names()
    unknown = sorted(set(names) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {unknown}; see `python -m repro kernels`")

    overrides: dict = {
        "instance": _parse_instance(args.instance),
        "validate_wavefront": not args.no_validate_wavefront,
        "cache_dir": args.cache_dir,
    }
    if args.max_depth is not None:
        overrides["max_depth"] = args.max_depth
    if args.gamma is not None:
        overrides["gamma"] = args.gamma
    if args.strategies is not None:
        overrides["strategies"] = tuple(args.strategies)
    analyses = analyze_suite(names, n_jobs=args.jobs, **overrides)
    results = [analysis.result for analysis in analyses]

    if args.json is not None:
        save_results(results, args.json)
        print(f"wrote {len(results)} results to {args.json}")
    print(f"{'kernel':<16} {'Q_low (asymptotic)':<40} {'OI_up'}")
    print("-" * 72)
    for result in results:
        print(
            f"{result.program_name:<16} {sympy.sstr(result.asymptotic):<40} "
            f"{sympy.sstr(result.oi_upper_bound())}"
        )
    return 0


def _cmd_kernels(_args: argparse.Namespace) -> int:
    for spec in all_kernels():
        print(f"{spec.name:<16} {spec.category:<14} max_depth={spec.max_depth}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOLB reproduction: derive parametric I/O lower bounds.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="analyze one PolyBench kernel")
    analyze.add_argument("kernel", help="kernel name (see `python -m repro kernels`)")
    analyze.add_argument("--json", default=None, metavar="FILE",
                         help="write the result as JSON to FILE ('-' for stdout)")
    analyze.add_argument("--verbose", action="store_true", help="print the derivation log")
    _add_config_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    suite = commands.add_parser("suite", help="analyze many kernels, persist as JSON")
    suite.add_argument("--kernels", nargs="+", default=None, metavar="NAME",
                       help="kernel subset (default: the whole suite)")
    suite.add_argument("--json", default=None, metavar="FILE",
                       help="write all results as one JSON document")
    suite.add_argument("--jobs", type=int, default=1, help="worker processes")
    _add_config_arguments(suite)
    suite.set_defaults(handler=_cmd_suite)

    kernels = commands.add_parser("kernels", help="list registered kernels")
    kernels.set_defaults(handler=_cmd_kernels)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, argparse.ArgumentTypeError) as error:
        # Configuration and lookup mistakes (bad gamma, unknown strategy,
        # malformed NAME=VALUE, ...) are user errors, not crashes: print the
        # message, not a traceback.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
