"""Command-line interface: ``python -m repro`` (or the ``repro`` entry point).

Subcommands
-----------
``analyze <kernel>``
    Derive the I/O lower bound for one PolyBench kernel and print (or dump as
    JSON) the resulting formulae.

``suite [--kernels ...] [--executor thread --jobs N] --json out.json``
    Run the derivation over the PolyBench suite through the event-driven
    streaming scheduler (:func:`repro.polybench.analyze_suite_stream`) and
    persist every result as a reloadable JSON document.  All kernels'
    derivation tasks flow through one shared executor (``--jobs 8``
    schedules the whole suite's tasks in a single work queue), and each
    kernel's table row prints **the moment its derivation completes** —
    early bounds appear while later kernels are still running.  The JSON
    document is written in request order and is byte-identical across
    executors and schedulers.

``report [kernels...] [--cache-words S] [--json]``
    The tightness sandwich (Sec. 8.2 / Table 2): derive each kernel's
    parametric lower bound, run the tiling search of :mod:`repro.upper` on a
    small instance to obtain the best *simulated* upper bound (a legal
    red-white pebble game), and print both with the winning tile shape and
    the tightness ratio ``Q_up / Q_low``.  Both sides memoise through the
    shared store, so a warm rerun performs 0 derivations and 0 simulations.

``serve [--port N]``
    Long-lived JSON-lines analysis service (see :mod:`repro.service`):
    requests in, streamed results out, over stdin/stdout or TCP.  The TCP
    server is concurrent (one thread per connection, all connections
    sharing one store and one executor pool); Ctrl-C stops accepting and
    drains in-flight requests before exiting.  A ``{"stats": true}``
    request reports uptime, in-flight requests and store statistics.

``profile [--kernels ...] [--json] [--output FILE]``
    Cold in-process derivation of the suite with wall-time attributed to the
    set-algebra subsystems (:mod:`repro.perf`): prints the share of linear
    algebra, Fourier-Motzkin, counting, closure and pebble simulation, plus
    memo-cache hit rates.  Runs serially in-process (workers would keep
    their own counters) and starts from cleared caches, so the numbers are
    reproducible cold-path attributions.

``kernels [--json]``
    List the registered PolyBench kernels (``--json`` emits the
    machine-readable registry document service clients discover workloads
    from).

``fuzz [--seeds N] [--profile small|wide|deep] [--oracle NAME ...]``
    Differential fuzzing (see :mod:`repro.fuzz`): generate seeded random
    affine programs and check each against the soundness oracles
    (executors, backends, store, sandwich, counting).  Failures are shrunk
    to minimal reproductions and, with ``--corpus DIR``, written as
    replayable JSON entries; ``--replay FILE`` re-runs one entry and exits
    non-zero while the divergence still reproduces.

``cache {stats,gc,clear,export,import}``
    Maintain the shared persistent bound store (``$REPRO_STORE`` or
    ``~/.cache/repro``): show layout/usage statistics, evict
    least-recently-used entries down to a size budget, drop everything, or
    replicate the store across machines via ``export``/``import`` tarballs
    (import negotiates schema versions and never overwrites newer entries).

All derivation knobs map onto :class:`repro.analysis.AnalysisConfig` fields.
``analyze`` and ``suite`` memoise through the shared bound store by default,
so a warm second run performs zero derivations; ``--no-cache`` opts out and
``--cache-dir`` redirects to a private store root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tarfile
from typing import Sequence

import sympy

from .analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    derivation_count,
    reset_derivation_count,
    save_results,
)
from .analysis.executor import EXECUTOR_NAMES
from .core.wavefront import VALIDATION_MODES
from .polybench import all_kernels, analyze_suite, analyze_suite_stream, get_kernel, kernel_names
from .upper import tightness_report


def _parse_instance(pairs: Sequence[str]) -> dict[str, int] | None:
    """Parse repeated ``NAME=VALUE`` arguments into an instance mapping."""
    if not pairs:
        return None
    instance = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise argparse.ArgumentTypeError(
                f"instance entries must look like NAME=VALUE, got {pair!r}"
            )
        instance[name] = int(value)
    return instance


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("analysis configuration")
    group.add_argument(
        "--max-depth", type=int, default=None,
        help="wavefront parametrisation depth (default: the kernel's registered depth)",
    )
    group.add_argument("--gamma", type=float, default=None,
                       help="path domain-coverage threshold in [0, 1]")
    group.add_argument(
        "--strategies", nargs="+", default=None, metavar="NAME",
        help="strategies to run, in order (default: kpartition wavefront)",
    )
    group.add_argument(
        "--instance", nargs="*", default=(), metavar="NAME=VALUE",
        help="heuristic ranking instance overrides (e.g. Ni=1000 S=512)",
    )
    group.add_argument(
        "--no-validate-wavefront", action="store_true",
        help="skip the validation of the wavefront hypothesis",
    )
    group.add_argument(
        "--wavefront-validation", choices=VALIDATION_MODES, default="symbolic",
        help="how the wavefront hypothesis is checked: symbolic relation "
             "algebra (Algorithm 5, default) or concrete CDAG expansion",
    )
    group.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="task executor: serial (default), thread (one shared thread "
             "pool), or process (worker processes); unset consults "
             "$REPRO_EXECUTOR, then picks process when --jobs > 1",
    )
    group.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel workers for the task executor (threads or processes, "
             "depending on --executor); every (statement x strategy x depth) "
             "derivation task is scheduled independently",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="bound store root (default: $REPRO_STORE or ~/.cache/repro)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent bound store for this run",
    )


def _store_for(args: argparse.Namespace) -> BoundStore | None:
    """The bound store a CLI run memoises through (None with ``--no-cache``)."""
    if getattr(args, "no_cache", False):
        return None
    return BoundStore(args.cache_dir)  # None root -> $REPRO_STORE / ~/.cache/repro


def _config_for(args: argparse.Namespace, spec_max_depth: int) -> AnalysisConfig:
    kwargs: dict = {
        "max_depth": args.max_depth if args.max_depth is not None else spec_max_depth,
        "instance": _parse_instance(args.instance),
        "validate_wavefront": not args.no_validate_wavefront,
        "wavefront_validation": args.wavefront_validation,
    }
    if args.gamma is not None:
        kwargs["gamma"] = args.gamma
    if args.strategies is not None:
        kwargs["strategies"] = tuple(args.strategies)
    if getattr(args, "jobs", None) is not None:
        kwargs["n_jobs"] = args.jobs  # 0 and negatives reach config validation
    if getattr(args, "executor", None) is not None:
        kwargs["executor"] = args.executor
    return AnalysisConfig(**kwargs)


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.kernel not in kernel_names():
        raise SystemExit(
            f"unknown kernel {args.kernel!r}; see `python -m repro kernels`"
        )
    spec = get_kernel(args.kernel)
    config = _config_for(args, spec.max_depth)
    result = Analyzer(config, store=_store_for(args)).analyze(spec.program)

    if args.json is not None:
        payload = json.dumps(result.to_dict(), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w") as stream:
                stream.write(payload)
            print(f"wrote {args.json}")
        return 0

    print(f"kernel           : {result.program_name}")
    print(f"parameters       : {', '.join(result.parameters)}")
    print(f"input size       : {result.input_size}")
    print(f"total flops      : {result.total_flops}")
    print(f"Q_low (complete) : {result.expression}")
    print(f"Q_low (leading)  : {result.asymptotic}")
    print(f"OI upper bound   : {result.oi_upper_bound()}")
    if args.verbose:
        print("derivation log:")
        for line in result.log:
            print(f"  * {line[:160]}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    names = args.kernels if args.kernels else kernel_names()
    unknown = sorted(set(names) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {unknown}; see `python -m repro kernels`")

    overrides: dict = {
        "instance": _parse_instance(args.instance),
        "validate_wavefront": not args.no_validate_wavefront,
        "wavefront_validation": args.wavefront_validation,
    }
    if args.max_depth is not None:
        overrides["max_depth"] = args.max_depth
    if args.gamma is not None:
        overrides["gamma"] = args.gamma
    if args.strategies is not None:
        overrides["strategies"] = tuple(args.strategies)

    store = _store_for(args)
    reset_derivation_count()

    # Rows stream in completion order: the scheduler fires each kernel's
    # combine as its last task lands, so early bounds print while later
    # kernels are still deriving.
    print(f"{'kernel':<16} {'Q_low (asymptotic)':<40} {'OI_up'}")
    print("-" * 72)
    analyses = {}
    for analysis in analyze_suite_stream(
        names, n_jobs=args.jobs, executor=args.executor, store=store, **overrides
    ):
        analyses[analysis.spec.name] = analysis
        result = analysis.result
        print(
            f"{result.program_name:<16} {sympy.sstr(result.asymptotic):<40} "
            f"{sympy.sstr(result.oi_upper_bound())}",
            flush=True,
        )

    derived = derivation_count()
    if store is not None:
        # Session counters only — stats() would scan the whole store on disk.
        print(f"derivations: {derived} (store hits: {store.hits}, root: {store.root})")
    else:
        print(f"derivations: {derived} (store disabled)")

    if args.json is not None:
        # The document is collected in *request* order (duplicates included,
        # matching the pre-streaming CLI shape), independent of the
        # completion order above — byte-identical across executors.
        results = [analyses[name].result for name in names]
        save_results(results, args.json)
        print(f"wrote {len(results)} results to {args.json}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import time

    from . import perf
    from .sets import memo as sets_memo
    from .sets.backend import get_backend
    from .sets.counting import count_backend

    names = args.kernels if args.kernels else kernel_names()
    unknown = sorted(set(names) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {unknown}; see `python -m repro kernels`")

    # A cold, serial, in-process run: no persistent store, no worker
    # processes (process-pool workers keep their own counters, which would
    # leave the attribution table empty — see repro.perf).
    perf.reset()
    sets_memo.clear_all()
    start = time.perf_counter()
    analyze_suite(names, store=None, executor="serial")
    wall = time.perf_counter() - start
    snapshot = perf.snapshot()
    backend = get_backend().name
    counting = count_backend()
    memo_state = "on" if sets_memo.memo_enabled() else "off"

    if args.json:
        payload = {
            "kernels": list(names),
            "wall_s": wall,
            "backend": backend,
            "count_backend": counting,
            "memo": sets_memo.memo_enabled(),
            **snapshot.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0

    header = (
        f"cold derivation of {len(names)} kernel(s) in {wall:.2f}s "
        f"(set backend: {backend}, count backend: {counting}, memo: {memo_state})"
    )
    table = snapshot.format_table(wall)
    print(header)
    print()
    print(table)
    if args.output is not None:
        with open(args.output, "w") as stream:
            stream.write(header + "\n\n" + table + "\n")
        print(f"\nwrote {args.output}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    names = args.kernels if args.kernels else kernel_names()
    unknown = sorted(set(names) - set(kernel_names()))
    if unknown:
        raise SystemExit(f"unknown kernels: {unknown}; see `python -m repro kernels`")

    store = _store_for(args)
    report = tightness_report(
        names,
        cache_words=args.cache_words,
        instance=_parse_instance(args.instance),
        store=store,
        executor=args.executor,
        n_jobs=args.jobs,
        max_candidates=args.max_candidates,
        target=args.instance_target,
    )

    if args.json:
        # Pure JSON on stdout: the document embeds the work counters
        # (derivations/simulations), so CI warm-rerun checks parse stdout only.
        print(json.dumps(report.to_dict(), indent=2))
        return 0

    print(report.format_table())
    print()
    summary = (
        f"cache words: {report.cache_words}; "
        f"derivations: {report.derivations}, simulations: {report.simulations}"
    )
    if store is not None:
        summary += f" (store hits: {store.hits}, root: {store.root})"
    print(summary)
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        # The machine-readable registry: what a `repro serve` client needs to
        # discover workloads (names for requests, parameters to instantiate,
        # paper reference data for display) without scraping text output.
        entries = [
            {
                "name": spec.name,
                "category": spec.category,
                "max_depth": spec.max_depth,
                "parameters": list(spec.program.params),
                "large_instance": dict(spec.large_instance),
                "paper_oi_upper": spec.paper_oi_upper,
                "paper_oi_manual": spec.paper_oi_manual,
                "paper_input_size": spec.paper_input_size,
                "paper_ops": spec.paper_ops,
                "notes": spec.notes,
            }
            for spec in all_kernels()
        ]
        print(json.dumps({"schema": 1, "kernels": entries}, indent=2))
        return 0
    for spec in all_kernels():
        print(f"{spec.name:<16} {spec.category:<14} max_depth={spec.max_depth}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import AnalysisService, ServiceServer

    with AnalysisService(
        store=_store_for(args), executor=args.executor, n_jobs=args.jobs
    ) as service:
        if args.port is None:
            try:
                service.serve_stream(sys.stdin, sys.stdout)
            except KeyboardInterrupt:
                pass
            return 0
        with ServiceServer((args.host, args.port), service) as server:
            host, port = server.server_address[:2]
            print(
                f"serving on {host}:{port} "
                "(JSON-lines, thread per connection; Ctrl-C to stop)",
                file=sys.stderr,
            )
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                # The `with` exits below: server_close() joins the
                # non-daemonic handler threads, so every in-flight request
                # finishes streaming before the pool is released.
                print("draining in-flight requests ...", file=sys.stderr)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import load_corpus_entry, replay_entry, run_campaign

    if getattr(args, "perf", False):
        from . import perf

        perf.reset()

    if args.replay is not None:
        entry = load_corpus_entry(args.replay)
        outcome = replay_entry(entry)
        if args.json:
            print(json.dumps({"replay": str(args.replay), **outcome.to_dict()}, indent=2))
        else:
            if not outcome.fingerprint_matches:
                print(
                    f"warning: regenerated program fingerprint {outcome.fingerprint} "
                    f"differs from the recorded {outcome.expected_fingerprint} "
                    "(generator drift: the entry may check a different program)",
                    file=sys.stderr,
                )
            state = "still reproduces" if outcome.reproduced else "no longer reproduces"
            print(f"{entry['oracle']} divergence of seed {entry['seed']} {state}")
            if outcome.reproduced:
                print(outcome.verdict.details)
        return 1 if outcome.reproduced else 0

    result = run_campaign(
        range(args.seed_start, args.seed_start + args.seeds),
        profile=args.profile,
        oracles=args.oracle or None,
        executor=args.executor,
        n_jobs=args.jobs or 1,
        time_budget=args.time_budget,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        log=None if args.json else print,
    )
    if args.json:
        payload = result.to_dict()
        if getattr(args, "perf", False):
            from . import perf

            payload["perf"] = perf.snapshot().to_dict()
        print(json.dumps(payload, indent=2))
    else:
        cases, failures = len(result.completed), len(result.failures)
        tail = " (stopped early: time budget)" if result.stopped_early else ""
        print(
            f"{cases}/{len(result.seeds)} cases [{result.profile.name}], "
            f"{result.checks} checks across {len(result.oracles)} oracles, "
            f"{failures} failures in {result.elapsed:.1f}s{tail}"
        )
        for failure in result.failures:
            where = f" -> {failure.corpus_path}" if failure.corpus_path else ""
            print(
                f"  FAIL seed {failure.seed} {failure.oracle}: "
                f"{failure.verdict.details}{where}"
            )
    if getattr(args, "perf", False) and not args.json:
        from . import perf

        # Process-pool workers keep their own counters; the table reflects
        # in-process work (serial or thread campaigns attribute everything).
        print("\nper-subsystem attribution (this process):")
        print(perf.snapshot().format_table())
    return 0 if result.ok else 1


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    stats = BoundStore(args.root).stats()
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2))
        return 0
    print(f"root        : {stats.root}")
    print(f"entries     : {stats.entries} (in {stats.shards} shards)")
    print(f"total bytes : {stats.total_bytes}")
    budget = "unbounded" if stats.size_budget is None else str(stats.size_budget)
    print(f"size budget : {budget}")
    for schema, count in sorted(stats.schema_versions.items()):
        label = "unreadable" if schema < 0 else f"schema {schema}"
        print(f"  {label:<11}: {count} entries")
    for kind, count in sorted(stats.kinds.items()):
        print(f"  kind {kind:<6}: {count} entries")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = BoundStore(args.root, size_budget=args.budget)
    if store.size_budget is None:
        raise SystemExit(
            "cache gc needs a size budget: pass --budget (e.g. --budget 64M) "
            "or set $REPRO_STORE_BUDGET"
        )
    evicted = store.gc()
    stats = store.stats()
    print(
        f"evicted {evicted} entries; {stats.entries} remain "
        f"({stats.total_bytes} bytes <= budget {store.size_budget})"
    )
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = BoundStore(args.root)
    removed = store.clear()
    print(f"removed {removed} entries from {store.root}")
    return 0


def _cmd_cache_export(args: argparse.Namespace) -> int:
    store = BoundStore(args.root)
    count = store.export_archive(args.archive)
    print(f"packed {count} entries from {store.root} into {args.archive}")
    return 0


def _cmd_cache_import(args: argparse.Namespace) -> int:
    store = BoundStore(args.root)
    try:
        imported, skipped = store.import_archive(args.archive)
    except (OSError, tarfile.ReadError) as error:
        raise SystemExit(f"cannot read archive {args.archive!r}: {error}")
    print(
        f"imported {imported} entries into {store.root} "
        f"({skipped} skipped: existing same-or-newer, or not store entries)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IOLB reproduction: derive parametric I/O lower bounds.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser("analyze", help="analyze one PolyBench kernel")
    analyze.add_argument("kernel", help="kernel name (see `python -m repro kernels`)")
    analyze.add_argument("--json", default=None, metavar="FILE",
                         help="write the result as JSON to FILE ('-' for stdout)")
    analyze.add_argument("--verbose", action="store_true", help="print the derivation log")
    _add_config_arguments(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    suite = commands.add_parser("suite", help="analyze many kernels, persist as JSON")
    suite.add_argument("--kernels", nargs="+", default=None, metavar="NAME",
                       help="kernel subset (default: the whole suite)")
    suite.add_argument("--json", default=None, metavar="FILE",
                       help="write all results as one JSON document")
    _add_config_arguments(suite)
    suite.set_defaults(handler=_cmd_suite)

    report = commands.add_parser(
        "report",
        help="tightness report: lower bound vs. best simulated upper bound",
    )
    report.add_argument(
        "kernels", nargs="*", metavar="KERNEL",
        help="kernels to report on (default: the whole suite)",
    )
    report.add_argument(
        "--cache-words", type=int, default=64, metavar="S",
        help="fast-memory capacity in words for both sides of the sandwich "
             "(default: 64)",
    )
    report.add_argument(
        "--instance", nargs="*", default=(), metavar="NAME=VALUE",
        help="simulation instance overrides (applied where the parameter exists)",
    )
    report.add_argument(
        "--instance-target", type=int, default=12, metavar="N",
        help="edge length LARGE instances are shrunk to before CDAG "
             "expansion (default: 12)",
    )
    report.add_argument(
        "--max-candidates", type=int, default=64, metavar="N",
        help="tile shapes per kernel in the powers-of-two search wave "
             "(default: 64)",
    )
    report.add_argument("--json", action="store_true",
                        help="emit the report as a JSON document on stdout")
    report.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="executor for derivations and simulations (default: serial; "
             "unset consults $REPRO_EXECUTOR)",
    )
    report.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel workers for the executor")
    report.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="bound store root (default: $REPRO_STORE or ~/.cache/repro)",
    )
    report.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent bound store for this run",
    )
    report.set_defaults(handler=_cmd_report)

    profile = commands.add_parser(
        "profile",
        help="cold in-process suite run with wall-time attribution by subsystem",
    )
    profile.add_argument(
        "--kernels", nargs="+", default=None, metavar="NAME",
        help="kernel subset (default: the whole suite)",
    )
    profile.add_argument("--json", action="store_true",
                         help="emit timings and memo counters as JSON on stdout")
    profile.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the attribution table to FILE",
    )
    profile.set_defaults(handler=_cmd_profile)

    kernels = commands.add_parser("kernels", help="list registered kernels")
    kernels.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable kernel registry (for service clients)",
    )
    kernels.set_defaults(handler=_cmd_kernels)

    serve = commands.add_parser(
        "serve",
        help="JSON-lines analysis service: requests in, streamed results out",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="listen on TCP PORT (default: serve stdin/stdout; 0 picks a free port)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address for --port (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="default task executor for requests that do not override it",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="default worker count for requests that do not override it",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="bound store root (default: $REPRO_STORE or ~/.cache/repro)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without the persistent bound store (every request derives)",
    )
    serve.set_defaults(handler=_cmd_serve)

    from .fuzz import PROFILES, oracle_names

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzzing: random affine programs vs soundness oracles",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=25, metavar="N",
        help="number of consecutive seeds to fuzz (default: 25)",
    )
    fuzz.add_argument(
        "--seed-start", type=int, default=0, metavar="K",
        help="first seed of the campaign (default: 0)",
    )
    fuzz.add_argument(
        "--profile", choices=sorted(PROFILES), default="small",
        help="generator size profile (default: small)",
    )
    fuzz.add_argument(
        "--oracle", action="append", choices=oracle_names(), metavar="NAME",
        help=f"oracle to run, repeatable (default: all of {', '.join(oracle_names())})",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None, metavar="S",
        help="stop scheduling new cases after S seconds (completed cases kept)",
    )
    fuzz.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write minimized failures as replayable JSON entries under DIR",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run one corpus entry: exit 1 while the divergence reproduces, "
             "0 once fixed",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="record failures without greedy statement/dependence/dimension "
             "deletion",
    )
    fuzz.add_argument(
        "--executor", choices=EXECUTOR_NAMES, default=None,
        help="campaign executor (default: serial; process parallelises across "
             "seeds)",
    )
    fuzz.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="parallel workers for the campaign executor")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the campaign (or replay) result as JSON on stdout")
    fuzz.add_argument(
        "--perf", action="store_true",
        help="print (or embed in --json) the per-subsystem wall-time "
             "attribution of the campaign",
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    cache = commands.add_parser("cache", help="maintain the persistent bound store")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    def _add_root_argument(subparser: argparse.ArgumentParser) -> None:
        # On each subparser (not the parent) so the natural spelling
        # `repro cache clear --root DIR` parses.
        subparser.add_argument(
            "--root", default=None, metavar="DIR",
            help="store root (default: $REPRO_STORE or ~/.cache/repro)",
        )

    cache_stats = cache_commands.add_parser("stats", help="show store usage statistics")
    _add_root_argument(cache_stats)
    cache_stats.add_argument("--json", action="store_true", help="emit JSON")
    cache_stats.set_defaults(handler=_cmd_cache_stats)

    cache_gc = cache_commands.add_parser(
        "gc", help="evict least-recently-used entries down to a size budget"
    )
    _add_root_argument(cache_gc)
    cache_gc.add_argument(
        "--budget", default=None, metavar="SIZE",
        help="size budget, e.g. 4096, 64M, 1G (default: $REPRO_STORE_BUDGET)",
    )
    cache_gc.set_defaults(handler=_cmd_cache_gc)

    cache_clear = cache_commands.add_parser("clear", help="remove every store entry")
    _add_root_argument(cache_clear)
    cache_clear.set_defaults(handler=_cmd_cache_clear)

    cache_export = cache_commands.add_parser(
        "export", help="pack every store entry into a tarball (replication)"
    )
    cache_export.add_argument("archive", metavar="TAR", help="archive path to write")
    _add_root_argument(cache_export)
    cache_export.set_defaults(handler=_cmd_cache_export)

    cache_import = cache_commands.add_parser(
        "import",
        help="unpack an exported tarball into the store "
             "(never overwrites same-or-newer entries)",
    )
    cache_import.add_argument("archive", metavar="TAR", help="archive path to read")
    _add_root_argument(cache_import)
    cache_import.set_defaults(handler=_cmd_cache_import)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro ... | head`): die quietly, and
        # point stdout at /dev/null so interpreter shutdown stays silent too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 120
    except (ValueError, KeyError, argparse.ArgumentTypeError) as error:
        # Configuration and lookup mistakes (bad gamma, unknown strategy,
        # malformed NAME=VALUE, ...) are user errors, not crashes: print the
        # message, not a traceback.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
