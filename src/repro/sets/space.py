"""Named spaces for parametric integer sets.

A :class:`Space` plays the role of an ISL space: it names the tuple (usually a
program statement, e.g. ``S3``), its dimensions (loop indices, e.g.
``("k", "i", "j")``) and the symbolic parameters in scope (problem sizes such
as ``N`` or the loop-parametrisation parameters ``Omega`` of Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Space:
    """Space of a parametric set: a named tuple of dimensions plus parameters."""

    tuple_name: str
    dims: tuple[str, ...]
    params: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"duplicate dimension names in {self.dims}")
        overlap = set(self.dims) & set(self.params)
        if overlap:
            raise ValueError(f"names used both as dimension and parameter: {overlap}")

    @property
    def dim(self) -> int:
        """Number of set dimensions."""
        return len(self.dims)

    def all_names(self) -> tuple[str, ...]:
        """Dimension names followed by parameter names."""
        return self.dims + self.params

    def with_params(self, extra: tuple[str, ...]) -> "Space":
        """Return a copy with additional parameters appended (ignoring duplicates)."""
        new_params = tuple(self.params) + tuple(p for p in extra if p not in self.params)
        return Space(self.tuple_name, self.dims, new_params)

    def rename_tuple(self, new_name: str) -> "Space":
        """Return a copy with a different tuple name (same dims and params)."""
        return Space(new_name, self.dims, self.params)

    def index_of(self, dim_name: str) -> int:
        """Position of a dimension name."""
        return self.dims.index(dim_name)

    def __str__(self) -> str:
        params = ", ".join(self.params)
        dims = ", ".join(self.dims)
        prefix = f"[{params}] -> " if params else ""
        return f"{prefix}{{ {self.tuple_name}[{dims}] }}"
