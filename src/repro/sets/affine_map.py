"""Affine functions between named spaces.

Flow-dependence edges of a DFG (Sec. 3.4 of the paper) relate each *sink*
instance to the unique *source* instance it reads.  We therefore represent an
edge relation by its inverse — an affine function from the sink space to the
source space — together with the sink sub-domain on which it applies.  This is
exactly the information needed to classify DFG-paths as broadcast paths or
chain circuits and to extract their projection kernels (Def. 5.1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..linalg import Subspace, to_fraction_matrix
from .affine import LinExpr
from .basic_set import BasicSet, Constraint, EQ
from .fourier_motzkin import eliminate_variables
from .pset import ParamSet
from .space import Space


class AffineFunction:
    """An affine map ``x in domain_space  |->  target_tuple[expr_1(x), ...]``."""

    __slots__ = ("domain_space", "target_tuple", "exprs")

    def __init__(self, domain_space: Space, target_tuple: str, exprs: Sequence[LinExpr]):
        self.domain_space = domain_space
        self.target_tuple = target_tuple
        self.exprs: tuple[LinExpr, ...] = tuple(exprs)
        for expr in self.exprs:
            unknown = expr.names() - set(domain_space.dims) - set(domain_space.params)
            if unknown:
                raise ValueError(f"expression uses unknown names {unknown}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, space: Space) -> "AffineFunction":
        return cls(space, space.tuple_name, [LinExpr.var(d) for d in space.dims])

    # -- basic queries -----------------------------------------------------

    @property
    def target_arity(self) -> int:
        return len(self.exprs)

    def linear_matrix(self) -> tuple[tuple[Fraction, ...], ...]:
        """Linear part of the map, as a (target_arity x domain_dim) matrix."""
        rows = []
        for expr in self.exprs:
            rows.append([expr.coeff(d) for d in self.domain_space.dims])
        return to_fraction_matrix(rows)

    def kernel(self) -> Subspace:
        """Kernel of the linear part, as a subspace of the domain space."""
        from ..linalg import nullspace

        basis = nullspace(self.linear_matrix())
        return Subspace(self.domain_space.dim, basis)

    def is_translation(self) -> bool:
        """True when the map sends x to x + delta within the same-arity space."""
        if self.target_arity != self.domain_space.dim:
            return False
        for i, expr in enumerate(self.exprs):
            for j, dim in enumerate(self.domain_space.dims):
                expected = Fraction(1) if i == j else Fraction(0)
                if expr.coeff(dim) != expected:
                    return False
            # Offsets must be numeric (parametric shifts are not chain circuits).
            if any(name in self.domain_space.params for name in expr.names()):
                offset_names = expr.names() - set(self.domain_space.dims)
                if offset_names:
                    return False
        return True

    def translation_vector(self) -> tuple[Fraction, ...]:
        """The offset delta of a translation map (raises if not a translation)."""
        if not self.is_translation():
            raise ValueError("not a translation map")
        return tuple(
            expr.const for expr in self.exprs
        )

    def is_identity(self) -> bool:
        return self.is_translation() and all(c == 0 for c in self.translation_vector())

    # -- application -------------------------------------------------------

    def apply_to_point(self, point: Sequence[int], params: Mapping[str, int]) -> tuple[int, ...]:
        values = dict(params)
        values.update(dict(zip(self.domain_space.dims, point)))
        image = []
        for expr in self.exprs:
            value = expr.evaluate(values)
            if value.denominator != 1:
                raise ValueError("non-integer image point")
            image.append(int(value))
        return tuple(image)

    def compose_after(self, inner: "AffineFunction") -> "AffineFunction":
        """Return ``self o inner`` (first apply ``inner``, then ``self``).

        ``inner`` maps X -> Y and ``self`` maps Y -> Z; the result maps X -> Z.
        The dimension names of ``self``'s domain are positionally bound to the
        component expressions of ``inner``.
        """
        if len(inner.exprs) != self.domain_space.dim:
            raise ValueError("arity mismatch in composition")
        mapping = dict(zip(self.domain_space.dims, inner.exprs))
        exprs = [expr.substitute(mapping) for expr in self.exprs]
        return AffineFunction(inner.domain_space, self.target_tuple, exprs)

    def preimage_constraints(self, target_set: BasicSet, target_dims: Sequence[str]) -> list[Constraint]:
        """Constraints (over the domain space) of the preimage of ``target_set``."""
        mapping = dict(zip(target_dims, self.exprs))
        return [c.substitute(mapping) for c in target_set.constraints]

    def image_of(self, domain: ParamSet, target_space: Space) -> ParamSet:
        """Image of a set under the function (rational over-approximation)."""
        if tuple(domain.space.dims) != tuple(self.domain_space.dims):
            raise ValueError("domain space mismatch in image computation")
        pieces = []
        for piece in domain.pieces:
            pieces.append(self._image_of_basic(piece, target_space))
        return ParamSet(target_space.with_params(domain.space.params), pieces)

    def _image_of_basic(self, piece: BasicSet, target_space: Space) -> BasicSet:
        # Rename domain dims to fresh names so they cannot collide with the
        # target dimension names (self-maps reuse the same names).
        fresh = {d: f"__src_{i}" for i, d in enumerate(self.domain_space.dims)}
        renamed_piece = piece.rename_dims(fresh)
        renamed_exprs = [
            expr.substitute({d: LinExpr.var(fresh[d]) for d in self.domain_space.dims})
            for expr in self.exprs
        ]
        constraints = list(renamed_piece.constraints)
        for target_dim, expr in zip(target_space.dims, renamed_exprs):
            constraints.append(Constraint(LinExpr.var(target_dim) - expr, EQ))
        eliminated = eliminate_variables(constraints, list(fresh.values()))
        space = target_space.with_params(piece.space.params)
        return BasicSet(space, eliminated)

    def __repr__(self) -> str:
        exprs = ", ".join(repr(e) for e in self.exprs)
        dims = ", ".join(self.domain_space.dims)
        return (
            f"{{ {self.domain_space.tuple_name}[{dims}] -> {self.target_tuple}[{exprs}] }}"
        )
