"""Parser for ISL-like set and map strings.

Supports the subset of ISL syntax used throughout the paper and the PolyBench
kernel descriptions, e.g.::

    [M, N] -> { S[t, i] : 0 <= t < M and 0 <= i < N }
    [N]    -> { S3[k, i, j] -> S3[k - 1, i, j] : 1 <= k < N and k + 1 <= i < N }

Expressions are integer affine combinations of dimensions and parameters
(``2*i``, ``i + 1``, ``-j``).  Comparison chains (``0 <= i < N``) expand into
the corresponding conjunction; conjuncts are joined with ``and``.
"""

from __future__ import annotations

import re
from fractions import Fraction

from .affine import LinExpr
from .affine_map import AffineFunction
from .basic_set import EQ, GE, BasicSet, Constraint
from .pset import ParamSet
from .space import Space

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<op><=|>=|==|<|>|=|\+|-|\*|,|:|;))"
)


class ParseError(ValueError):
    """Raised on malformed set/map strings."""


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character at {text[pos:pos + 10]!r}")
        tokens.append(match.group().strip())
        pos = match.end()
    return tokens


class _ExprParser:
    """Recursive-descent parser over a token list for affine expressions."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")

    def parse_expr(self) -> LinExpr:
        expr = self.parse_term()
        while self.peek() in ("+", "-"):
            op = self.next()
            term = self.parse_term()
            expr = expr + term if op == "+" else expr - term
        return expr

    def parse_term(self) -> LinExpr:
        sign = 1
        while self.peek() in ("+", "-"):
            if self.next() == "-":
                sign = -sign
        token = self.next()
        if token.isdigit():
            value = Fraction(int(token))
            if self.peek() == "*":
                self.next()
                name = self.next()
                if not name.isidentifier():
                    raise ParseError(f"expected identifier after '*', got {name!r}")
                return LinExpr({name: sign * value})
            return LinExpr.constant(sign * value)
        if token.isidentifier():
            if self.peek() == "*":
                self.next()
                num = self.next()
                if not num.isdigit():
                    raise ParseError(f"expected number after '*', got {num!r}")
                return LinExpr({token: sign * int(num)})
            return LinExpr({token: sign})
        raise ParseError(f"unexpected token {token!r} in expression")


def _parse_constraints(text: str) -> list[Constraint]:
    constraints: list[Constraint] = []
    conjuncts = re.split(r"\band\b", text)
    for conjunct in conjuncts:
        conjunct = conjunct.strip()
        if not conjunct:
            continue
        parser = _ExprParser(_tokenize(conjunct))
        exprs = [parser.parse_expr()]
        ops = []
        while parser.peek() in ("<=", "<", ">=", ">", "=", "=="):
            ops.append(parser.next())
            exprs.append(parser.parse_expr())
        if parser.peek() is not None:
            raise ParseError(f"trailing tokens in constraint {conjunct!r}")
        if not ops:
            raise ParseError(f"no comparison operator in constraint {conjunct!r}")
        for left, op, right in zip(exprs, ops, exprs[1:]):
            if op in ("=", "=="):
                constraints.append(Constraint(left - right, EQ))
            elif op == "<=":
                constraints.append(Constraint(right - left, GE))
            elif op == "<":
                constraints.append(Constraint(right - left - 1, GE))
            elif op == ">=":
                constraints.append(Constraint(left - right, GE))
            elif op == ">":
                constraints.append(Constraint(left - right - 1, GE))
    return constraints


def _split_header(text: str) -> tuple[tuple[str, ...], str]:
    """Split ``[params] -> { body }`` into parameter names and the body."""
    text = text.strip()
    params: tuple[str, ...] = ()
    if text.startswith("["):
        end = text.index("]")
        raw = text[1:end].strip()
        params = tuple(p.strip() for p in raw.split(",") if p.strip())
        text = text[end + 1:].strip()
        if not text.startswith("->"):
            raise ParseError("expected '->' after parameter list")
        text = text[2:].strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise ParseError("set/map body must be enclosed in braces")
    return params, text[1:-1].strip()


_TUPLE_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9]*)\s*\[([^\]]*)\]\s*")


def parse_set(text: str) -> ParamSet:
    """Parse an ISL-like set string into a :class:`ParamSet`."""
    params, body = _split_header(text)
    if ":" in body:
        tuple_part, constraint_part = body.split(":", 1)
    else:
        tuple_part, constraint_part = body, ""
    match = _TUPLE_RE.match(tuple_part)
    if not match:
        raise ParseError(f"malformed tuple in {tuple_part!r}")
    name = match.group(1)
    dims = tuple(d.strip() for d in match.group(2).split(",") if d.strip())
    space = Space(name, dims, params)
    constraints = _parse_constraints(constraint_part) if constraint_part.strip() else []
    return ParamSet.from_basic(BasicSet(space, constraints))


def parse_function(text: str) -> tuple[AffineFunction, ParamSet]:
    """Parse an ISL-like single-valued map string.

    The map must be in function form ``{ Sink[dims] -> Source[exprs] : cond }``
    where every ``expr`` is affine in the sink dims and parameters.  Returns
    the affine function (sink -> source) together with the sink-side domain on
    which the dependence applies.
    """
    params, body = _split_header(text)
    if ":" in body:
        relation_part, constraint_part = body.split(":", 1)
    else:
        relation_part, constraint_part = body, ""
    if "->" not in relation_part:
        raise ParseError("map body must contain '->'")
    sink_text, source_text = relation_part.split("->", 1)

    sink_match = _TUPLE_RE.match(sink_text)
    if not sink_match:
        raise ParseError(f"malformed sink tuple in {sink_text!r}")
    sink_name = sink_match.group(1)
    sink_dims = tuple(d.strip() for d in sink_match.group(2).split(",") if d.strip())
    sink_space = Space(sink_name, sink_dims, params)

    source_match = _TUPLE_RE.match(source_text)
    if not source_match:
        raise ParseError(f"malformed source tuple in {source_text!r}")
    source_name = source_match.group(1)
    raw_exprs = _split_top_level_commas(source_match.group(2))
    exprs = []
    for raw in raw_exprs:
        parser = _ExprParser(_tokenize(raw))
        exprs.append(parser.parse_expr())
        if parser.peek() is not None:
            raise ParseError(f"trailing tokens in expression {raw!r}")

    constraints = _parse_constraints(constraint_part) if constraint_part.strip() else []
    domain = ParamSet.from_basic(BasicSet(sink_space, constraints))
    function = AffineFunction(sink_space, source_name, exprs)
    return function, domain


def _split_top_level_commas(text: str) -> list[str]:
    parts = [p.strip() for p in text.split(",")]
    return [p for p in parts if p]
