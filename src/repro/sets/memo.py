"""Content-hash memoisation for the set-algebra hot path.

The same trick as the persistent ``BoundStore``, applied in-process: results
of pure, deterministic queries (emptiness, projection, simplification,
rational linear algebra) are cached under a key derived from the *content*
of their inputs, so structurally-equal sets reached through different
derivation paths share one computation.

Discipline for memo keys (see DESIGN.md "Set-algebra backends"):

* keys must capture **everything** the result depends on — for
  ``basic_set_is_empty`` that is the set fingerprint *and* the canonical
  keys of the context constraints;
* cached values must be immutable (tuples, frozen objects, ``bool``) so a
  shared result can never be mutated by one caller under another;
* never cache a result that depends on wall-clock or resource budgets
  (``subspace_closure`` timeouts are *not* cached — only converged runs).

Every cache is process-wide and lock-guarded, keeps hit/miss counters, and
registers itself with :mod:`repro.perf` so ``python -m repro profile``
reports hit rates.  Set ``REPRO_SETS_MEMO=0`` (or ``off``/``false``) to
disable all caches — used by benchmarks to measure the cold pure path.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Hashable, TypeVar

from .. import perf

_T = TypeVar("_T")

MEMO_ENV = "REPRO_SETS_MEMO"

_DISABLED_VALUES = {"0", "off", "false", "no"}


def _read_enabled() -> bool:
    return os.environ.get(MEMO_ENV, "1").strip().lower() not in _DISABLED_VALUES


_enabled = _read_enabled()


def memo_enabled() -> bool:
    """Whether the in-process memo caches are active (``REPRO_SETS_MEMO``)."""
    return _enabled


def refresh_enabled() -> bool:
    """Re-read ``REPRO_SETS_MEMO`` (tests flip the env var mid-process)."""
    global _enabled
    _enabled = _read_enabled()
    return _enabled


class MemoCache:
    """A lock-guarded dict cache with hit/miss counters and a size cap.

    On overflow the cache is simply cleared: the workloads here are
    derivation-shaped (many repeats within one derivation, little value in
    LRU bookkeeping), so a crude epoch flush keeps the fast path to a single
    dict lookup.
    """

    __slots__ = ("name", "maxsize", "_data", "_lock", "hits", "misses")

    def __init__(self, name: str, maxsize: int = 65536):
        self.name = name
        self.maxsize = maxsize
        self._data: dict = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        perf.register_cache(name, self)

    def __len__(self) -> int:
        return len(self._data)

    def get_or_compute(self, key: Hashable, compute: Callable[[], _T]) -> _T:
        if not _enabled:
            return compute()
        sentinel = _MISSING
        with self._lock:
            value = self._data.get(key, sentinel)
            if value is not sentinel:
                self.hits += 1
                return value
            self.misses += 1
        value = compute()
        with self._lock:
            if len(self._data) >= self.maxsize:
                self._data.clear()
            self._data[key] = value
        return value

    def put(self, key: Hashable, value: _T) -> _T:
        """Store without counting a miss (for caches filled conditionally)."""
        if not _enabled:
            return value
        with self._lock:
            if len(self._data) >= self.maxsize:
                self._data.clear()
            self._data[key] = value
        return value

    def lookup(self, key: Hashable):
        """Return the cached value or ``_MISSING``; counts a hit or miss."""
        if not _enabled:
            return _MISSING
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()

MISSING = _MISSING

# -- shared caches for the set layer ----------------------------------------

#: ``basic_set_is_empty`` results: (set fingerprint, context keys) -> bool
EMPTINESS_CACHE = MemoCache("sets.is_empty")

#: ``is_rationally_empty`` results: (constraint keys, variables) -> bool
RATIONAL_EMPTINESS_CACHE = MemoCache("sets.rational_empty")

#: ``project_out`` results: (set fingerprint, dims) -> BasicSet
PROJECTION_CACHE = MemoCache("sets.project_out")

#: ``BasicSet.simplify`` results: fingerprint -> BasicSet
SIMPLIFY_CACHE = MemoCache("sets.simplify")

#: ``card_basic`` closed forms: (set fingerprint, count backend) -> sympy.Expr
CARD_CACHE = MemoCache("counting.card_basic")


def clear_all() -> None:
    """Drop every registered set/linalg cache (tests and CLI)."""
    for cache in _ALL_CACHES:
        cache.clear()
        cache.reset_counters()


_ALL_CACHES: list[MemoCache] = [
    EMPTINESS_CACHE,
    RATIONAL_EMPTINESS_CACHE,
    PROJECTION_CACHE,
    SIMPLIFY_CACHE,
    CARD_CACHE,
]


def register(cache: MemoCache) -> MemoCache:
    """Track an externally created cache so :func:`clear_all` reaches it."""
    _ALL_CACHES.append(cache)
    return cache
