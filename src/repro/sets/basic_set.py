"""Basic sets: conjunctions of affine constraints over a named space.

A :class:`BasicSet` is the analogue of an ISL ``basic_set``: the set of
integer points of a parametric polyhedron, described by equalities and
inequalities over the space's dimensions and parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from .affine import LinExpr
from .space import Space

EQ = "eq"   # expr == 0
GE = "ge"   # expr >= 0


@dataclass(frozen=True)
class Constraint:
    """A single affine constraint: ``expr == 0`` (EQ) or ``expr >= 0`` (GE)."""

    expr: LinExpr
    kind: str = GE

    def __post_init__(self) -> None:
        if self.kind not in (EQ, GE):
            raise ValueError(f"unknown constraint kind {self.kind!r}")

    def normalized(self) -> "Constraint":
        """Scale coefficients to coprime integers (direction preserved)."""
        return Constraint(self.expr.scaled_to_integers(), self.kind)

    def is_trivially_true(self) -> bool:
        expr = self.expr
        if not expr.is_constant():
            return False
        return expr.const == 0 if self.kind == EQ else expr.const >= 0

    def is_trivially_false(self) -> bool:
        expr = self.expr
        if not expr.is_constant():
            return False
        return expr.const != 0 if self.kind == EQ else expr.const < 0

    def substitute(self, mapping: Mapping[str, LinExpr | int]) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.kind)

    def satisfied_by(self, values: Mapping[str, object]) -> bool:
        value = self.expr.evaluate(values)
        return value == 0 if self.kind == EQ else value >= 0

    def __repr__(self) -> str:
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr!r} {op} 0"


class BasicSet:
    """Integer points of a parametric polyhedron over a named space."""

    __slots__ = ("space", "constraints")

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()):
        self.space = space
        normalized = []
        seen = set()
        for constraint in constraints:
            constraint = constraint.normalized()
            if constraint.is_trivially_true():
                continue
            key = (constraint.kind, tuple(sorted(constraint.expr.coeffs.items())), constraint.expr.const)
            if key in seen:
                continue
            seen.add(key)
            normalized.append(constraint)
        self.constraints: tuple[Constraint, ...] = tuple(normalized)

    # -- constructors ------------------------------------------------------

    @classmethod
    def universe(cls, space: Space) -> "BasicSet":
        """The unconstrained set over ``space``."""
        return cls(space, ())

    @classmethod
    def from_bounds(
        cls,
        space: Space,
        bounds: Mapping[str, tuple[LinExpr | int, LinExpr | int]],
    ) -> "BasicSet":
        """Convenience constructor: ``bounds[d] = (lo, hi)`` meaning ``lo <= d <= hi``."""
        constraints = []
        for dim, (lo, hi) in bounds.items():
            dim_expr = LinExpr.var(dim)
            constraints.append(Constraint(dim_expr - lo, GE))
            constraints.append(Constraint(_as_lin(hi) - dim_expr, GE))
        return cls(space, constraints)

    # -- queries -----------------------------------------------------------

    def has_trivially_false_constraint(self) -> bool:
        return any(c.is_trivially_false() for c in self.constraints)

    def equalities(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind == EQ]

    def inequalities(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind == GE]

    def contains_point(self, point: Sequence[int], params: Mapping[str, int]) -> bool:
        """Membership test for a concrete point under concrete parameter values."""
        values = dict(params)
        values.update(dict(zip(self.space.dims, point)))
        return all(c.satisfied_by(values) for c in self.constraints)

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "BasicSet") -> "BasicSet":
        """Intersection of two basic sets over the same dimensions."""
        if self.space.dims != other.space.dims:
            raise ValueError("intersection of sets with different dimensions")
        space = self.space.with_params(other.space.params)
        return BasicSet(space, self.constraints + other.constraints)

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, self.constraints + tuple(constraints))

    def substitute(self, mapping: Mapping[str, LinExpr | int]) -> "BasicSet":
        """Apply a substitution to every constraint (space is unchanged)."""
        return BasicSet(self.space, tuple(c.substitute(mapping) for c in self.constraints))

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        """Rename dimensions, keeping constraints consistent."""
        new_dims = tuple(mapping.get(d, d) for d in self.space.dims)
        space = Space(self.space.tuple_name, new_dims, self.space.params)
        subst = {old: LinExpr.var(new) for old, new in mapping.items()}
        return BasicSet(space, tuple(c.substitute(subst) for c in self.constraints))

    def with_tuple_name(self, name: str) -> "BasicSet":
        return BasicSet(self.space.rename_tuple(name), self.constraints)

    def fix_dim(self, dim_name: str, value: LinExpr | int) -> "BasicSet":
        """Add the equality ``dim == value`` (used for loop parametrisation)."""
        expr = LinExpr.var(dim_name) - _as_lin(value)
        extra_params = tuple(
            n for n in _as_lin(value).names() if n not in self.space.dims and n not in self.space.params
        )
        space = self.space.with_params(extra_params)
        return BasicSet(space, self.constraints + (Constraint(expr, EQ),))

    # -- enumeration (for concrete parameter values) -------------------------

    def enumerate_points(self, params: Mapping[str, int], bound: int = 2000) -> list[tuple[int, ...]]:
        """Enumerate all integer points for concrete parameter values.

        Intended for small instances (tests, CDAG expansion).  Dimensions are
        assigned recursively; the bounds of each dimension are recomputed from
        all constraints whose *other* dimensions are already fixed, which keeps
        the search tight even when bounds couple several dimensions.  The
        ``bound`` argument caps any dimension that remains unbounded.
        """
        dims = self.space.dims
        points: list[tuple[int, ...]] = []

        # Choose an assignment order in which each dimension is bounded by
        # previously assigned dimensions and parameters whenever possible.
        order = self._enumeration_order()

        def recurse(assigned: dict[str, int]) -> None:
            if len(assigned) == len(dims):
                point = tuple(assigned[d] for d in dims)
                if self.contains_point(point, params):
                    points.append(point)
                return
            dim = order[len(assigned)]
            lo, hi = -bound, bound
            values = dict(params)
            values.update(assigned)
            for constraint in self.constraints:
                coeff = constraint.expr.coeff(dim)
                if coeff == 0:
                    continue
                others = constraint.expr.names() - {dim} - set(values)
                if others & set(dims):
                    continue
                rest = LinExpr(
                    {n: c for n, c in constraint.expr.coeffs.items() if n != dim},
                    constraint.expr.const,
                ).evaluate(values)
                boundary = Fraction(-rest, coeff)
                if constraint.kind == EQ:
                    lo = max(lo, _ceil(boundary))
                    hi = min(hi, _floor(boundary))
                elif coeff > 0:
                    lo = max(lo, _ceil(boundary))
                else:
                    hi = min(hi, _floor(boundary))
            for value in range(lo, hi + 1):
                assigned[dim] = value
                recurse(assigned)
            assigned.pop(dim, None)

        recurse({})
        return points

    def _enumeration_order(self) -> list[str]:
        """Order dimensions so each is bounded by already-chosen ones if possible."""
        remaining = list(self.space.dims)
        order: list[str] = []
        while remaining:
            best = None
            for dim in remaining:
                has_lower = False
                has_upper = False
                for constraint in self.constraints:
                    coeff = constraint.expr.coeff(dim)
                    if coeff == 0:
                        continue
                    other_dims = (constraint.expr.names() - {dim}) & set(remaining)
                    if other_dims:
                        continue
                    if constraint.kind == EQ:
                        has_lower = has_upper = True
                    elif coeff > 0:
                        has_lower = True
                    else:
                        has_upper = True
                if has_lower and has_upper:
                    best = dim
                    break
            if best is None:
                best = remaining[0]
            order.append(best)
            remaining.remove(best)
        return order

    def __repr__(self) -> str:
        constraints = " and ".join(repr(c) for c in self.constraints) or "true"
        return f"{{ {self.space.tuple_name}[{', '.join(self.space.dims)}] : {constraints} }}"


def _as_lin(value: LinExpr | int) -> LinExpr:
    return value if isinstance(value, LinExpr) else LinExpr.constant(value)


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator
