"""Basic sets: conjunctions of affine constraints over a named space.

A :class:`BasicSet` is the analogue of an ISL ``basic_set``: the set of
integer points of a parametric polyhedron, described by equalities and
inequalities over the space's dimensions and parameters.

Constraints are immutable, and the hot path (Fourier-Motzkin elimination,
emptiness, counting) re-canonicalises the same constraint objects over and
over — so canonicalisation is computed once and cached on the frozen
object, and canonical constraints are *interned*: structurally equal
constraints share one object, which makes repeated normalisation free and
gives structurally equal sets identical content fingerprints.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from hashlib import blake2b
from typing import Iterable, Mapping, Sequence

from .. import perf
from .affine import LinExpr
from .memo import memo_enabled as _memo_enabled_fn
from .space import Space

EQ = "eq"   # expr == 0
GE = "ge"   # expr >= 0

# Interning table for canonical constraints: canonical key -> Constraint.
_intern_lock = threading.Lock()
_intern_table: dict = {}
_INTERN_MAX = 1 << 17


def _memo_enabled() -> bool:
    return _memo_enabled_fn()


@dataclass(frozen=True)
class Constraint:
    """A single affine constraint: ``expr == 0`` (EQ) or ``expr >= 0`` (GE)."""

    expr: LinExpr
    kind: str = GE

    def __post_init__(self) -> None:
        if self.kind not in (EQ, GE):
            raise ValueError(f"unknown constraint kind {self.kind!r}")

    def key(self) -> tuple:
        """Canonical content key: ``(kind, sorted coeffs, const)``.

        Computed once and cached on the frozen object; used for dedup,
        interning and memo keys.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = (self.kind, tuple(sorted(self.expr.coeffs.items())), self.expr.const)
            if _memo_enabled():
                object.__setattr__(self, "_key", cached)
        return cached

    def normalized(self) -> "Constraint":
        """Scale coefficients to coprime integers (direction preserved).

        The result is cached on the object and interned so structurally
        equal canonical constraints are one shared object.  With
        ``REPRO_SETS_MEMO=0`` caching and interning are bypassed (the
        benchmark's faithful pre-memoisation reference path).
        """
        cached = self.__dict__.get("_normalized")
        if cached is not None:
            return cached
        if not _memo_enabled():
            return Constraint(self.expr.scaled_to_integers(), self.kind)
        scaled = self.expr.scaled_to_integers()
        normalized = self if scaled is self.expr else Constraint(scaled, self.kind)
        normalized = _intern(normalized)
        object.__setattr__(self, "_normalized", normalized)
        return normalized

    def is_trivially_true(self) -> bool:
        expr = self.expr
        if not expr.is_constant():
            return False
        return expr.const == 0 if self.kind == EQ else expr.const >= 0

    def is_trivially_false(self) -> bool:
        expr = self.expr
        if not expr.is_constant():
            return False
        return expr.const != 0 if self.kind == EQ else expr.const < 0

    def substitute(self, mapping: Mapping[str, LinExpr | int]) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.kind)

    def satisfied_by(self, values: Mapping[str, object]) -> bool:
        value = self.expr.evaluate(values)
        return value == 0 if self.kind == EQ else value >= 0

    def __repr__(self) -> str:
        op = "=" if self.kind == EQ else ">="
        return f"{self.expr!r} {op} 0"


def _intern(constraint: Constraint) -> Constraint:
    """Return the one shared instance of a canonical constraint."""
    key = constraint.key()
    with _intern_lock:
        existing = _intern_table.get(key)
        if existing is not None:
            return existing
        if len(_intern_table) >= _INTERN_MAX:
            _intern_table.clear()
        # A canonical constraint is its own normal form.
        if "_normalized" not in constraint.__dict__:
            object.__setattr__(constraint, "_normalized", constraint)
        _intern_table[key] = constraint
        return constraint


def interned_count() -> int:
    """Number of canonical constraints currently interned (diagnostics)."""
    with _intern_lock:
        return len(_intern_table)


class BasicSet:
    """Integer points of a parametric polyhedron over a named space."""

    __slots__ = ("space", "constraints", "_fingerprint")

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()):
        self.space = space
        normalized = []
        seen = set()
        for constraint in constraints:
            constraint = constraint.normalized()
            if constraint.is_trivially_true():
                continue
            key = constraint.key()
            if key in seen:
                continue
            seen.add(key)
            normalized.append(constraint)
        self.constraints: tuple[Constraint, ...] = tuple(normalized)
        self._fingerprint: str | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def universe(cls, space: Space) -> "BasicSet":
        """The unconstrained set over ``space``."""
        return cls(space, ())

    @classmethod
    def from_bounds(
        cls,
        space: Space,
        bounds: Mapping[str, tuple[LinExpr | int, LinExpr | int]],
    ) -> "BasicSet":
        """Convenience constructor: ``bounds[d] = (lo, hi)`` meaning ``lo <= d <= hi``."""
        constraints = []
        for dim, (lo, hi) in bounds.items():
            dim_expr = LinExpr.var(dim)
            constraints.append(Constraint(dim_expr - lo, GE))
            constraints.append(Constraint(_as_lin(hi) - dim_expr, GE))
        return cls(space, constraints)

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the canonical form (space + constraints).

        Structurally equal sets — same space, same canonical constraints in
        the same order — share a fingerprint regardless of how they were
        built.  This is the memo key used by the emptiness / projection /
        simplification caches.
        """
        cached = self._fingerprint
        if cached is None:
            digest = blake2b(digest_size=16)
            space = self.space
            digest.update(repr((space.tuple_name, space.dims, space.params)).encode())
            for constraint in self.constraints:
                digest.update(repr(constraint.key()).encode())
            cached = self._fingerprint = digest.hexdigest()
        return cached

    # -- queries -----------------------------------------------------------

    def has_trivially_false_constraint(self) -> bool:
        return any(c.is_trivially_false() for c in self.constraints)

    def equalities(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind == EQ]

    def inequalities(self) -> list[Constraint]:
        return [c for c in self.constraints if c.kind == GE]

    def contains_point(self, point: Sequence[int], params: Mapping[str, int]) -> bool:
        """Membership test for a concrete point under concrete parameter values."""
        values = dict(params)
        values.update(dict(zip(self.space.dims, point)))
        return all(c.satisfied_by(values) for c in self.constraints)

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "BasicSet") -> "BasicSet":
        """Intersection of two basic sets over the same dimensions."""
        if self.space.dims != other.space.dims:
            raise ValueError("intersection of sets with different dimensions")
        space = self.space.with_params(other.space.params)
        return BasicSet(space, self.constraints + other.constraints)

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, self.constraints + tuple(constraints))

    def substitute(self, mapping: Mapping[str, LinExpr | int]) -> "BasicSet":
        """Apply a substitution to every constraint (space is unchanged)."""
        return BasicSet(self.space, tuple(c.substitute(mapping) for c in self.constraints))

    def rename_dims(self, mapping: Mapping[str, str]) -> "BasicSet":
        """Rename dimensions, keeping constraints consistent."""
        new_dims = tuple(mapping.get(d, d) for d in self.space.dims)
        space = Space(self.space.tuple_name, new_dims, self.space.params)
        subst = {old: LinExpr.var(new) for old, new in mapping.items()}
        return BasicSet(space, tuple(c.substitute(subst) for c in self.constraints))

    def with_tuple_name(self, name: str) -> "BasicSet":
        return BasicSet(self.space.rename_tuple(name), self.constraints)

    def fix_dim(self, dim_name: str, value: LinExpr | int) -> "BasicSet":
        """Add the equality ``dim == value`` (used for loop parametrisation)."""
        expr = LinExpr.var(dim_name) - _as_lin(value)
        extra_params = tuple(
            n for n in _as_lin(value).names() if n not in self.space.dims and n not in self.space.params
        )
        space = self.space.with_params(extra_params)
        return BasicSet(space, self.constraints + (Constraint(expr, EQ),))

    def simplify(self) -> "BasicSet":
        """Drop syntactically redundant constraints (memoised).

        Removes GE constraints dominated by another GE with the same
        coefficient vector (only the tightest constant survives) and GE
        constraints implied by an equality over the same coefficients.
        This is purely syntactic — the represented set is unchanged.
        """
        from . import memo

        return memo.SIMPLIFY_CACHE.get_or_compute(
            ("simplify", self.fingerprint()), self._simplify_uncached
        )

    def _simplify_uncached(self) -> "BasicSet":
        equality_coeffs = {
            tuple(sorted(c.expr.coeffs.items())) for c in self.constraints if c.kind == EQ
        }
        tightest: dict[tuple, Fraction] = {}
        for constraint in self.constraints:
            if constraint.kind != GE:
                continue
            coeffs = tuple(sorted(constraint.expr.coeffs.items()))
            const = constraint.expr.const
            best = tightest.get(coeffs)
            if best is None or const < best:
                tightest[coeffs] = const
        kept = []
        for constraint in self.constraints:
            if constraint.kind == GE:
                coeffs = tuple(sorted(constraint.expr.coeffs.items()))
                if constraint.expr.const != tightest.get(coeffs):
                    continue
                if coeffs in equality_coeffs and not constraint.is_trivially_false():
                    # c.x + d >= 0 with c.x + e == 0 present: implied iff d >= e
                    # in general; only drop the exact-match redundancy (d such
                    # that the equality forces it), keeping the conservative
                    # syntactic rule: same coeffs as an equality -> implied
                    # when substituting the equality makes it constant >= 0.
                    eq_const = next(
                        c.expr.const
                        for c in self.constraints
                        if c.kind == EQ and tuple(sorted(c.expr.coeffs.items())) == coeffs
                    )
                    if constraint.expr.const - eq_const >= 0:
                        continue
            kept.append(constraint)
        if len(kept) == len(self.constraints):
            return self
        return BasicSet(self.space, kept)

    # -- enumeration (for concrete parameter values) -------------------------

    @perf.timed("sets")
    def enumerate_points(self, params: Mapping[str, int], bound: int = 2000) -> list[tuple[int, ...]]:
        """Enumerate all integer points for concrete parameter values.

        Intended for small instances (tests, CDAG expansion).  Dimensions are
        assigned recursively; the bounds of each dimension are recomputed from
        all constraints whose *other* dimensions are already fixed, which keeps
        the search tight even when bounds couple several dimensions.  The
        ``bound`` argument caps any dimension that remains unbounded.

        The active set backend (``REPRO_SETS_BACKEND``) may vectorise the
        enumeration; every backend produces the identical point sequence
        (ascending lexicographic in the internal assignment order).
        """
        from .backend import get_backend

        points = get_backend().enumerate_points(self, params, bound)
        if points is not None:
            return points
        return self.enumerate_points_pure(params, bound)

    def enumerate_points_pure(
        self, params: Mapping[str, int], bound: int = 2000
    ) -> list[tuple[int, ...]]:
        """Reference pure-Python enumeration (always available)."""
        dims = self.space.dims
        points: list[tuple[int, ...]] = []

        # Choose an assignment order in which each dimension is bounded by
        # previously assigned dimensions and parameters whenever possible.
        order = self._enumeration_order()

        def recurse(assigned: dict[str, int]) -> None:
            if len(assigned) == len(dims):
                point = tuple(assigned[d] for d in dims)
                if self.contains_point(point, params):
                    points.append(point)
                return
            dim = order[len(assigned)]
            lo, hi = -bound, bound
            values = dict(params)
            values.update(assigned)
            for constraint in self.constraints:
                coeff = constraint.expr.coeff(dim)
                if coeff == 0:
                    continue
                others = constraint.expr.names() - {dim} - set(values)
                if others & set(dims):
                    continue
                rest = LinExpr(
                    {n: c for n, c in constraint.expr.coeffs.items() if n != dim},
                    constraint.expr.const,
                ).evaluate(values)
                boundary = Fraction(-rest, coeff)
                if constraint.kind == EQ:
                    lo = max(lo, _ceil(boundary))
                    hi = min(hi, _floor(boundary))
                elif coeff > 0:
                    lo = max(lo, _ceil(boundary))
                else:
                    hi = min(hi, _floor(boundary))
            for value in range(lo, hi + 1):
                assigned[dim] = value
                recurse(assigned)
            assigned.pop(dim, None)

        recurse({})
        return points

    def _enumeration_order(self) -> list[str]:
        """Order dimensions so each is bounded by already-chosen ones if possible."""
        remaining = list(self.space.dims)
        order: list[str] = []
        while remaining:
            best = None
            for dim in remaining:
                has_lower = False
                has_upper = False
                for constraint in self.constraints:
                    coeff = constraint.expr.coeff(dim)
                    if coeff == 0:
                        continue
                    other_dims = (constraint.expr.names() - {dim}) & set(remaining)
                    if other_dims:
                        continue
                    if constraint.kind == EQ:
                        has_lower = has_upper = True
                    elif coeff > 0:
                        has_lower = True
                    else:
                        has_upper = True
                if has_lower and has_upper:
                    best = dim
                    break
            if best is None:
                best = remaining[0]
            order.append(best)
            remaining.remove(best)
        return order

    def __repr__(self) -> str:
        constraints = " and ".join(repr(c) for c in self.constraints) or "true"
        return f"{{ {self.space.tuple_name}[{', '.join(self.space.dims)}] : {constraints} }}"


def _as_lin(value: LinExpr | int) -> LinExpr:
    return value if isinstance(value, LinExpr) else LinExpr.constant(value)


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator
