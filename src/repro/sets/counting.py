"""Symbolic cardinality of parametric sets (the barvinok substitute).

``card`` computes ``|D|`` as a sympy expression in the program parameters by
eliminating dimensions innermost-first and summing polynomial weights over
affine bounds (Faulhaber's formulas).

The result is exact whenever every dimension has unit-coefficient lower and
upper bounds — which is the case for every PolyBench iteration domain and for
all the sets produced along the IOLB derivation — *and* the parameters are in
the "large" regime where all loop ranges are non-empty (the same assumption
the paper makes when reporting its formulas; the final bound is guarded by a
``max(0, .)``).  Non-unit coefficients raise :class:`CountingError`, which the
callers translate into a safely degraded (weaker) bound.

Count backends
--------------

Two interchangeable engines carry the polynomial weight through the
recursion (``REPRO_COUNT_BACKEND``, default ``native``):

* ``native`` — :class:`repro.sets.poly.Poly`: exact ``Fraction`` monomial
  dicts with the precomputed Faulhaber tables doing each per-dimension sum
  in closed form.  Any weight or bound shape the native engine cannot
  express *declines* to the sympy loop for that set instead of guessing.
* ``sympy`` — the reference path: ``sympy.summation``/``sympy.expand`` at
  every recursion step, byte-for-byte the historical implementation.

Both return sympy expressions from :func:`card` / :func:`card_basic` /
:func:`card_upper`, and both must produce *identical* expressions — CI
compares golden bounds across the two, the fuzzing ``counting`` oracle
asserts agreement per random program, and ``benchmarks/bench_counting.py``
asserts byte-identical suite bounds plus the counting-subsystem speedup.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Sequence

import sympy

from .affine import LinExpr
from .basic_set import EQ, GE, BasicSet, Constraint
from .. import perf
from . import memo
from .fourier_motzkin import is_rationally_empty
from .poly import Poly, PolyConversionError, sym
from .pset import ParamSet

MAX_SPLIT_DEPTH = 8
MAX_UNION_PIECES_EXACT = 6

#: Environment variable forcing a count backend (``native`` or ``sympy``).
COUNT_BACKEND_ENV = "REPRO_COUNT_BACKEND"

#: Recognised count backends, in preference order (auto-selection = native).
COUNT_BACKENDS = ("native", "sympy")


class CountingError(Exception):
    """Raised when the cardinality cannot be computed exactly."""


def count_backend(name: str | None = None) -> str:
    """Resolve the count backend: explicit name, else env, else ``native``."""
    if name is None:
        name = os.environ.get(COUNT_BACKEND_ENV) or None
    if name is None:
        return "native"
    if name not in COUNT_BACKENDS:
        raise KeyError(
            f"unknown count backend {name!r} (expected 'native' or 'sympy')"
        )
    return name


def lin_to_sympy(expr: LinExpr) -> sympy.Expr:
    """Convert a :class:`LinExpr` to sympy using the shared symbol table."""
    result: sympy.Expr = sympy.Rational(expr.const.numerator, expr.const.denominator)
    for name, coeff in expr.coeffs.items():
        result += sympy.Rational(coeff.numerator, coeff.denominator) * sym(name)
    return result


class _SympyWeightEngine:
    """The reference weight algebra: sympy expressions end to end.

    Preserves the historical evaluation order exactly — ``sympy.summation``
    then ``sympy.expand`` per eliminated dimension, ``expand`` on every
    branch combination — so forcing ``REPRO_COUNT_BACKEND=sympy`` restores
    the pre-native implementation byte for byte.
    """

    name = "sympy"
    zero = sympy.Integer(0)
    one = sympy.Integer(1)

    def sum_over(self, weight, dim: str, lower: LinExpr, upper: LinExpr):
        x = sym(dim)
        with perf.section("counting-sum"):
            total = sympy.summation(
                weight, (x, lin_to_sympy(lower), lin_to_sympy(upper))
            )
            return sympy.expand(total)

    def combine(self, first, second):
        return sympy.expand(first + second)

    def finalize(self, weight) -> sympy.Expr:
        return weight


class _NativeWeightEngine:
    """The closed-form weight algebra: :class:`Poly` end to end.

    The canonical dict-of-monomials form needs no ``expand`` between steps;
    each per-dimension sum is a Faulhaber table lookup plus exact
    ``Fraction`` dict merges.  Conversion to sympy happens once, at
    :meth:`finalize` — the callers' final ``sympy.expand`` canonicalises the
    converted polynomial into exactly the expression the sympy engine
    produces.
    """

    name = "native"
    zero = Poly.zero()
    one = Poly.one()

    def sum_over(self, weight: Poly, dim: str, lower: LinExpr, upper: LinExpr):
        with perf.section("counting-sum"):
            return weight.sum_over(dim, lower, upper)

    def combine(self, first: Poly, second: Poly) -> Poly:
        return first + second

    def finalize(self, weight: Poly) -> sympy.Expr:
        return weight.to_sympy()


_ENGINES = {"sympy": _SympyWeightEngine(), "native": _NativeWeightEngine()}


@perf.timed("counting")
def card(pset: ParamSet | BasicSet, backend: str | None = None) -> sympy.Expr:
    """Exact symbolic cardinality (large-parameter regime)."""
    if isinstance(pset, BasicSet):
        return card_basic(pset, backend=backend)
    pieces = [p for p in pset.pieces if not p.has_trivially_false_constraint()]
    if not pieces:
        return sympy.Integer(0)
    if len(pieces) == 1:
        return card_basic(pieces[0], backend=backend)
    if len(pieces) > MAX_UNION_PIECES_EXACT:
        raise CountingError("too many pieces for exact inclusion-exclusion")
    return _inclusion_exclusion(pieces, backend)


@perf.timed("counting")
def card_upper(pset: ParamSet | BasicSet, backend: str | None = None) -> sympy.Expr:
    """Upper bound on the cardinality: the sum of the piece cardinalities.

    Used for quantities (sources, In-sets, may-spill sets) where an
    over-approximation keeps the derived lower bound valid.
    """
    if isinstance(pset, BasicSet):
        return card_basic(pset, backend=backend)
    total = sympy.Integer(0)
    for piece in pset.pieces:
        if piece.has_trivially_false_constraint():
            continue
        total += card_basic(piece, backend=backend)
    return total


def _inclusion_exclusion(
    pieces: Sequence[BasicSet], backend: str | None = None
) -> sympy.Expr:
    from itertools import combinations

    total = sympy.Integer(0)
    n = len(pieces)
    for size in range(1, n + 1):
        sign = (-1) ** (size + 1)
        for subset in combinations(range(n), size):
            current = pieces[subset[0]]
            for index in subset[1:]:
                current = current.intersect(pieces[index])
            if current.has_trivially_false_constraint():
                continue
            variables = list(current.space.dims) + list(current.space.params)
            if is_rationally_empty(current.constraints, variables):
                continue
            total += sign * card_basic(current, backend=backend)
    return sympy.expand(total)


@perf.timed("counting")
def card_basic(basic: BasicSet, backend: str | None = None) -> sympy.Expr:
    """Exact symbolic cardinality of one basic set.

    Results are memoised on the set's content fingerprint (plus the resolved
    count backend) through :mod:`repro.sets.memo`, so structurally-equal
    domains reached along different derivation paths share one computation.
    Sets the counting recursion rejects (:class:`CountingError`) are *not*
    cached — callers degrade those to weaker bounds and the failure is cheap
    to rediscover.
    """
    resolved = count_backend(backend)
    if basic.has_trivially_false_constraint():
        return sympy.Integer(0)
    return memo.CARD_CACHE.get_or_compute(
        (basic.fingerprint(), resolved), lambda: _card_basic_cold(basic, resolved)
    )


def _card_basic_cold(basic: BasicSet, resolved: str) -> sympy.Expr:
    constraints, dims = _substitute_equalities(
        list(basic.constraints), list(basic.space.dims)
    )
    if resolved == "native":
        engine = _ENGINES["native"]
        try:
            weight = _count(constraints, dims, engine.one, 0, (), engine)
            return sympy.expand(engine.finalize(weight))
        except PolyConversionError:
            # Decline: anything outside the native engine's domain falls
            # back to the sympy reference loop rather than guessing.
            pass
    engine = _ENGINES["sympy"]
    return sympy.expand(
        engine.finalize(_count(constraints, dims, engine.one, 0, (), engine))
    )


@perf.timed("counting")
def card_at(pset: ParamSet | BasicSet, params: dict[str, int]) -> int:
    """Concrete cardinality by enumeration (ground truth for tests)."""
    if isinstance(pset, BasicSet):
        return len(pset.enumerate_points(params))
    return len(pset.enumerate_points(params))


def _substitute_equalities(
    constraints: list[Constraint], dims: list[str]
) -> tuple[list[Constraint], list[str]]:
    """Use unit-coefficient equalities to eliminate dimensions exactly."""
    changed = True
    while changed:
        changed = False
        for constraint in constraints:
            if constraint.kind != EQ:
                continue
            target = None
            for dim in dims:
                if abs(constraint.expr.coeff(dim)) == 1:
                    target = dim
                    break
            if target is None:
                continue
            coeff = constraint.expr.coeff(target)
            rest = LinExpr(
                {n: c for n, c in constraint.expr.coeffs.items() if n != target},
                constraint.expr.const,
            )
            replacement = rest * Fraction(-1, coeff)
            constraints = [
                c.substitute({target: replacement})
                for c in constraints
                if c is not constraint
            ]
            dims = [d for d in dims if d != target]
            changed = True
            break
    remaining_eqs = [c for c in constraints if c.kind == EQ and c.expr.depends_on(dims)]
    if remaining_eqs:
        raise CountingError("equality with non-unit coefficients on dimensions")
    return constraints, dims


def _count(
    constraints: list[Constraint],
    dims: list[str],
    weight,
    split_depth: int,
    split_conditions: tuple[Constraint, ...],
    engine,
):
    """Recursive counting kernel, generic over the weight engine.

    ``weight`` is whatever the ``engine`` (native :class:`Poly` or sympy)
    carries: the recursion only ever sums it over one dimension between two
    affine bounds, adds branch contributions, and returns it at the leaf.

    ``split_conditions`` holds the extra constraints introduced by case splits
    (see :func:`_split_and_count`).  They participate in bound extraction like
    ordinary constraints, but any of them left over at the leaf (i.e. a pure
    parameter condition defining the branch) must decide whether this branch
    contributes — otherwise overlapping branches would be double-counted.
    """
    if not dims:
        if any(c.is_trivially_false() for c in list(constraints) + list(split_conditions)):
            return engine.zero
        # Residual *split* conditions on parameters are resolved under the
        # paper's asymptotic regime (all parameters large, growing together):
        #   sum of coefficients > 0  -> eventually satisfied  -> keep
        #   sum of coefficients < 0  -> eventually violated   -> contributes 0
        #   sum of coefficients = 0  -> genuinely ambiguous    -> give up
        for constraint in split_conditions:
            if constraint.expr.is_constant():
                continue
            total = sum(constraint.expr.coeffs.values())
            if total < 0:
                return engine.zero
            if total == 0:
                raise CountingError(
                    f"cannot order parameters in split condition {constraint!r}"
                )
        return weight
    dim = dims[-1]
    lower_bounds: list[LinExpr] = []
    upper_bounds: list[LinExpr] = []
    remaining: list[Constraint] = []
    remaining_splits: list[Constraint] = []
    for constraint, is_split in (
        [(c, False) for c in constraints] + [(c, True) for c in split_conditions]
    ):
        coeff = constraint.expr.coeff(dim)
        if coeff == 0:
            if is_split:
                remaining_splits.append(constraint)
            else:
                remaining.append(constraint)
            continue
        if constraint.kind == EQ:
            raise CountingError("unexpected equality during bound extraction")
        if abs(coeff) != 1:
            raise CountingError(f"non-unit coefficient {coeff} on dimension {dim}")
        rest = LinExpr(
            {n: c for n, c in constraint.expr.coeffs.items() if n != dim},
            constraint.expr.const,
        )
        if coeff > 0:
            # dim + rest >= 0  =>  dim >= -rest
            lower_bounds.append(-rest)
        else:
            # -dim + rest >= 0  =>  dim <= rest
            upper_bounds.append(rest)
    if not lower_bounds or not upper_bounds:
        raise CountingError(f"dimension {dim} is unbounded")

    context = list(constraints) + list(split_conditions)
    lower = _dominant_bound(lower_bounds, context, want_max=True)
    upper = _dominant_bound(upper_bounds, context, want_max=False)
    if lower is None or upper is None:
        ambiguous = lower_bounds if lower is None else upper_bounds
        pair = _find_incomparable_pair(ambiguous, context)
        if pair is None:
            raise CountingError("no dominant bound but no incomparable pair found")
        return _split_and_count(
            constraints, dims, weight, split_depth, split_conditions, pair, engine
        )

    if split_conditions:
        # Inside a split branch the interval [lower, upper] may be empty over
        # part of the outer domain even when the original set is non-empty
        # pointwise (the branch condition itself carves such regions out).
        # Summing there would *subtract* phantom points, so the summation
        # must be guarded by its own non-emptiness condition: decide it when
        # possible, otherwise carry ``upper >= lower`` as a further split
        # condition restricting the outer dimensions.
        outer = remaining + remaining_splits
        names = sorted(
            {n for c in outer for n in c.expr.names()}
            | set(lower.names()) | set(upper.names())
        )
        gap = Constraint(upper - lower, GE)
        if not is_rationally_empty(outer + [Constraint(lower - upper - 1, GE)], names):
            if is_rationally_empty(outer + [gap], names):
                return engine.zero
            remaining_splits = remaining_splits + [gap]

    length_sum = engine.sum_over(weight, dim, lower, upper)
    return _count(
        remaining, dims[:-1], length_sum, split_depth, tuple(remaining_splits), engine
    )


def _dominant_bound(
    bounds: list[LinExpr], constraints: list[Constraint], want_max: bool
) -> LinExpr | None:
    """Pick the bound that dominates all others over the set, if one exists."""
    bounds = _drop_constant_shifted_duplicates(bounds, want_max)
    if len(bounds) == 1:
        return bounds[0]
    names = sorted({n for c in constraints for n in c.expr.names()}
                   | {n for b in bounds for n in b.names()})
    for candidate in bounds:
        dominant = True
        for other in bounds:
            if other is candidate:
                continue
            # candidate dominates other iff no point of the set violates it:
            # for a max (lower bound) we need candidate >= other everywhere,
            # i.e. the region candidate <= other - 1 must be empty.
            if want_max:
                violation = Constraint(other - candidate - 1, GE)
            else:
                violation = Constraint(candidate - other - 1, GE)
            if not is_rationally_empty(list(constraints) + [violation], names):
                dominant = False
                break
        if dominant:
            return candidate
    return None


def _drop_constant_shifted_duplicates(bounds: list[LinExpr], want_max: bool) -> list[LinExpr]:
    """Remove bounds dominated by another bound that differs only by a constant.

    Two bounds with identical coefficients compare unconditionally, so keeping
    only the larger (for a max of lower bounds) or the smaller (for a min of
    upper bounds) is exact and avoids needless case splits.
    """
    kept: list[LinExpr] = []
    for bound in bounds:
        replaced = False
        for index, existing in enumerate(kept):
            if existing.coeffs == bound.coeffs:
                if (want_max and bound.const > existing.const) or (
                    not want_max and bound.const < existing.const
                ):
                    kept[index] = bound
                replaced = True
                break
        if not replaced:
            kept.append(bound)
    return kept


def _find_incomparable_pair(
    bounds: list[LinExpr], context: list[Constraint]
) -> tuple[LinExpr, LinExpr] | None:
    """Find two bounds whose order genuinely varies over the set."""
    names = sorted({n for c in context for n in c.expr.names()}
                   | {n for b in bounds for n in b.names()})
    for i in range(len(bounds)):
        for j in range(i + 1, len(bounds)):
            first, second = bounds[i], bounds[j]
            first_can_be_smaller = not is_rationally_empty(
                context + [Constraint(second - first - 1, GE)], names
            )
            first_can_be_larger = not is_rationally_empty(
                context + [Constraint(first - second - 1, GE)], names
            )
            if first_can_be_smaller and first_can_be_larger:
                return first, second
    return None


def _split_and_count(
    constraints: list[Constraint],
    dims: list[str],
    weight,
    split_depth: int,
    split_conditions: tuple[Constraint, ...],
    pair: tuple[LinExpr, LinExpr],
    engine,
):
    """Case-split on the order of two incomparable bounds and recurse.

    The two branch conditions are carried as *split conditions* so that any
    residue of them surviving down to the leaf (a pure parameter condition)
    can decide whether the branch contributes at all.
    """
    if split_depth >= MAX_SPLIT_DEPTH:
        raise CountingError("too many case splits during counting")
    first, second = pair
    case_ge = split_conditions + (Constraint(first - second, GE),)
    case_lt = split_conditions + (Constraint(second - first - 1, GE),)
    return engine.combine(
        _count(constraints, dims, weight, split_depth + 1, case_ge, engine),
        _count(constraints, dims, weight, split_depth + 1, case_lt, engine),
    )
