"""Parametric integer sets and affine maps (the ISL/barvinok substitute).

The subpackage provides the polyhedral machinery that IOLB obtains from ISL,
barvinok and PET in the original C implementation:

* :class:`~repro.sets.space.Space`, :class:`~repro.sets.affine.LinExpr`,
  :class:`~repro.sets.basic_set.BasicSet`, :class:`~repro.sets.pset.ParamSet` —
  parametric Z-polyhedra and finite unions thereof;
* :class:`~repro.sets.affine_map.AffineFunction` — single-valued affine maps
  used to represent flow-dependence relations in inverse (read) form;
* :mod:`~repro.sets.fourier_motzkin` — projection and emptiness;
* :mod:`~repro.sets.counting` — symbolic cardinality;
* :mod:`~repro.sets.parser` — ISL-like string syntax.
"""

from .affine import LinExpr
from .affine_map import AffineFunction
from .backend import BACKEND_ENV, get_backend, numba_available, numpy_available
from .basic_set import EQ, GE, BasicSet, Constraint
from .memo import MEMO_ENV, memo_enabled
from .counting import (
    COUNT_BACKEND_ENV,
    COUNT_BACKENDS,
    CountingError,
    card,
    card_at,
    card_basic,
    card_upper,
    count_backend,
    lin_to_sympy,
    sym,
)
from .poly import Poly, PolyConversionError
from .fourier_motzkin import (
    EliminationError,
    basic_set_is_empty,
    eliminate_variable,
    eliminate_variables,
    is_rationally_empty,
    project_out,
)
from .parser import ParseError, parse_function, parse_set
from .pset import ParamSet
from .space import Space

__all__ = [
    "BACKEND_ENV",
    "COUNT_BACKEND_ENV",
    "COUNT_BACKENDS",
    "EQ",
    "GE",
    "MEMO_ENV",
    "AffineFunction",
    "BasicSet",
    "Constraint",
    "CountingError",
    "EliminationError",
    "LinExpr",
    "ParamSet",
    "ParseError",
    "Poly",
    "PolyConversionError",
    "Space",
    "basic_set_is_empty",
    "get_backend",
    "memo_enabled",
    "numba_available",
    "numpy_available",
    "card",
    "card_at",
    "card_basic",
    "card_upper",
    "count_backend",
    "eliminate_variable",
    "eliminate_variables",
    "is_rationally_empty",
    "lin_to_sympy",
    "parse_function",
    "parse_set",
    "project_out",
    "sym",
]
