"""Fourier-Motzkin elimination and rational emptiness testing.

These are the work-horses behind projection, image computation and the
independence / interference tests of the IOLB algorithms.  All uses in
:mod:`repro.core` rely only on the *sound* direction of rational reasoning:

* a set that is rationally empty has no integer point (used to certify
  path independence and decomposition non-interference);
* the rational projection over-approximates the integer projection (used for
  In-sets, sources and may-spill sets, all of which may safely be
  over-approximated — see DESIGN.md).

Performance: the pair-combination inner loop dispatches to the active set
backend (``REPRO_SETS_BACKEND`` — see :mod:`repro.sets.backend`), and the
module-level queries are memoised under content keys
(:mod:`repro.sets.memo`); both layers are exact — identical constraints in
identical order — so results are byte-for-byte those of the pure path.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from .. import perf
from . import memo
from .affine import LinExpr
from .backend import get_backend
from .basic_set import EQ, GE, BasicSet, Constraint

MAX_CONSTRAINTS = 2000


class EliminationError(Exception):
    """Raised when elimination blows up beyond the configured limits."""


@perf.timed("fm")
def eliminate_variable(constraints: Sequence[Constraint], name: str) -> list[Constraint]:
    """Eliminate one variable from a conjunction of constraints.

    Prefers substitution through an equality with a +-1 coefficient (exact on
    integers); otherwise falls back to classic Fourier-Motzkin combination
    (exact on rationals, over-approximate on integers).
    """
    constraints = [c.normalized() for c in constraints]

    # 1. Try an exact substitution via an equality with unit coefficient.
    for constraint in constraints:
        if constraint.kind != EQ:
            continue
        coeff = constraint.expr.coeff(name)
        if abs(coeff) == 1:
            # name = -(rest)/coeff
            rest = LinExpr(
                {n: c for n, c in constraint.expr.coeffs.items() if n != name},
                constraint.expr.const,
            )
            replacement = rest * Fraction(-1, coeff)
            remaining = [c for c in constraints if c is not constraint]
            return [c.substitute({name: replacement}) for c in remaining]

    lower: list[tuple[Fraction, LinExpr]] = []   # coeff > 0:  coeff*x >= -rest
    upper: list[tuple[Fraction, LinExpr]] = []   # coeff < 0:  |coeff|*x <= rest
    others: list[Constraint] = []
    for constraint in constraints:
        coeff = constraint.expr.coeff(name)
        if coeff == 0:
            others.append(constraint)
            continue
        rest = LinExpr(
            {n: c for n, c in constraint.expr.coeffs.items() if n != name},
            constraint.expr.const,
        )
        if constraint.kind == EQ:
            # Split the (non-unit) equality into two opposite inequalities.
            pairs = [(coeff, rest), (-coeff, -rest)]
        else:
            pairs = [(coeff, rest)]
        for pair_coeff, pair_rest in pairs:
            if pair_coeff > 0:
                lower.append((pair_coeff, pair_rest))
            else:
                upper.append((pair_coeff, pair_rest))

    if len(others) + len(lower) * len(upper) > MAX_CONSTRAINTS:
        raise EliminationError("Fourier-Motzkin blow-up")

    combined = get_backend().fm_combine(lower, upper)
    if combined is None:
        # Reference pair-combination loop (also the exactness oracle for
        # every backend — see tests/sets/test_backends.py).
        combined = []
        for lo_coeff, lo_rest in lower:
            for up_coeff, up_rest in upper:
                # lo: a*x + r1 >= 0 (a>0)  =>  x >= -r1/a
                # up: b*x + r2 >= 0 (b<0)  =>  x <= -r2/b = r2/|b|
                # combination: -r1/a <= r2/|b|  =>  |b|*r1 + a*r2 >= 0
                combined.append(Constraint(lo_rest * (-up_coeff) + up_rest * lo_coeff, GE))
    result = others + combined
    return [c.normalized() for c in result if not c.is_trivially_true()]


@perf.timed("fm")
def eliminate_variables(constraints: Sequence[Constraint], names: Iterable[str]) -> list[Constraint]:
    """Eliminate several variables, one at a time."""
    current = list(constraints)
    for name in names:
        current = eliminate_variable(current, name)
        if any(c.is_trivially_false() for c in current):
            return [Constraint(LinExpr.constant(-1), GE)]
    return current


@perf.timed("fm")
def project_out(basic_set: BasicSet, dim_names: Sequence[str]) -> BasicSet:
    """Project a basic set onto the dimensions not in ``dim_names``.

    The result is the rational projection restricted to integer points — an
    over-approximation of the exact integer projection.  Results are
    memoised by set fingerprint; the returned ``BasicSet`` is shared and
    must be treated as immutable (as all basic sets are).
    """
    key = (basic_set.fingerprint(), tuple(dim_names))
    return memo.PROJECTION_CACHE.get_or_compute(
        key, lambda: _project_out_uncached(basic_set, dim_names)
    )


def _project_out_uncached(basic_set: BasicSet, dim_names: Sequence[str]) -> BasicSet:
    remaining = tuple(d for d in basic_set.space.dims if d not in dim_names)
    constraints = eliminate_variables(basic_set.constraints, dim_names)
    from .space import Space

    space = Space(basic_set.space.tuple_name, remaining, basic_set.space.params)
    return BasicSet(space, constraints)


@perf.timed("fm")
def is_rationally_empty(constraints: Sequence[Constraint], variables: Sequence[str]) -> bool:
    """True when the conjunction has no rational solution in the given variables.

    The variables include both set dimensions and parameters: emptiness here
    means "empty for every parameter value", which is the sound direction for
    all independence tests in the lower-bound derivation.
    """
    key = (tuple(c.key() for c in constraints), tuple(variables))
    return memo.RATIONAL_EMPTINESS_CACHE.get_or_compute(
        key, lambda: _is_rationally_empty_uncached(constraints, variables)
    )


def _is_rationally_empty_uncached(
    constraints: Sequence[Constraint], variables: Sequence[str]
) -> bool:
    try:
        remaining = eliminate_variables(constraints, variables)
    except EliminationError:
        return False  # unknown -> conservatively "may be non-empty"
    return any(c.is_trivially_false() for c in remaining)


@perf.timed("fm")
def basic_set_is_empty(basic_set: BasicSet, context: Sequence[Constraint] = ()) -> bool:
    """Rational emptiness of a basic set, treating parameters existentially.

    ``context`` may supply extra assumptions on parameters (e.g. ``N >= 1``).
    Returns True only when the set is certainly empty.
    """
    key = (basic_set.fingerprint(), tuple(c.key() for c in context))
    return memo.EMPTINESS_CACHE.get_or_compute(
        key, lambda: _basic_set_is_empty_uncached(basic_set, context)
    )


def _basic_set_is_empty_uncached(
    basic_set: BasicSet, context: Sequence[Constraint] = ()
) -> bool:
    constraints = list(basic_set.constraints) + list(context)
    names = list(basic_set.space.dims) + list(basic_set.space.params)
    extra = sorted({n for c in context for n in c.expr.names() if n not in names})
    return is_rationally_empty(constraints, names + extra)
