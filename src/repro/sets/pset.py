"""Parametric sets: finite unions of basic sets over a common space."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .. import perf
from .basic_set import GE, BasicSet, Constraint
from .fourier_motzkin import basic_set_is_empty, project_out
from .space import Space


class ParamSet:
    """A union of :class:`BasicSet` pieces sharing the same dimensions."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: Space, pieces: Iterable[BasicSet] = ()):
        self.space = space
        kept = []
        for piece in pieces:
            if piece.space.dims != space.dims:
                raise ValueError("union of basic sets with different dimensions")
            if piece.has_trivially_false_constraint():
                continue
            kept.append(piece)
        self.pieces: tuple[BasicSet, ...] = tuple(kept)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_basic(cls, basic: BasicSet) -> "ParamSet":
        return cls(basic.space, [basic])

    @classmethod
    def empty(cls, space: Space) -> "ParamSet":
        return cls(space, [])

    @classmethod
    def universe(cls, space: Space) -> "ParamSet":
        return cls(space, [BasicSet.universe(space)])

    # -- queries -----------------------------------------------------------

    @perf.timed("sets")
    def is_empty(self, context: Sequence[Constraint] = ()) -> bool:
        """True when every piece is (rationally, hence certainly) empty."""
        return all(basic_set_is_empty(piece, context) for piece in self.pieces)

    def is_obviously_empty(self) -> bool:
        return not self.pieces

    def single_piece(self) -> BasicSet:
        """The unique basic set of a one-piece union (raises otherwise)."""
        if len(self.pieces) != 1:
            raise ValueError(f"expected exactly one piece, found {len(self.pieces)}")
        return self.pieces[0]

    def contains_point(self, point: Sequence[int], params: Mapping[str, int]) -> bool:
        return any(piece.contains_point(point, params) for piece in self.pieces)

    @perf.timed("sets")
    def enumerate_points(self, params: Mapping[str, int], bound: int = 2000) -> list[tuple[int, ...]]:
        """Enumerate integer points for concrete parameters (duplicates removed)."""
        seen: dict[tuple[int, ...], None] = {}
        for piece in self.pieces:
            for point in piece.enumerate_points(params, bound):
                seen[point] = None
        return list(seen)

    # -- algebra -----------------------------------------------------------

    @perf.timed("sets")
    def union(self, other: "ParamSet") -> "ParamSet":
        if other.space.dims != self.space.dims:
            raise ValueError("union of sets with different dimensions")
        space = self.space.with_params(other.space.params)
        return ParamSet(space, self.pieces + other.pieces)

    @perf.timed("sets")
    def intersect(self, other: "ParamSet") -> "ParamSet":
        if other.space.dims != self.space.dims:
            raise ValueError("intersection of sets with different dimensions")
        space = self.space.with_params(other.space.params)
        pieces = [a.intersect(b) for a in self.pieces for b in other.pieces]
        return ParamSet(space, pieces)

    def intersect_basic(self, basic: BasicSet) -> "ParamSet":
        return self.intersect(ParamSet.from_basic(basic))

    @perf.timed("sets")
    def subtract(self, other: "ParamSet") -> "ParamSet":
        """Set difference ``self - other``.

        The complement of a conjunction is a union of negated constraints;
        negation of ``e >= 0`` over the integers is ``-e - 1 >= 0``.
        Equalities are split before negation.
        """
        result_pieces = list(self.pieces)
        for cut in other.pieces:
            negations = _negate_basic(cut)
            new_pieces = []
            for piece in result_pieces:
                for negated in negations:
                    candidate = piece.add_constraints(negated)
                    if not candidate.has_trivially_false_constraint():
                        new_pieces.append(candidate)
            result_pieces = new_pieces
        return ParamSet(self.space, result_pieces)

    @perf.timed("sets")
    def coalesce(self, context: Sequence[Constraint] = ()) -> "ParamSet":
        """Drop pieces that are rationally empty (cheap cleanup)."""
        kept = [p for p in self.pieces if not basic_set_is_empty(p, context)]
        return ParamSet(self.space, kept)

    @perf.timed("sets")
    def project_onto(self, dims: Sequence[str]) -> "ParamSet":
        """Project onto the named dims, eliminating all others."""
        to_remove = [d for d in self.space.dims if d not in dims]
        projected = [project_out(piece, to_remove) for piece in self.pieces]
        if projected:
            space = projected[0].space
        else:
            space = Space(self.space.tuple_name, tuple(dims), self.space.params)
        return ParamSet(space, projected)

    def fix_dim(self, dim_name: str, value) -> "ParamSet":
        pieces = [piece.fix_dim(dim_name, value) for piece in self.pieces]
        space = pieces[0].space if pieces else self.space
        return ParamSet(space, pieces)

    def with_tuple_name(self, name: str) -> "ParamSet":
        return ParamSet(
            self.space.rename_tuple(name), [p.with_tuple_name(name) for p in self.pieces]
        )

    def rename_dims(self, mapping: Mapping[str, str]) -> "ParamSet":
        pieces = [p.rename_dims(mapping) for p in self.pieces]
        space = pieces[0].space if pieces else Space(
            self.space.tuple_name,
            tuple(mapping.get(d, d) for d in self.space.dims),
            self.space.params,
        )
        return ParamSet(space, pieces)

    def __repr__(self) -> str:
        if not self.pieces:
            return f"{{ {self.space.tuple_name}[...] : false }}"
        return " union ".join(repr(p) for p in self.pieces)


def _negate_basic(basic: BasicSet) -> list[list[Constraint]]:
    """Return the disjunction of constraint-lists describing the complement."""
    negations: list[list[Constraint]] = []
    for constraint in basic.constraints:
        if constraint.kind == GE:
            negations.append([Constraint(-constraint.expr - 1, GE)])
        else:
            negations.append([Constraint(constraint.expr - 1, GE)])
            negations.append([Constraint(-constraint.expr - 1, GE)])
    if not negations:
        # Complement of the universe is empty: return a single false branch.
        from .affine import LinExpr

        negations.append([Constraint(LinExpr.constant(-1), GE)])
    return negations
