"""Affine expressions over named dimensions and parameters.

A :class:`LinExpr` is ``sum_i c_i * name_i + const`` with rational
coefficients.  It is the atom of every constraint, access function and
dependence relation in the library.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Mapping

import sympy


class LinExpr:
    """An affine (degree-one) expression with rational coefficients."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, object] | None = None, const: object = 0):
        cleaned: dict[str, Fraction] = {}
        if coeffs:
            for name, value in coeffs.items():
                frac = Fraction(value)
                if frac != 0:
                    cleaned[name] = frac
        self.coeffs: dict[str, Fraction] = cleaned
        self.const: Fraction = Fraction(const)

    # -- constructors ------------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return cls({name: 1})

    @classmethod
    def constant(cls, value: object) -> "LinExpr":
        """A constant expression."""
        return cls({}, value)

    # -- queries -----------------------------------------------------------

    def names(self) -> set[str]:
        """Names with non-zero coefficient."""
        return set(self.coeffs)

    def coeff(self, name: str) -> Fraction:
        """Coefficient of ``name`` (0 when absent)."""
        return self.coeffs.get(name, Fraction(0))

    def is_constant(self) -> bool:
        """True when no variable appears."""
        return not self.coeffs

    def depends_on(self, names: Iterable[str]) -> bool:
        """True when any of ``names`` has a non-zero coefficient."""
        return any(name in self.coeffs for name in names)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "LinExpr | int | Fraction") -> "LinExpr":
        other = _as_expr(other)
        coeffs = dict(self.coeffs)
        for name, value in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + value
        return LinExpr(coeffs, self.const + other.const)

    def __radd__(self, other):
        return self.__add__(other)

    def __neg__(self) -> "LinExpr":
        return LinExpr({k: -v for k, v in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "LinExpr | int | Fraction") -> "LinExpr":
        return self + (-_as_expr(other))

    def __rsub__(self, other):
        return _as_expr(other) - self

    def __mul__(self, scalar: object) -> "LinExpr":
        factor = Fraction(scalar)
        return LinExpr({k: v * factor for k, v in self.coeffs.items()}, self.const * factor)

    def __rmul__(self, scalar: object) -> "LinExpr":
        return self.__mul__(scalar)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (LinExpr, int, Fraction)):
            return NotImplemented
        other = _as_expr(other)
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.coeffs.items())), self.const))

    # -- substitution / evaluation ------------------------------------------

    def substitute(self, mapping: Mapping[str, "LinExpr | int | Fraction"]) -> "LinExpr":
        """Replace each named variable by the given affine expression."""
        result = LinExpr({}, self.const)
        for name, coeff in self.coeffs.items():
            if name in mapping:
                result = result + _as_expr(mapping[name]) * coeff
            else:
                result = result + LinExpr({name: coeff})
        return result

    def evaluate(self, values: Mapping[str, object]) -> Fraction:
        """Numeric value of the expression at a point; all names must be bound."""
        total = self.const
        for name, coeff in self.coeffs.items():
            if name not in values:
                raise KeyError(f"no value supplied for {name!r}")
            total += coeff * Fraction(values[name])
        return total

    def to_sympy(self, symbols: Mapping[str, sympy.Symbol] | None = None) -> sympy.Expr:
        """Convert to a sympy expression (creating integer symbols as needed)."""
        symbols = symbols or {}
        expr: sympy.Expr = sympy.Rational(self.const.numerator, self.const.denominator)
        for name, coeff in self.coeffs.items():
            symbol = symbols.get(name, sympy.Symbol(name, integer=True))
            expr += sympy.Rational(coeff.numerator, coeff.denominator) * symbol
        return expr

    # -- normalisation ------------------------------------------------------

    def scaled_to_integers(self) -> "LinExpr":
        """Multiply by the positive rational that makes all coefficients integral
        and divides out the common factor.

        Returns ``self`` (not a copy) when the expression is already in
        canonical form, so callers can cheaply detect idempotence.
        """
        values = list(self.coeffs.values()) + [self.const]
        denominators = 1
        for value in values:
            denominators = denominators * value.denominator // gcd(denominators, value.denominator)
        numerators = [abs(int(v * denominators)) for v in values if v != 0]
        common = 0
        for value in numerators:
            common = gcd(common, value)
        if denominators == 1 and common <= 1:
            return self
        scale = Fraction(denominators, common) if common > 1 else Fraction(denominators)
        return self * scale

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            coeff = self.coeffs[name]
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.const != 0 or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


def _as_expr(value: "LinExpr | int | Fraction") -> LinExpr:
    if isinstance(value, LinExpr):
        return value
    return LinExpr({}, value)
