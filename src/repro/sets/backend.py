"""Pluggable compiled kernels for the constraint-matrix inner loops.

Three backends accelerate the same inner loops; all of them are *perf-only*
— the pure-Python implementations in :mod:`repro.sets` remain the semantic
reference, and every backend must produce **byte-identical** results
(same constraints, same order, same canonical form):

* :class:`PureSetBackend` — the default-correct fallback; declines every
  query so callers run their reference loops (no dependencies).
* :class:`NumpySetBackend` — vectorises the Fourier-Motzkin pair
  combination, the trivially-true redundancy filter on combined rows, the
  per-row gcd canonicalisation, and concrete point enumeration as int64
  matrix kernels.  Declines (returns ``None``) whenever exactness cannot be
  guaranteed: non-integer coefficients, possible int64 overflow, grids past
  the enumeration limit.
* :class:`NumbaSetBackend` — the numpy backend with the innermost loops
  JIT-compiled via `numba <https://numba.pydata.org>`_; used automatically
  when numba is importable.

Selection mirrors ``repro.rel.backend``: :func:`get_backend` honours the
``REPRO_SETS_BACKEND`` environment variable (``pure`` / ``numpy`` /
``numba``) and otherwise auto-selects the best importable backend
(numba > numpy > pure).
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Mapping, Protocol, Sequence, runtime_checkable

from .affine import LinExpr
from .basic_set import EQ, GE, BasicSet, Constraint

#: Environment variable forcing a backend (``pure``, ``numpy`` or ``numba``).
BACKEND_ENV = "REPRO_SETS_BACKEND"

#: Largest candidate grid the vectorised point enumeration will materialise.
ENUMERATION_GRID_LIMIT = 200_000

#: int64 safety margin for the FM combination products.
_INT64_SAFE = 1 << 62


@runtime_checkable
class SetBackend(Protocol):
    """One engine for the constraint-matrix inner loops.

    Methods return ``None`` to decline a query, in which case the caller
    runs its pure-Python reference loop — so a backend only ever *speeds
    up* a computation, never changes it.
    """

    name: str

    #: Whether :func:`repro.linalg.rational.rref` may use the fraction-free
    #: integer elimination kernel (byte-identical; needs no numpy, but is
    #: part of the optimised layer so ``pure`` restores the reference loop).
    fraction_free_rref: bool

    def fm_combine(
        self,
        lower: Sequence[tuple[Fraction, LinExpr]],
        upper: Sequence[tuple[Fraction, LinExpr]],
    ) -> list[Constraint] | None:
        ...

    def enumerate_points(
        self, basic_set: BasicSet, params: Mapping[str, int], bound: int
    ) -> list[tuple[int, ...]] | None:
        ...


class PureSetBackend:
    """The dependency-free reference backend (declines every query)."""

    name = "pure"
    fraction_free_rref = False

    def fm_combine(self, lower, upper):
        return None

    def enumerate_points(self, basic_set, params, bound):
        return None


# Availability probes are cached: a *failed* import is costly (a full
# sys.path search ending in an exception), and auto-selection runs on every
# hot call that reaches for a backend.
_numpy_ok: bool | None = None
_numba_ok: bool | None = None


def numpy_available() -> bool:
    """True when numpy can be imported (probed once per process)."""
    global _numpy_ok
    if _numpy_ok is None:
        try:
            import numpy  # noqa: F401

            _numpy_ok = True
        except ImportError:
            _numpy_ok = False
    return _numpy_ok


def numba_available() -> bool:
    """True when numba (and therefore numpy) can be imported (probed once)."""
    global _numba_ok
    if _numba_ok is None:
        try:
            import numba  # noqa: F401
            import numpy  # noqa: F401

            _numba_ok = True
        except ImportError:
            _numba_ok = False
    return _numba_ok


def _int_or_none(value: Fraction) -> int | None:
    return int(value) if value.denominator == 1 else None


class NumpySetBackend:
    """Vectorised int64 kernels with exactness guards.

    Every method reproduces its pure counterpart's output exactly —
    identical values in identical order — or declines.  The guards are:
    all coefficients must be integers (constraints are canonicalised before
    reaching these loops, so this almost always holds) and every intermediate
    product must fit int64 with margin.
    """

    name = "numpy"
    fraction_free_rref = True

    def __init__(self):
        import numpy

        self._np = numpy

    # -- kernels a subclass may JIT ----------------------------------------

    def _combine_rows(self, L, a, U, b):
        """``out[i*nu + j] = L[i] * -b[j] + U[j] * a[i]`` in pure-loop order."""
        np = self._np
        combined = L[:, None, :] * (-b)[None, :, None] + U[None, :, :] * a[:, None, None]
        return combined.reshape(L.shape[0] * U.shape[0], L.shape[1])

    def _filter_mask(self, pts, A, consts, kinds):
        """Row mask of points satisfying every constraint (1 = EQ row)."""
        np = self._np
        values = pts @ A.T + consts[None, :]
        eq = kinds == 1
        mask = np.ones(pts.shape[0], dtype=bool)
        if eq.any():
            mask &= (values[:, eq] == 0).all(axis=1)
        if (~eq).any():
            mask &= (values[:, ~eq] >= 0).all(axis=1)
        return mask

    # -- Fourier-Motzkin pair combination ----------------------------------

    def fm_combine(self, lower, upper):
        np = self._np
        if not lower or not upper:
            return []
        names: list[str] = []
        seen: set[str] = set()
        for _, rest in (*lower, *upper):
            for name in rest.coeffs:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        width = len(names) + 1  # coefficient columns + constant
        column = {name: idx for idx, name in enumerate(names)}

        def fill(pairs):
            matrix = np.zeros((len(pairs), width), dtype=np.int64)
            coeffs = np.empty(len(pairs), dtype=np.int64)
            for row, (coeff, rest) in enumerate(pairs):
                value = _int_or_none(coeff)
                if value is None:
                    return None, None
                coeffs[row] = value
                for name, frac in rest.coeffs.items():
                    entry = _int_or_none(frac)
                    if entry is None:
                        return None, None
                    matrix[row, column[name]] = entry
                const = _int_or_none(rest.const)
                if const is None:
                    return None, None
                matrix[row, width - 1] = const
            return matrix, coeffs

        L, a = fill(lower)
        if L is None:
            return None
        U, b = fill(upper)
        if U is None:
            return None

        # Exactness guard: |combined| <= max|L|*max|b| + max|U|*max|a|.
        bound = int(np.abs(L).max(initial=0)) * int(np.abs(b).max(initial=0)) + int(
            np.abs(U).max(initial=0)
        ) * int(np.abs(a).max(initial=0))
        if bound >= _INT64_SAFE:
            return None

        rows = self._combine_rows(L, a, U, b)

        # Redundancy filter (vectorised ``is_trivially_true``): drop rows
        # with no variable part and a non-negative constant — exactly the
        # rows the pure loop's final pass filters out.
        coeff_part = rows[:, : width - 1]
        const_part = rows[:, width - 1]
        nontrivial = (coeff_part != 0).any(axis=1) | (const_part < 0)
        rows = rows[nontrivial]

        # Canonicalise: divide each row by the gcd of its absolute values
        # (constant included), matching ``LinExpr.scaled_to_integers`` on
        # integer rows.  Rows kept above always have a nonzero entry.
        if rows.shape[0]:
            gcds = np.gcd.reduce(np.abs(rows), axis=1)
            rows = rows // gcds[:, None]

        out = []
        for row in rows.tolist():
            coeffs = {name: value for name, value in zip(names, row) if value}
            out.append(Constraint(LinExpr(coeffs, row[-1]), GE).normalized())
        return out

    # -- concrete point enumeration ----------------------------------------

    def enumerate_points(self, basic_set, params, bound):
        np = self._np
        dims = basic_set.space.dims
        if not dims:
            return None
        for value in params.values():
            if not isinstance(value, int):
                return None
        order = basic_set._enumeration_order()
        known = set(params)

        # Static per-dimension bounds from constraints over one dim + params.
        los: list[int] = []
        his: list[int] = []
        for dim in order:
            lo, hi = -bound, bound
            for constraint in basic_set.constraints:
                coeff = constraint.expr.coeff(dim)
                if coeff == 0:
                    continue
                if constraint.expr.names() - {dim} - known:
                    continue
                rest = constraint.expr.const
                for name, value in constraint.expr.coeffs.items():
                    if name != dim:
                        rest += value * params[name]
                boundary = Fraction(-rest, coeff)
                if constraint.kind == EQ:
                    lo = max(lo, _ceil(boundary))
                    hi = min(hi, _floor(boundary))
                elif coeff > 0:
                    lo = max(lo, _ceil(boundary))
                else:
                    hi = min(hi, _floor(boundary))
            if lo > hi:
                return []
            los.append(lo)
            his.append(hi)

        size = 1
        for lo, hi in zip(los, his):
            size *= hi - lo + 1
            if size > ENUMERATION_GRID_LIMIT:
                return None

        # Constraint matrix over the enumeration order (+ folded params).
        column = {dim: idx for idx, dim in enumerate(order)}
        A = np.zeros((len(basic_set.constraints), len(order)), dtype=np.int64)
        consts = np.zeros(len(basic_set.constraints), dtype=np.int64)
        kinds = np.zeros(len(basic_set.constraints), dtype=np.int64)
        largest = 0
        for row, constraint in enumerate(basic_set.constraints):
            kinds[row] = 1 if constraint.kind == EQ else 0
            const = _int_or_none(constraint.expr.const)
            if const is None:
                return None
            for name, frac in constraint.expr.coeffs.items():
                value = _int_or_none(frac)
                if value is None:
                    return None
                if name in column:
                    A[row, column[name]] = value
                    largest = max(largest, abs(value))
                elif name in params:
                    const += value * params[name]
                else:
                    return None  # free name: let the pure path raise KeyError
            consts[row] = const
            largest = max(largest, abs(const))
        if largest * (bound + 1) * (len(order) + 1) >= _INT64_SAFE:
            return None

        axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in zip(los, his)]
        mesh = np.meshgrid(*axes, indexing="ij")
        pts = np.stack([axis.reshape(-1) for axis in mesh], axis=1)
        mask = self._filter_mask(pts, A, consts, kinds)
        selected = pts[mask]
        reorder = [column[d] for d in dims]
        return [tuple(row) for row in selected[:, reorder].tolist()]


class NumbaSetBackend(NumpySetBackend):
    """Numpy backend with the innermost loops JIT-compiled by numba.

    Kernels are compiled lazily on first use; compilation failures are not
    caught — numba either works or the backend should not be selected.
    """

    name = "numba"

    def __init__(self):
        super().__init__()
        import numba

        self._numba = numba
        self._jit_combine = None
        self._jit_filter = None

    def _combine_rows(self, L, a, U, b):
        if self._jit_combine is None:
            numba = self._numba
            np = self._np

            @numba.njit(cache=False)
            def combine(L, a, U, b):  # pragma: no cover - requires numba
                nl, width = L.shape
                nu = U.shape[0]
                out = np.empty((nl * nu, width), dtype=np.int64)
                idx = 0
                for i in range(nl):
                    for j in range(nu):
                        for k in range(width):
                            out[idx, k] = L[i, k] * (-b[j]) + U[j, k] * a[i]
                        idx += 1
                return out

            self._jit_combine = combine
        return self._jit_combine(L, a, U, b)

    def _filter_mask(self, pts, A, consts, kinds):
        if self._jit_filter is None:
            numba = self._numba
            np = self._np

            @numba.njit(cache=False)
            def filter_points(pts, A, consts, kinds):  # pragma: no cover - requires numba
                n = pts.shape[0]
                rows = A.shape[0]
                width = pts.shape[1]
                mask = np.ones(n, dtype=np.bool_)
                for p in range(n):
                    for r in range(rows):
                        value = consts[r]
                        for k in range(width):
                            value += A[r, k] * pts[p, k]
                        if kinds[r] == 1:
                            if value != 0:
                                mask[p] = False
                                break
                        elif value < 0:
                            mask[p] = False
                            break
                return mask

            self._jit_filter = filter_points
        return self._jit_filter(pts, A, consts, kinds)


_BACKEND_CACHE: dict[str, SetBackend] = {}


def get_backend(name: str | None = None) -> SetBackend:
    """Resolve a set backend by name, env override, or auto-detection.

    ``name=None`` reads ``$REPRO_SETS_BACKEND``; when that is unset too, the
    best importable backend is auto-selected (numba > numpy > pure).
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV) or None
    if name is None:
        if numba_available():
            name = "numba"
        elif numpy_available():
            name = "numpy"
        else:
            name = "pure"
    if name in _BACKEND_CACHE:
        return _BACKEND_CACHE[name]
    if name == "pure":
        backend: SetBackend = PureSetBackend()
    elif name == "numpy":
        if not numpy_available():
            raise RuntimeError(
                "the 'numpy' set backend was requested but numpy is not installed"
            )
        backend = NumpySetBackend()
    elif name == "numba":
        if not numba_available():
            raise RuntimeError(
                "the 'numba' set backend was requested but numba is not installed"
            )
        backend = NumbaSetBackend()
    else:
        raise KeyError(
            f"unknown set backend {name!r} (expected 'pure', 'numpy' or 'numba')"
        )
    _BACKEND_CACHE[name] = backend
    return backend


def reset_backend_cache() -> None:
    """Drop backend instances and availability probes (tests switching
    ``REPRO_SETS_BACKEND`` or stubbing out imports)."""
    global _numpy_ok, _numba_ok
    _BACKEND_CACHE.clear()
    _numpy_ok = None
    _numba_ok = None


def _ceil(value: Fraction) -> int:
    return -((-value.numerator) // value.denominator)


def _floor(value: Fraction) -> int:
    return value.numerator // value.denominator
