"""Native multivariate polynomials over ``Fraction`` for closed-form counting.

The counting recursion of :mod:`repro.sets.counting` repeatedly sums a
polynomial weight over one dimension between two affine bounds.  Routing
every such sum through :func:`sympy.summation` re-derives the same Faulhaber
closed forms symbolically on every call, and profiling shows that work — not
the set algebra — dominating a cold derivation.  This module provides the
exact-arithmetic replacement: a canonical dict-of-monomials polynomial with
rational coefficients, plus the precomputed Bernoulli/Faulhaber coefficient
tables that turn ``sum_{x=L}^{U} p`` into a handful of dict merges.

Summation convention
--------------------

sympy evaluates ``Sum(f, (x, a, b))`` by the Karr / polynomial-identity
convention: the closed form ``F(b) - F(a-1)`` is applied unconditionally,
so an "empty" range ``b = a - 1`` contributes 0 and a crossed range
``b < a - 1`` contributes ``-sum_{x=b+1}^{a-1} f`` — for *numeric* limits
just as for symbolic ones.  :meth:`Poly.sum_over` implements exactly that
identity (``S_k(U+1) - S_k(L)`` with ``S_k(n) = sum_{x=0}^{n-1} x^k``), so
the native engine agrees with ``sympy.summation`` on every input, including
the negative-length ranges the large-parameter regime leans on.

The sympy boundary
------------------

:meth:`Poly.to_sympy` / :meth:`Poly.from_sympy` are lossless on the shared
domain (multivariate polynomials with rational coefficients).  Anything
outside that domain — floats, radicals, transcendentals, true rational
functions — raises :class:`PolyConversionError`, which callers treat as a
*decline*: the sympy reference path runs instead (the same byte-identity-or-
decline boundary ``repro.sets.backend`` draws for the compiled kernels).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import comb
from typing import Mapping

import sympy

from .affine import LinExpr

#: A monomial: name/exponent pairs, sorted by name, exponents >= 1.
#: The empty tuple is the constant monomial.
Monomial = tuple[tuple[str, int], ...]


class PolyConversionError(Exception):
    """A sympy expression is outside the rational-polynomial domain."""


@lru_cache(maxsize=None)
def sym(name: str) -> sympy.Symbol:
    """The shared sympy symbol for a parameter or dimension name.

    Symbols are integer but deliberately *not* marked positive: counting
    bounds (and loop-parametrisation offsets) may be negative, and sympy's
    concrete summation rejects inconsistent assumptions on its dummy index.
    The table is module-level and memoised — the innermost counting
    recursion asks for the same handful of names millions of times.
    """
    return sympy.Symbol(name, integer=True)


@lru_cache(maxsize=None)
def bernoulli_number(n: int) -> Fraction:
    """The n-th Bernoulli number with the ``B_1 = -1/2`` convention."""
    if n == 0:
        return Fraction(1)
    total = Fraction(0)
    for j in range(n):
        total += comb(n + 1, j) * bernoulli_number(j)
    return -total / (n + 1)


@lru_cache(maxsize=None)
def faulhaber_coefficients(k: int) -> tuple[Fraction, ...]:
    """Coefficients ``(c_1, ..., c_{k+1})`` of ``S_k(n) = sum_{x=0}^{n-1} x^k``.

    ``S_k(n) = sum_i c_i * n^i`` with ``c_i = C(k+1, k+1-i) * B_{k+1-i} / (k+1)``
    (Faulhaber's formula via Bernoulli numbers; no constant term).  Then
    ``sum_{x=L}^{U} x^k = S_k(U+1) - S_k(L)`` as a polynomial identity —
    sympy's summation convention on every range, empty and crossed included.
    """
    if k < 0:
        raise ValueError("Faulhaber tables need a non-negative exponent")
    return tuple(
        Fraction(comb(k + 1, k + 1 - i)) * bernoulli_number(k + 1 - i) / (k + 1)
        for i in range(1, k + 2)
    )


def _mono_mul(left: Monomial, right: Monomial) -> Monomial:
    if not left:
        return right
    if not right:
        return left
    merged = dict(left)
    for name, exponent in right:
        merged[name] = merged.get(name, 0) + exponent
    return tuple(sorted(merged.items()))


class Poly:
    """A multivariate polynomial with :class:`Fraction` coefficients.

    Canonical form: ``terms`` maps sorted name/exponent monomials to non-zero
    rational coefficients, so structural equality is mathematical equality
    and every operation stays exact.  Instances are treated as immutable.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, object] | None = None):
        cleaned: dict[Monomial, Fraction] = {}
        if terms:
            for monomial, value in terms.items():
                coeff = Fraction(value)
                if coeff != 0:
                    cleaned[monomial] = coeff
        self.terms: dict[Monomial, Fraction] = cleaned

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls) -> "Poly":
        return cls()

    @classmethod
    def one(cls) -> "Poly":
        return cls({(): 1})

    @classmethod
    def constant(cls, value: object) -> "Poly":
        return cls({(): Fraction(value)})

    @classmethod
    def var(cls, name: str) -> "Poly":
        return cls({((name, 1),): 1})

    @classmethod
    def from_lin(cls, expr: LinExpr) -> "Poly":
        """Lift an affine :class:`LinExpr` into the polynomial ring."""
        terms: dict[Monomial, Fraction] = {
            ((name, 1),): coeff for name, coeff in expr.coeffs.items()
        }
        if expr.const != 0:
            terms[()] = expr.const
        return cls(terms)

    # -- queries -----------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def names(self) -> set[str]:
        return {name for monomial in self.terms for name, _ in monomial}

    def degree(self, name: str) -> int:
        """Largest exponent of ``name`` (0 when absent)."""
        best = 0
        for monomial in self.terms:
            for mono_name, exponent in monomial:
                if mono_name == name and exponent > best:
                    best = exponent
        return best

    def total_degree(self) -> int:
        return max(
            (sum(e for _, e in monomial) for monomial in self.terms), default=0
        )

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: "Poly | int | Fraction") -> "Poly":
        other = _as_poly(other)
        terms = dict(self.terms)
        for monomial, coeff in other.terms.items():
            terms[monomial] = terms.get(monomial, Fraction(0)) + coeff
        return Poly(terms)

    def __radd__(self, other):
        return self.__add__(other)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Poly | int | Fraction") -> "Poly":
        return self + (-_as_poly(other))

    def __rsub__(self, other):
        return _as_poly(other) - self

    def __mul__(self, other: "Poly | int | Fraction") -> "Poly":
        if not isinstance(other, Poly):
            factor = Fraction(other)
            return Poly({m: c * factor for m, c in self.terms.items()})
        terms: dict[Monomial, Fraction] = {}
        for left_mono, left_coeff in self.terms.items():
            for right_mono, right_coeff in other.terms.items():
                monomial = _mono_mul(left_mono, right_mono)
                terms[monomial] = (
                    terms.get(monomial, Fraction(0)) + left_coeff * right_coeff
                )
        return Poly(terms)

    def __rmul__(self, other):
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Poly":
        if exponent < 0:
            raise ValueError("polynomials only take non-negative powers")
        result = Poly.one()
        base = self
        remaining = exponent
        while remaining:
            if remaining & 1:
                result = result * base
            remaining >>= 1
            if remaining:
                base = base * base
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (Poly, int, Fraction)):
            return NotImplemented
        return self.terms == _as_poly(other).terms

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.terms.items())))

    def __repr__(self) -> str:
        if not self.terms:
            return "Poly(0)"
        parts = []
        for monomial in sorted(self.terms):
            factors = [
                name if exponent == 1 else f"{name}^{exponent}"
                for name, exponent in monomial
            ]
            coeff = self.terms[monomial]
            if not factors:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append("*".join(factors))
            else:
                parts.append(f"{coeff}*" + "*".join(factors))
        return "Poly(" + " + ".join(parts) + ")"

    # -- substitution / evaluation -----------------------------------------

    def substitute(self, name: str, replacement: "Poly | LinExpr") -> "Poly":
        """Replace ``name`` by a polynomial (or affine) expression, exactly."""
        if isinstance(replacement, LinExpr):
            replacement = Poly.from_lin(replacement)
        powers: dict[int, Poly] = {0: Poly.one(), 1: replacement}

        def power(exponent: int) -> Poly:
            cached = powers.get(exponent)
            if cached is None:
                cached = powers[exponent] = power(exponent - 1) * replacement
            return cached

        result = Poly.zero()
        for monomial, coeff in self.terms.items():
            rest = tuple(pair for pair in monomial if pair[0] != name)
            exponent = next((e for n, e in monomial if n == name), 0)
            contribution = Poly({rest: coeff})
            if exponent:
                contribution = contribution * power(exponent)
            result = result + contribution
        return result

    def evaluate(self, values: Mapping[str, object]) -> Fraction:
        """Numeric value at a point; every name must be bound."""
        total = Fraction(0)
        for monomial, coeff in self.terms.items():
            product = coeff
            for name, exponent in monomial:
                if name not in values:
                    raise KeyError(f"no value supplied for {name!r}")
                product *= Fraction(values[name]) ** exponent
            total += product
        return total

    # -- the closed-form summation -----------------------------------------

    def sum_over(self, name: str, lower: LinExpr, upper: LinExpr) -> "Poly":
        """Exact ``sum_{name=lower}^{upper} self`` as a polynomial.

        ``lower``/``upper`` are affine bounds over *other* names (symbolic
        parameters, outer dimensions, or constants).  Implements the Karr
        polynomial identity ``S_k(U+1) - S_k(L)`` per power of ``name``,
        matching ``sympy.summation`` on every range shape — empty
        (``U = L-1``) contributes 0, crossed ranges contribute negatively.
        """
        if name in lower.names() or name in upper.names():
            raise ValueError(f"summation bounds may not involve {name!r}")
        upper_base = Poly.from_lin(upper + 1)
        lower_base = Poly.from_lin(lower)
        upper_powers: dict[int, Poly] = {0: Poly.one()}
        lower_powers: dict[int, Poly] = {0: Poly.one()}

        def power(cache: dict[int, Poly], base: Poly, exponent: int) -> Poly:
            cached = cache.get(exponent)
            if cached is None:
                cached = cache[exponent] = power(cache, base, exponent - 1) * base
            return cached

        result = Poly.zero()
        for monomial, coeff in self.terms.items():
            rest = tuple(pair for pair in monomial if pair[0] != name)
            exponent = next((e for n, e in monomial if n == name), 0)
            closed = Poly.zero()
            for index, factor in enumerate(faulhaber_coefficients(exponent), start=1):
                if factor == 0:
                    continue
                difference = power(upper_powers, upper_base, index) - power(
                    lower_powers, lower_base, index
                )
                closed = closed + difference * factor
            result = result + Poly({rest: coeff}) * closed
        return result

    # -- the sympy boundary ------------------------------------------------

    def to_sympy(self) -> sympy.Expr:
        """Lossless conversion through the shared :func:`sym` symbol table."""
        if not self.terms:
            return sympy.Integer(0)
        addends = []
        for monomial, coeff in self.terms.items():
            factor: sympy.Expr = sympy.Rational(coeff.numerator, coeff.denominator)
            for name, exponent in monomial:
                factor *= sym(name) ** exponent
            addends.append(factor)
        return sympy.Add(*addends)

    @classmethod
    def from_sympy(cls, expr: sympy.Expr) -> "Poly":
        """Lossless inverse of :meth:`to_sympy` on the polynomial domain.

        Raises :class:`PolyConversionError` for anything that is not a
        polynomial with rational coefficients — the caller's cue to decline
        to the sympy reference path rather than guess.
        """
        expr = sympy.sympify(expr)
        symbols = sorted(expr.free_symbols, key=lambda s: s.name)
        if not symbols:
            if not expr.is_Rational:
                raise PolyConversionError(f"non-rational constant {expr!r}")
            return cls.constant(Fraction(expr.p, expr.q))
        try:
            spoly = sympy.Poly(expr, *symbols)
        except sympy.PolynomialError as error:
            raise PolyConversionError(f"not a polynomial: {expr!r}") from error
        terms: dict[Monomial, Fraction] = {}
        for exponents, coeff in spoly.terms():
            if not coeff.is_Rational:
                raise PolyConversionError(
                    f"non-rational coefficient {coeff!r} in {expr!r}"
                )
            monomial = tuple(
                sorted(
                    (symbol.name, int(exponent))
                    for symbol, exponent in zip(symbols, exponents)
                    if exponent
                )
            )
            terms[monomial] = terms.get(monomial, Fraction(0)) + Fraction(
                coeff.p, coeff.q
            )
        return cls(terms)


def _as_poly(value: "Poly | int | Fraction") -> Poly:
    if isinstance(value, Poly):
        return value
    return Poly.constant(value)
