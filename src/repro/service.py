"""JSON-lines analysis service: the long-lived front-end over the scheduler.

``python -m repro serve`` turns the analyzer into a service: it reads one
JSON **request** per line (stdin by default, or each TCP connection with
``--port``) and streams back one JSON **event** per line as the event-driven
scheduler (:mod:`repro.analysis.scheduler`) lands each kernel's bound — the
first result of a 30-kernel request arrives while the other 29 are still
deriving, and a warm request (result already in the
:class:`~repro.analysis.store.BoundStore`) turns around in well under a
millisecond of analysis work.

Request (one JSON object per line)::

    {"id": 7, "kernels": ["gemm", "atax"], "config": {"max_depth": 1}}

* ``id`` — opaque; echoed verbatim on every event of the request (``null``
  when omitted), so clients can multiplex.
* ``kernels`` — registered PolyBench kernel names (see
  ``python -m repro kernels --json``); omitted or ``null`` means the whole
  suite.
* ``config`` — optional :class:`~repro.analysis.AnalysisConfig` field
  overrides, applied on top of each kernel's registered defaults (the CLI
  ``suite`` flags).  ``executor``/``n_jobs`` here override the server's own
  defaults for this request (such a request runs on its own pool; all other
  requests share the server's).  ``cache_dir`` is rejected: the bound store
  is server-side state (``--cache-dir``/``--no-cache`` on ``serve``).

A ``{"stats": true}`` request (optionally with an ``id``) is answered with
one ``stats`` event instead of results: service uptime, the number of
analysis requests currently in flight across **all** connections, totals
served, and a cheap store snapshot (entry/byte counts from ``stat()`` plus
this process's session hit/miss/write counters — the store is never parsed
entry-by-entry while requests are running).

Events (streamed, in completion order)::

    {"id": 7, "event": "result", "kernel": "gemm", "elapsed_ms": 0.4,
     "result": { ... IOBoundResult.to_dict() ... }}
    {"id": 7, "event": "done", "results": 2, "derivations": 0,
     "elapsed_ms": 0.9}

The ``result`` payload is byte-compatible with the entries of the
``suite --json`` document (:mod:`repro.analysis.serialization`): collecting
the ``result`` events of a request and wrapping them with
``results_to_document`` reproduces that interchange format exactly, and
``IOBoundResult.from_dict`` reloads each one.  A malformed line, unknown
kernel or invalid config yields one terminal ``error`` event instead::

    {"id": null, "event": "error", "error": "..."}

Concurrency model
-----------------
The TCP front-end (:class:`ServiceServer`) serves **one thread per
connection**: a warm request on one connection turns around while a cold
30-kernel request is still deriving on another.  Requests *within* one
stream are still served sequentially (JSON-lines has no framing for
interleaved responses on a single byte stream) — clients that want
concurrent requests open concurrent connections.  All connections share ONE
:class:`AnalysisService`: one bound store and one lazily-created executor
pool, so every concurrent request's derivation tasks are multiplexed into
the same scheduler ready-queue machinery and worker pool rather than each
request spawning its own workers.

Because any number of requests can be deriving at once, per-request
accounting must never read the process-global
:func:`~repro.analysis.derivation_count` (two overlapping requests would
each report the combined total): every request carries its own
:class:`~repro.analysis.StreamCounters` through
:func:`~repro.polybench.analyze_suite_stream`, and its ``done`` event
reports exactly that stream's derivations.

Shutdown: :meth:`ServiceServer.server_close` (the ``with`` exit) stops
accepting connections and **drains** — handler threads are non-daemonic and
joined, so every in-flight request streams its remaining events before the
socket closes.  :meth:`AnalysisService.close` then releases the shared pool
exactly once, however many threads race it.  The server holds no
per-request state beyond the shared bound store, so restarting it is always
safe.
"""

from __future__ import annotations

import dataclasses
import json
import socketserver
import threading
import time
from typing import IO, Any, Iterable, Iterator

from .analysis import (
    AnalysisConfig,
    BoundStore,
    Executor,
    StreamCounters,
    resolve_executor,
)
from .polybench import analyze_suite_stream, kernel_names

#: Version tag of the request/event protocol (bumped on breaking changes;
#: echoed by the ``hello`` event so clients can refuse a mismatch).  The
#: ``stats`` request/event pair is a backward-compatible addition: clients
#: that never send ``{"stats": true}`` never see the new event.
PROTOCOL_VERSION = 1

#: AnalysisConfig fields a request's ``config`` object may override.
#: ``cache_dir`` is excluded on purpose: the store is server-side state, and
#: silently honouring a client-supplied root would either be ignored or
#: redirect the server's persistence — both surprising.  Requests that need
#: different storage talk to a differently-configured server.  A request
#: supplying it gets a purposeful rejection naming that reason (see
#: :meth:`AnalysisService._validate`), not a generic unknown-field error.
_CONFIG_FIELDS = {field.name for field in dataclasses.fields(AnalysisConfig)} - {
    "cache_dir"
}


class ServiceError(ValueError):
    """A malformed or unsatisfiable request (reported, never fatal)."""


class AnalysisService:
    """The transport-agnostic request handler behind ``repro serve``.

    One instance serves any number of requests — and, in socket mode, any
    number of **concurrent** connections: it owns the service-level shared
    state (the bound store, the lazily-created executor pool requests
    inherit unless their ``config`` overrides it, and the in-flight/uptime
    bookkeeping behind the ``stats`` event), all guarded for concurrent
    handler threads.
    """

    def __init__(
        self,
        store: BoundStore | None = None,
        executor: "Executor | str | None" = None,
        n_jobs: int | None = None,
    ):
        self.store = store
        self.executor = executor
        self.n_jobs = n_jobs
        # The shared pool behind every request that does not override the
        # executor settings: resolved lazily on first use, reused across
        # requests (a per-request pool would pay worker spawn + imports on
        # every request), closed by close().  A live instance passed in
        # stays the caller's to close.
        self._owns_shared = executor is None or isinstance(executor, str)
        self._shared: Executor | None = None
        # One lock covers the shared-pool lifecycle and the request
        # bookkeeping: both are touched from every connection's handler
        # thread.  Unguarded, two cold connections arriving together both
        # observe `_shared is None` and resolve two pools — one leaks.
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._in_flight = 0
        self._requests_served = 0

    def _default_executor(self) -> "Executor | None":
        if not self._owns_shared:
            return self.executor  # a live instance the caller owns
        with self._lock:
            if self._shared is None:
                self._shared = resolve_executor(self.executor, self.n_jobs or 1)
            return self._shared

    def close(self) -> None:
        """Release the shared executor pool (idempotent, thread-safe).

        Concurrent callers race on the swap under the lock, so exactly one
        of them closes the pool — the shutdown path calls this after the
        TCP server has drained its handler threads.
        """
        with self._lock:
            shared, self._shared = self._shared, None
        if self._owns_shared and shared is not None:
            shared.close()

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- service bookkeeping ----------------------------------------------------

    def _request_started(self) -> None:
        with self._lock:
            self._in_flight += 1
            self._requests_served += 1

    def _request_finished(self) -> None:
        with self._lock:
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        """Analysis requests currently being served, across all connections."""
        with self._lock:
            return self._in_flight

    def stats_event(self, request_id: Any = None) -> dict[str, Any]:
        """The ``stats`` event payload: uptime, in-flight work, store snapshot."""
        with self._lock:
            in_flight = self._in_flight
            served = self._requests_served
        store_stats = None
        if self.store is not None:
            # quick=True: counts and bytes from stat() only — a monitoring
            # probe must not parse the whole store while requests run.
            snapshot = self.store.stats(quick=True)
            store_stats = {
                "root": snapshot.root,
                "entries": snapshot.entries,
                "total_bytes": snapshot.total_bytes,
                "hits": snapshot.hits,
                "misses": snapshot.misses,
                "writes": snapshot.writes,
            }
        return {
            "id": request_id,
            "event": "stats",
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "in_flight": in_flight,
            "requests_served": served,
            "kernels": len(kernel_names()),
            "store": store_stats,
        }

    # -- request handling -----------------------------------------------------

    def handle_request(self, line: str) -> Iterator[dict[str, Any]]:
        """Serve one request line, yielding protocol events as they happen."""
        started = time.perf_counter()
        request_id: Any = None

        def elapsed_ms() -> float:
            return round((time.perf_counter() - started) * 1000, 3)

        try:
            request = self._parse(line)
            request_id = request.get("id")
            if "stats" in request:
                yield self._validated_stats_event(request, request_id)
                return
            names, overrides = self._validate(request)
        except ServiceError as error:
            yield {"id": request_id, "event": "error", "error": str(error)}
            return

        # A request overriding executor settings gets its own (request-owned,
        # scheduler-closed) pool; everything else shares the server's.
        executor = overrides.pop("executor", None)
        n_jobs = overrides.pop("n_jobs", None)
        if executor is not None or n_jobs is not None:
            if executor is None:
                # n_jobs alone resizes, it does not change *kind*: inherit
                # the server's executor choice (its registry name when the
                # server holds a live instance) rather than falling through
                # to the process-when-n_jobs>1 auto-selection.
                if self.executor is None or isinstance(self.executor, str):
                    executor = self.executor
                else:
                    executor = getattr(self.executor, "name", None)
            request_executor: "Executor | str | None" = executor
            request_jobs = n_jobs if n_jobs is not None else self.n_jobs
        else:
            request_executor = self._default_executor()
            request_jobs = self.n_jobs
        # Per-request accounting: the process-global derivation_count()
        # aggregates over every concurrently-running request, so `done` must
        # report from a counter scoped to this request's stream alone.
        counters = StreamCounters()
        count = 0
        self._request_started()
        try:
            try:
                for analysis in analyze_suite_stream(
                    names,
                    store=self.store,
                    executor=request_executor,
                    n_jobs=request_jobs,
                    counters=counters,
                    **overrides,
                ):
                    count += 1
                    yield {
                        "id": request_id,
                        "event": "result",
                        "kernel": analysis.spec.name,
                        "elapsed_ms": elapsed_ms(),
                        "result": analysis.result.to_dict(),
                    }
            except (ValueError, KeyError, TypeError) as error:
                # Config combinations only the derivation itself can reject
                # (e.g. an unknown strategy name) surface here: report and
                # move on to the next request rather than killing the server.
                message = error.args[0] if error.args else str(error)
                yield {"id": request_id, "event": "error", "error": str(message)}
                return
            yield {
                "id": request_id,
                "event": "done",
                "results": count,
                "derivations": counters.derivations,
                "elapsed_ms": elapsed_ms(),
            }
        finally:
            # Runs on normal completion AND on a consumer hanging up
            # mid-stream (generator close): in-flight never drifts.
            self._request_finished()

    def serve_lines(self, lines: Iterable[str]) -> Iterator[dict[str, Any]]:
        """Serve a whole stream of request lines (blank lines are ignored)."""
        yield {
            "event": "hello",
            "protocol": PROTOCOL_VERSION,
            "kernels": len(kernel_names()),
        }
        for line in lines:
            if not line.strip():
                continue
            yield from self.handle_request(line)

    def serve_stream(self, in_stream: IO[str], out_stream: IO[str]) -> None:
        """Pump ``in_stream`` requests into ``out_stream`` events until EOF.

        Every event is written as one line and flushed immediately — the
        streaming contract: a client piping requests in sees each result
        the moment its derivation lands, not when the batch ends.  A client
        that hangs up mid-stream (closed pipe, reset connection) ends the
        stream cleanly — same contract as the TCP handler, no traceback.
        """
        events = self.serve_lines(in_stream)
        try:
            for event in events:
                out_stream.write(json.dumps(event) + "\n")
                out_stream.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client hung up mid-stream: end cleanly, no traceback
        finally:
            # Explicitly unwind the generator chain so an abandoned
            # request's bookkeeping (in-flight count, executor ownership)
            # resolves now, not at garbage collection.
            events.close()

    # -- request parsing ------------------------------------------------------

    def _parse(self, line: str) -> dict[str, Any]:
        try:
            request = json.loads(line)
        except ValueError as error:
            raise ServiceError(f"request is not valid JSON: {error}") from None
        if not isinstance(request, dict):
            raise ServiceError(
                f"request must be a JSON object, got {type(request).__name__}"
            )
        return request

    def _validated_stats_event(
        self, request: dict[str, Any], request_id: Any
    ) -> dict[str, Any]:
        """Validate a ``{"stats": true}`` request and build its reply."""
        unknown_keys = set(request) - {"id", "stats"}
        if unknown_keys:
            raise ServiceError(
                f'a stats request takes only "id": remove {sorted(unknown_keys)}'
            )
        if request["stats"] is not True:
            raise ServiceError('"stats" must be the JSON value true')
        return self.stats_event(request_id)

    def _validate(self, request: dict[str, Any]) -> tuple[list[str] | None, dict]:
        unknown_keys = set(request) - {"id", "kernels", "config"}
        if unknown_keys:
            raise ServiceError(f"unknown request keys: {sorted(unknown_keys)}")

        names = request.get("kernels")
        if names is not None:
            if not isinstance(names, list) or not all(
                isinstance(name, str) for name in names
            ):
                raise ServiceError('"kernels" must be a list of kernel names')
            unknown = sorted(set(names) - set(kernel_names()))
            if unknown:
                raise ServiceError(
                    f"unknown kernels: {unknown} (see `python -m repro kernels --json`)"
                )

        overrides = request.get("config") or {}
        if not isinstance(overrides, dict):
            raise ServiceError('"config" must be a JSON object of AnalysisConfig fields')
        if "cache_dir" in overrides:
            # The documented purposeful rejection, not a generic unknown-field
            # error: the field exists on AnalysisConfig, it is just not a
            # per-request knob.
            raise ServiceError(
                '"cache_dir" cannot be set per request: the bound store is '
                "server-side state shared by every request (configure it with "
                "--cache-dir/--no-cache on `repro serve`)"
            )
        unknown_fields = set(overrides) - _CONFIG_FIELDS
        if unknown_fields:
            raise ServiceError(f"unknown config fields: {sorted(unknown_fields)}")
        if "strategies" in overrides and overrides["strategies"] is not None:
            overrides["strategies"] = tuple(overrides["strategies"])
        try:
            # Validate the override values eagerly (range checks, executor
            # names, ...) so a bad request fails before any scheduling.
            AnalysisConfig(**overrides)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"invalid config: {error}") from None
        return names, overrides


class _TCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        reader = (raw.decode("utf-8", errors="replace") for raw in self.rfile)
        events = service.serve_lines(reader)
        try:
            for event in events:
                self.wfile.write((json.dumps(event) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; nothing to clean up
        finally:
            # Unwind the abandoned request's bookkeeping (in-flight count)
            # immediately, not whenever the GC finalizes the generator.
            events.close()


class ServiceServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    """Thread-per-connection TCP front-end around an :class:`AnalysisService`.

    Concurrent on purpose: a warm request turns around in sub-millisecond
    analysis time on one connection while a cold full-suite request is
    still streaming on another.  Requests *within* a connection stay
    sequential (JSON-lines has no response framing), and every connection's
    derivation tasks share the one service-owned executor pool — the
    parallelism budget is the pool, not the connection count.

    Shutdown semantics: handler threads are **non-daemonic** and
    ``server_close`` (the ``with`` exit) blocks until they finish, so
    stopping the server drains every in-flight request — each connected
    client receives its remaining ``result``/``done`` events — before the
    listening socket is torn down.  Close the shared
    :class:`AnalysisService` *after* the server, exactly as
    ``python -m repro serve`` does.  ``allow_reuse_address`` keeps quick
    restarts from tripping over ``TIME_WAIT``.
    """

    allow_reuse_address = True
    # Explicit (these are the ThreadingMixIn defaults, but they ARE the
    # drain-on-shutdown contract documented above): handler threads outlive
    # nothing — server_close() joins them all.
    daemon_threads = False
    block_on_close = True

    def __init__(self, address: tuple[str, int], service: AnalysisService):
        super().__init__(address, _TCPHandler)
        self.service = service
