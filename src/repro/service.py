"""JSON-lines analysis service: the long-lived front-end over the scheduler.

``python -m repro serve`` turns the analyzer into a service: it reads one
JSON **request** per line (stdin by default, or each TCP connection with
``--port``) and streams back one JSON **event** per line as the event-driven
scheduler (:mod:`repro.analysis.scheduler`) lands each kernel's bound — the
first result of a 30-kernel request arrives while the other 29 are still
deriving, and a warm request (result already in the
:class:`~repro.analysis.store.BoundStore`) turns around in well under a
millisecond of analysis work.

Request (one JSON object per line)::

    {"id": 7, "kernels": ["gemm", "atax"], "config": {"max_depth": 1}}

* ``id`` — opaque; echoed verbatim on every event of the request (``null``
  when omitted), so clients can multiplex.
* ``kernels`` — registered PolyBench kernel names (see
  ``python -m repro kernels --json``); omitted or ``null`` means the whole
  suite.
* ``config`` — optional :class:`~repro.analysis.AnalysisConfig` field
  overrides, applied on top of each kernel's registered defaults (the CLI
  ``suite`` flags).  ``executor``/``n_jobs`` here override the server's own
  defaults for this request (such a request runs on its own pool; all other
  requests share the server's).  ``cache_dir`` is rejected: the bound store
  is server-side state (``--cache-dir``/``--no-cache`` on ``serve``).

Events (streamed, in completion order)::

    {"id": 7, "event": "result", "kernel": "gemm", "elapsed_ms": 0.4,
     "result": { ... IOBoundResult.to_dict() ... }}
    {"id": 7, "event": "done", "results": 2, "derivations": 0,
     "elapsed_ms": 0.9}

The ``result`` payload is byte-compatible with the entries of the
``suite --json`` document (:mod:`repro.analysis.serialization`): collecting
the ``result`` events of a request and wrapping them with
``results_to_document`` reproduces that interchange format exactly, and
``IOBoundResult.from_dict`` reloads each one.  A malformed line, unknown
kernel or invalid config yields one terminal ``error`` event instead::

    {"id": null, "event": "error", "error": "..."}

Requests in one stream are served sequentially (JSON-lines has no framing
for interleaved responses); concurrency lives *inside* a request, where
every kernel's tasks share the server's executor pool.  The server holds no
per-request state beyond the shared bound store, so restarting it is always
safe.
"""

from __future__ import annotations

import dataclasses
import json
import socketserver
import time
from typing import IO, Any, Iterable, Iterator

from .analysis import (
    AnalysisConfig,
    BoundStore,
    Executor,
    derivation_count,
    resolve_executor,
)
from .polybench import analyze_suite_stream, kernel_names

#: Version tag of the request/event protocol (bumped on breaking changes;
#: echoed by the ``hello`` event so clients can refuse a mismatch).
PROTOCOL_VERSION = 1

#: AnalysisConfig fields a request's ``config`` object may override.
#: ``cache_dir`` is excluded on purpose: the store is server-side state, and
#: silently honouring a client-supplied root would either be ignored or
#: redirect the server's persistence — both surprising.  Requests that need
#: different storage talk to a differently-configured server.
_CONFIG_FIELDS = {field.name for field in dataclasses.fields(AnalysisConfig)} - {
    "cache_dir"
}


class ServiceError(ValueError):
    """A malformed or unsatisfiable request (reported, never fatal)."""


class AnalysisService:
    """The transport-agnostic request handler behind ``repro serve``.

    One instance serves any number of requests (and, in socket mode, any
    number of connections, one after the other): it owns the service-level
    defaults — the shared bound store and the executor settings requests
    inherit unless their ``config`` overrides them.
    """

    def __init__(
        self,
        store: BoundStore | None = None,
        executor: "Executor | str | None" = None,
        n_jobs: int | None = None,
    ):
        self.store = store
        self.executor = executor
        self.n_jobs = n_jobs
        # The shared pool behind every request that does not override the
        # executor settings: resolved lazily on first use, reused across
        # requests (a per-request pool would pay worker spawn + imports on
        # every request), closed by close().  A live instance passed in
        # stays the caller's to close.
        self._owns_shared = executor is None or isinstance(executor, str)
        self._shared: Executor | None = None

    def _default_executor(self) -> "Executor | None":
        if not self._owns_shared:
            return self.executor  # a live instance the caller owns
        if self._shared is None:
            self._shared = resolve_executor(self.executor, self.n_jobs or 1)
        return self._shared

    def close(self) -> None:
        """Release the shared executor pool (idempotent)."""
        if self._owns_shared and self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling -----------------------------------------------------

    def handle_request(self, line: str) -> Iterator[dict[str, Any]]:
        """Serve one request line, yielding protocol events as they happen."""
        started = time.perf_counter()
        request_id: Any = None

        def elapsed_ms() -> float:
            return round((time.perf_counter() - started) * 1000, 3)

        try:
            request = self._parse(line)
            request_id = request.get("id")
            names, overrides = self._validate(request)
        except ServiceError as error:
            yield {"id": request_id, "event": "error", "error": str(error)}
            return

        # A request overriding executor settings gets its own (request-owned,
        # scheduler-closed) pool; everything else shares the server's.
        executor = overrides.pop("executor", None)
        n_jobs = overrides.pop("n_jobs", None)
        if executor is not None or n_jobs is not None:
            if executor is None:
                # n_jobs alone resizes, it does not change *kind*: inherit
                # the server's executor choice (its registry name when the
                # server holds a live instance) rather than falling through
                # to the process-when-n_jobs>1 auto-selection.
                if self.executor is None or isinstance(self.executor, str):
                    executor = self.executor
                else:
                    executor = getattr(self.executor, "name", None)
            request_executor: "Executor | str | None" = executor
            request_jobs = n_jobs if n_jobs is not None else self.n_jobs
        else:
            request_executor = self._default_executor()
            request_jobs = self.n_jobs
        derived_before = derivation_count()
        count = 0
        try:
            for analysis in analyze_suite_stream(
                names,
                store=self.store,
                executor=request_executor,
                n_jobs=request_jobs,
                **overrides,
            ):
                count += 1
                yield {
                    "id": request_id,
                    "event": "result",
                    "kernel": analysis.spec.name,
                    "elapsed_ms": elapsed_ms(),
                    "result": analysis.result.to_dict(),
                }
        except (ValueError, KeyError, TypeError) as error:
            # Config combinations only the derivation itself can reject
            # (e.g. an unknown strategy name) surface here: report and move
            # on to the next request rather than killing the server.
            message = error.args[0] if error.args else str(error)
            yield {"id": request_id, "event": "error", "error": str(message)}
            return
        yield {
            "id": request_id,
            "event": "done",
            "results": count,
            "derivations": derivation_count() - derived_before,
            "elapsed_ms": elapsed_ms(),
        }

    def serve_lines(self, lines: Iterable[str]) -> Iterator[dict[str, Any]]:
        """Serve a whole stream of request lines (blank lines are ignored)."""
        yield {
            "event": "hello",
            "protocol": PROTOCOL_VERSION,
            "kernels": len(kernel_names()),
        }
        for line in lines:
            if not line.strip():
                continue
            yield from self.handle_request(line)

    def serve_stream(self, in_stream: IO[str], out_stream: IO[str]) -> None:
        """Pump ``in_stream`` requests into ``out_stream`` events until EOF.

        Every event is written as one line and flushed immediately — the
        streaming contract: a client piping requests in sees each result
        the moment its derivation lands, not when the batch ends.
        """
        for event in self.serve_lines(in_stream):
            out_stream.write(json.dumps(event) + "\n")
            out_stream.flush()

    # -- request parsing ------------------------------------------------------

    def _parse(self, line: str) -> dict[str, Any]:
        try:
            request = json.loads(line)
        except ValueError as error:
            raise ServiceError(f"request is not valid JSON: {error}") from None
        if not isinstance(request, dict):
            raise ServiceError(
                f"request must be a JSON object, got {type(request).__name__}"
            )
        return request

    def _validate(self, request: dict[str, Any]) -> tuple[list[str] | None, dict]:
        unknown_keys = set(request) - {"id", "kernels", "config"}
        if unknown_keys:
            raise ServiceError(f"unknown request keys: {sorted(unknown_keys)}")

        names = request.get("kernels")
        if names is not None:
            if not isinstance(names, list) or not all(
                isinstance(name, str) for name in names
            ):
                raise ServiceError('"kernels" must be a list of kernel names')
            unknown = sorted(set(names) - set(kernel_names()))
            if unknown:
                raise ServiceError(
                    f"unknown kernels: {unknown} (see `python -m repro kernels --json`)"
                )

        overrides = request.get("config") or {}
        if not isinstance(overrides, dict):
            raise ServiceError('"config" must be a JSON object of AnalysisConfig fields')
        unknown_fields = set(overrides) - _CONFIG_FIELDS
        if unknown_fields:
            raise ServiceError(f"unknown config fields: {sorted(unknown_fields)}")
        if "strategies" in overrides and overrides["strategies"] is not None:
            overrides["strategies"] = tuple(overrides["strategies"])
        try:
            # Validate the override values eagerly (range checks, executor
            # names, ...) so a bad request fails before any scheduling.
            AnalysisConfig(**overrides)
        except (TypeError, ValueError) as error:
            raise ServiceError(f"invalid config: {error}") from None
        return names, overrides


class _TCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        reader = (raw.decode("utf-8", errors="replace") for raw in self.rfile)
        try:
            for event in service.serve_lines(reader):
                self.wfile.write((json.dumps(event) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-stream; nothing to clean up


class ServiceServer(socketserver.TCPServer):
    """One-connection-at-a-time TCP front-end around an :class:`AnalysisService`.

    Sequential on purpose: requests inside a connection are already served
    in order (JSON-lines has no response framing), and the parallelism that
    matters — every kernel's derivation tasks — lives in the executor pool
    shared by all requests.  ``allow_reuse_address`` keeps quick restarts
    from tripping over ``TIME_WAIT``.
    """

    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: AnalysisService):
        super().__init__(address, _TCPHandler)
        self.service = service
