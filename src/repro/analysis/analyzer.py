"""The :class:`Analyzer`: the configurable driver of Algorithm 6.

The analyzer separates *what* to derive (the strategies and knobs captured by
:class:`~repro.analysis.config.AnalysisConfig`) from *how* the derivation is
executed.  A derivation is an explicit three-stage pipeline:

1. **plan** — :func:`repro.analysis.plan.plan_program` asks every configured
   strategy for its independent :class:`~repro.analysis.plan.DerivationTask`
   units (one per statement x strategy x depth);
2. **schedule** — :func:`repro.analysis.scheduler.schedule_plans` runs the
   whole batch's tasks through one event loop over a pluggable
   :class:`~repro.analysis.executor.Executor` (serial, thread pool or
   process pool, selected by ``AnalysisConfig(executor=..., n_jobs=...)`` or
   ``$REPRO_EXECUTOR``), memoising each finished task in the
   :class:`~repro.analysis.store.BoundStore` keyed by its task fingerprint
   and handing each program's task set back the moment its last task lands;
3. **combine** — :func:`combine_plan` merges the task results **in plan
   order** (never completion order) through the decomposition lemma, so the
   final bound, its sub-bound list and its log are byte-identical across
   executors and schedulings.

:meth:`Analyzer.analyze_stream` exposes the streaming shape directly —
results are yielded in completion order while later programs are still
deriving — and :meth:`Analyzer.analyze_many` is a thin input-order collector
over the same stream.  Both feed the whole batch's task set through one
shared executor: a single ``suite --jobs 8`` schedules every kernel's tasks
in one work queue instead of paying a pool per program.

The legacy :func:`repro.core.iolb.derive_bounds` free function is now a thin
wrapper over this class.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import sympy

from ..core.bounds import IOBoundResult, SubBound, asymptotic_leading
from ..core.decomposition import combine_sub_q
from ..ir import AffineProgram
from .config import AnalysisConfig
from .executor import Executor, resolve_executor
from .plan import (
    DerivationPlan,
    TaskResult,
    plan_program,
    program_fingerprint,
)
from .scheduler import (
    StreamCounters,
    _count_program_derivation,
    derivation_count,
    reset_derivation_count,
    reset_task_derivation_count,
    schedule_plans,
    task_derivation_count,
)
from .store import DERIVATION_VERSION, BoundStore, resolve_store

__all__ = [
    "Analyzer",
    "combine_plan",
    "derivation_count",
    "execute_plan",
    "execute_plans",
    "reset_derivation_count",
    "reset_task_derivation_count",
    "result_key",
    "run_analysis",
    "stream_analyses",
    "task_derivation_count",
]


# -- the pipeline stages ------------------------------------------------------


def execute_plans(
    plans: Sequence[DerivationPlan],
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> list[list[TaskResult]]:
    """Execute every task of every plan through one shared executor.

    The barrier-shaped collector over the event-driven scheduler: tasks
    already present in ``store`` (matched by task fingerprint) are reloaded
    instead of re-executed, freshly executed tasks are written back one by
    one as they complete (so a run killed half-way leaves its finished
    sub-bounds behind for the next run to resume from), and the call returns
    only once every plan is done.

    Returns one ``TaskResult`` list per plan, each in **plan order**
    regardless of the order in which the executor completed the tasks.
    Callers that want results as they land should iterate
    :func:`~repro.analysis.scheduler.schedule_plans` directly (or use
    :meth:`Analyzer.analyze_stream`).
    """
    results: list[list[TaskResult] | None] = [None] * len(plans)
    for plan_index, task_results in schedule_plans(plans, executor=executor, store=store):
        results[plan_index] = task_results
    # Every slot is filled: the scheduler yields each plan exactly once (a
    # task failure propagates out of the loop instead of leaving holes).
    return results  # type: ignore[return-value]


def execute_plan(
    plan: DerivationPlan,
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> list[TaskResult]:
    """Execute one plan's tasks (see :func:`execute_plans`)."""
    return execute_plans([plan], executor=executor, store=store)[0]


def combine_plan(
    plan: DerivationPlan, task_results: Sequence[TaskResult]
) -> IOBoundResult:
    """Combine executed tasks into the final bound (deterministic stage).

    ``task_results`` must be in plan order; the sub-bound list and the log
    are their concatenation in that order, followed by the decomposition
    lemma (Alg. 1), the compulsory input misses and the clamp at zero:

        Q_low  =  |inputs|  +  max(0, combined sub-bounds).
    """
    program = plan.program
    instance = plan.config.heuristic_instance(program.params)

    log: list[str] = []
    sub_bounds: list[SubBound] = []
    for task_result in task_results:
        sub_bounds.extend(task_result.sub_bounds)
        log.extend(task_result.log)

    combined, accepted = combine_sub_q(sub_bounds, instance)
    log.append(f"combined {len(accepted)}/{len(sub_bounds)} sub-bounds")

    input_size = program.input_size()
    total_flops = program.total_flops()
    expression = input_size + sympy.Max(sympy.Integer(0), combined)
    smooth = sympy.expand(input_size + sympy.Max(sympy.Integer(0), combined))
    params = set(program.params)
    asymptotic = asymptotic_leading(smooth, params)

    return IOBoundResult(
        program_name=program.name,
        parameters=program.params,
        expression=expression,
        smooth=smooth,
        asymptotic=asymptotic,
        input_size=input_size,
        total_flops=total_flops,
        sub_bounds=sub_bounds,
        log=log,
    )


def run_analysis(
    program: AffineProgram,
    config: AnalysisConfig,
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> IOBoundResult:
    """One full derivation (Algorithm 6): plan, execute, combine.

    The result-cache-free core.  ``executor`` defaults to the config's
    (``AnalysisConfig(executor=...)`` / ``$REPRO_EXECUTOR`` / serial);
    passing a ``store`` additionally memoises the individual tasks, so an
    interrupted run resumes from its finished sub-bounds.  An executor this
    call resolves itself (a name or ``None``) is closed in a ``finally`` —
    cancelling any still-queued tasks — so a KeyboardInterrupt mid-run
    leaves no orphan workers behind.
    """
    _count_program_derivation()
    plan = plan_program(program, config)
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(
        executor if executor is not None else config.executor, config.n_jobs
    )
    try:
        task_results = execute_plan(plan, executor=resolved, store=store)
        return combine_plan(plan, task_results)
    finally:
        if owns_executor:
            resolved.close()


def result_key(program: AffineProgram, config: AnalysisConfig) -> str:
    """Result-store key: program fingerprint x config signature x version.

    The derivation version guards correctness across upgrades: a bound
    derived by older code with different semantics keys differently and is
    simply never found, forcing a fresh derivation.
    """
    config_digest = hashlib.sha256(
        f"v{DERIVATION_VERSION}:{config.signature()!r}".encode("utf-8")
    ).hexdigest()
    return f"{program_fingerprint(program)}-{config_digest[:16]}"


def stream_analyses(
    jobs: Sequence[tuple[AffineProgram, AnalysisConfig]],
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
    counters: StreamCounters | None = None,
) -> Iterator[tuple[int, IOBoundResult]]:
    """Stream ``(job_index, result)`` pairs in completion order.

    The engine under both :meth:`Analyzer.analyze_stream` (one config, many
    programs) and :func:`repro.polybench.analyze_suite_stream` (per-kernel
    configs): every job's tasks enter one
    :func:`~repro.analysis.scheduler.schedule_plans` ready queue, and a
    job's bound is combined and yielded the moment its last task lands —
    while other jobs' tasks are still running.  A per-stream
    :class:`~repro.analysis.scheduler.StreamCounters` counts only *this*
    stream's derivations — the process-global :func:`derivation_count`
    aggregates over every stream running concurrently in the process, so a
    concurrent front-end must account per stream, never by global deltas.

    Ordering: store-satisfied jobs first (in job order — a warm job never
    waits behind a cold one), then completion order.  Jobs that share a
    result key (same program content, same result-relevant config) are
    derived once and fanned out to every index that asked, immediately after
    one another.  Results are byte-identical to the barrier pipeline's: only
    *when* a result is yielded depends on scheduling, never its content.
    """
    jobs = list(jobs)
    # One fingerprint+digest pass per job: the key is reused for the cache
    # check, the dedup grouping and the result write-back below.
    keys = [result_key(program, config) for program, config in jobs]
    pending: list[int] = []
    for index, (program, config) in enumerate(jobs):
        cached = store.get(keys[index]) if store is not None else None
        if cached is not None:
            yield index, cached
        else:
            pending.append(index)
    if not pending:
        return

    # Duplicate jobs (same result key) share one derivation: the result is
    # fanned out to every index that asked for it.
    by_key: dict[str, list[int]] = {}
    for index in pending:
        by_key.setdefault(keys[index], []).append(index)
    groups = list(by_key.values())

    plans = [plan_program(*jobs[indices[0]]) for indices in groups]
    for plan_index, task_results in schedule_plans(
        plans, executor=executor, store=store, counters=counters
    ):
        _count_program_derivation(counters)
        result = combine_plan(plans[plan_index], task_results)
        indices = groups[plan_index]
        _program, config = jobs[indices[0]]
        if store is not None:
            store.put(
                keys[indices[0]],
                result,
                metadata={"config_signature": repr(config.signature())},
            )
        for index in indices:
            yield index, result


class Analyzer:
    """Derive I/O lower bounds for affine programs under one configuration.

    Typical usage::

        from repro.analysis import AnalysisConfig, Analyzer

        analyzer = Analyzer(AnalysisConfig(max_depth=1))
        result = analyzer.analyze(program)
        results = analyzer.analyze_many(programs)   # fans out when n_jobs > 1
        for name, result in analyzer.analyze_stream(programs):
            ...                                     # completion order, streamed

    With a :class:`~repro.analysis.store.BoundStore` attached (an explicit
    ``store=`` argument, or ``config.cache_dir`` as a thin alias for a store
    rooted there), results are memoised on disk at two granularities: whole
    results keyed by the program fingerprint and the result-relevant part of
    the configuration, and individual derivation tasks keyed by their task
    fingerprints — so repeated runs skip everything, and interrupted or
    config-tweaked runs skip everything that still applies.  Pass
    ``store=BoundStore()`` to share the default per-user store
    (``$REPRO_STORE`` or ``~/.cache/repro``).
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        store: BoundStore | str | Path | None = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        self.store = resolve_store(store, self.config.cache_dir)

    # -- single-program entry point -----------------------------------------

    def analyze(
        self, program: AffineProgram, executor: Executor | str | None = None
    ) -> IOBoundResult:
        """Derive the parametric I/O lower bound for one program."""
        cached = self._cache_load(program)
        if cached is not None:
            return cached
        result = run_analysis(program, self.config, executor=executor, store=self.store)
        self._cache_store(program, result)
        return result

    def plan(self, program: AffineProgram) -> DerivationPlan:
        """The derivation plan this analyzer would execute for ``program``."""
        return plan_program(program, self.config)

    # -- batch entry points ---------------------------------------------------

    def analyze_stream(
        self,
        programs: Iterable[AffineProgram],
        executor: Executor | str | None = None,
        counters: StreamCounters | None = None,
    ) -> Iterator[tuple[str, IOBoundResult]]:
        """Stream ``(program_name, result)`` pairs in **completion order**.

        The streaming face of the batch pipeline: every uncached program's
        tasks enter one event-driven scheduler ready queue, and a program's
        bound is yielded the moment its last task lands — while other
        programs' tasks are still running.  Store-satisfied programs stream
        out first (in input order) without waiting on any derivation, which
        is what gives a warm service request sub-millisecond turnaround.

        Each input program yields exactly one pair; duplicates (same content
        and result-relevant config) are derived once and fanned out.  The
        yielded results are byte-identical to :meth:`analyze_many`'s — only
        the iteration order differs.
        """
        batch = list(programs)
        jobs = [(program, self.config) for program in batch]
        resolved = executor if executor is not None else self.config.executor
        for index, result in stream_analyses(
            jobs, executor=resolved, store=self.store, counters=counters
        ):
            yield batch[index].name, result

    def analyze_many(
        self,
        programs: Iterable[AffineProgram],
        executor: Executor | str | None = None,
    ) -> list[IOBoundResult]:
        """Derive bounds for a batch of programs, preserving input order.

        A plan-order collector over :meth:`analyze_stream`: all uncached
        derivations flow through **one** shared executor (the config's, or
        an explicit ``executor=`` — pass a live instance to share one pool
        across batches), and the collected list is index-aligned with
        ``programs``.  Every program yields exactly one result, and a
        derivation that silently produces nothing raises
        :class:`RuntimeError` rather than shifting later results onto
        earlier slots.
        """
        batch: Sequence[AffineProgram] = list(programs)
        jobs = [(program, self.config) for program in batch]
        results: list[IOBoundResult | None] = [None] * len(batch)
        resolved = executor if executor is not None else self.config.executor
        for index, result in stream_analyses(jobs, executor=resolved, store=self.store):
            results[index] = result

        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            names = [batch[index].name for index in missing]
            raise RuntimeError(
                f"analyze_many produced no result for programs at indices {missing} "
                f"({names}); refusing to return a misaligned batch"
            )
        return results

    # -- persistent store ------------------------------------------------------

    def cache_key(self, program: AffineProgram) -> str:
        """Store key: program fingerprint x config signature x semantics version.

        See :func:`result_key` (this is it, bound to the analyzer's config).
        """
        return result_key(program, self.config)

    def _cache_load(self, program: AffineProgram) -> IOBoundResult | None:
        if self.store is None:
            return None
        return self.store.get(self.cache_key(program))

    def _cache_store(self, program: AffineProgram, result: IOBoundResult | None) -> None:
        if self.store is None or result is None:
            return
        self.store.put(
            self.cache_key(program),
            result,
            metadata={"config_signature": repr(self.config.signature())},
        )
