"""The :class:`Analyzer`: the configurable driver of Algorithm 6.

The analyzer separates *what* to derive (the strategies and knobs captured by
:class:`~repro.analysis.config.AnalysisConfig`) from *how* the derivation is
executed: one program (:meth:`Analyzer.analyze`), or a batch fanned out over
worker processes with per-program disk memoisation
(:meth:`Analyzer.analyze_many`).

The legacy :func:`repro.core.iolb.derive_bounds` free function is now a thin
wrapper over this class.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Sequence

import sympy

from ..core.bounds import IOBoundResult, SubBound, asymptotic_leading
from ..core.decomposition import combine_sub_q
from ..ir import AffineProgram, DFG
from .config import AnalysisConfig
from .strategies import resolve_strategies


def program_fingerprint(program: AffineProgram) -> str:
    """Stable hex fingerprint of an affine program's mathematical content.

    The fingerprint is built from a canonical textual description (name,
    parameters, array/statement domains, dependence functions) rather than
    from pickled bytes, so it is insensitive to object identity and to the
    order in which arrays, statements or dependences were declared.
    """
    lines = [f"program {program.name}", "params " + " ".join(program.params)]
    for name in sorted(program.arrays):
        array = program.arrays[name]
        lines.append(
            f"array {name} input={array.is_input} output={array.is_output} "
            f"domain={array.domain!r}"
        )
    for name in sorted(program.statements):
        statement = program.statements[name]
        lines.append(f"statement {name} flops={statement.flops} domain={statement.domain!r}")
    for dep in sorted(
        program.dependences,
        key=lambda d: (d.sink, d.source, repr(d.function.exprs), repr(d.domain)),
    ):
        lines.append(
            f"dep {dep.source}->{dep.sink} fn={dep.function.exprs!r} domain={dep.domain!r}"
        )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


def run_analysis(program: AffineProgram, config: AnalysisConfig) -> IOBoundResult:
    """One full derivation (Algorithm 6) — the cache- and pool-free core.

    Runs every strategy named by ``config`` in order, combines the collected
    sub-bounds with the non-disjoint decomposition lemma (Alg. 1), adds the
    compulsory input misses and clamps at zero:

        Q_low  =  |inputs|  +  max(0, combined sub-bounds).
    """
    strategies = resolve_strategies(config.strategies)
    dfg = DFG.from_program(program)
    instance = config.heuristic_instance(program.params)

    log: list[str] = []
    sub_bounds: list[SubBound] = []
    for strategy in strategies:
        sub_bounds.extend(strategy.derive(dfg, config, instance, log))

    combined, accepted = combine_sub_q(sub_bounds, instance)
    log.append(f"combined {len(accepted)}/{len(sub_bounds)} sub-bounds")

    input_size = program.input_size()
    total_flops = program.total_flops()
    expression = input_size + sympy.Max(sympy.Integer(0), combined)
    smooth = sympy.expand(input_size + sympy.Max(sympy.Integer(0), combined))
    params = set(program.params)
    asymptotic = asymptotic_leading(smooth, params)

    return IOBoundResult(
        program_name=program.name,
        parameters=program.params,
        expression=expression,
        smooth=smooth,
        asymptotic=asymptotic,
        input_size=input_size,
        total_flops=total_flops,
        sub_bounds=sub_bounds,
        log=log,
    )


def _analyze_for_pool(payload: tuple[AffineProgram, AnalysisConfig]) -> IOBoundResult:
    """Module-level worker entry point (must be picklable for process pools)."""
    program, config = payload
    return run_analysis(program, config)


class Analyzer:
    """Derive I/O lower bounds for affine programs under one configuration.

    Typical usage::

        from repro.analysis import AnalysisConfig, Analyzer

        analyzer = Analyzer(AnalysisConfig(max_depth=1))
        result = analyzer.analyze(program)
        results = analyzer.analyze_many(programs)   # fans out when n_jobs > 1

    With ``config.cache_dir`` set, results are memoised on disk keyed by the
    program fingerprint and the result-relevant part of the configuration, so
    repeated suite runs and multi-process batches skip finished derivations.
    """

    def __init__(self, config: AnalysisConfig | None = None):
        self.config = config if config is not None else AnalysisConfig()

    # -- single-program entry point -----------------------------------------

    def analyze(self, program: AffineProgram) -> IOBoundResult:
        """Derive the parametric I/O lower bound for one program."""
        cached = self._cache_load(program)
        if cached is not None:
            return cached
        result = run_analysis(program, self.config)
        self._cache_store(program, result)
        return result

    # -- batch entry point ---------------------------------------------------

    def analyze_many(self, programs: Iterable[AffineProgram]) -> list[IOBoundResult]:
        """Derive bounds for a batch of programs, preserving input order.

        With ``config.n_jobs > 1`` the uncached derivations are fanned out
        over a process pool; cached results are returned without spawning
        workers.  The output list is index-aligned with ``programs``.
        """
        batch: Sequence[AffineProgram] = list(programs)
        results: list[IOBoundResult | None] = [None] * len(batch)

        pending: list[int] = []
        for index, program in enumerate(batch):
            cached = self._cache_load(program)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            workers = min(self.config.n_jobs, len(pending))
            if workers <= 1:
                for index in pending:
                    results[index] = run_analysis(batch[index], self.config)
                    self._cache_store(batch[index], results[index])
            else:
                # Workers only need the result-relevant knobs; stripping the
                # executor fields keeps the pickled payload lean and stops a
                # worker from ever re-entering the pool or the cache.
                worker_config = self.config.replace(n_jobs=1, cache_dir=None)
                with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(_analyze_for_pool, (batch[index], worker_config)): index
                        for index in pending
                    }
                    for future in concurrent.futures.as_completed(futures):
                        index = futures[future]
                        results[index] = future.result()
                        self._cache_store(batch[index], results[index])

        return [result for result in results if result is not None]

    # -- disk cache -----------------------------------------------------------

    def cache_key(self, program: AffineProgram) -> str:
        """Cache key: program fingerprint x result-relevant config signature."""
        config_digest = hashlib.sha256(
            repr(self.config.signature()).encode("utf-8")
        ).hexdigest()
        return f"{program_fingerprint(program)}-{config_digest[:16]}"

    def _cache_path(self, program: AffineProgram) -> Path | None:
        if self.config.cache_dir is None:
            return None
        return Path(self.config.cache_dir) / f"{self.cache_key(program)}.json"

    def _cache_load(self, program: AffineProgram) -> IOBoundResult | None:
        path = self._cache_path(program)
        if path is None or not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
            return IOBoundResult.from_dict(data)
        except (ValueError, KeyError, json.JSONDecodeError):
            # A truncated or stale-schema entry is treated as a miss; it will
            # be overwritten by the fresh result below.
            return None

    def _cache_store(self, program: AffineProgram, result: IOBoundResult | None) -> None:
        path = self._cache_path(program)
        if path is None or result is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent analyzers never read a half-written
        # entry (os.replace is atomic within one filesystem).
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(result.to_dict(), stream)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
