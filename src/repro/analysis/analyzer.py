"""The :class:`Analyzer`: the configurable driver of Algorithm 6.

The analyzer separates *what* to derive (the strategies and knobs captured by
:class:`~repro.analysis.config.AnalysisConfig`) from *how* the derivation is
executed: one program (:meth:`Analyzer.analyze`), or a batch fanned out over
worker processes (:meth:`Analyzer.analyze_many`), in both cases memoised
through a shared content-addressed :class:`~repro.analysis.store.BoundStore`.

The legacy :func:`repro.core.iolb.derive_bounds` free function is now a thin
wrapper over this class.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
from pathlib import Path
from typing import Iterable, Sequence

import sympy

from ..core.bounds import IOBoundResult, SubBound, asymptotic_leading
from ..core.decomposition import combine_sub_q
from ..ir import AffineProgram, DFG
from .config import AnalysisConfig
from .store import DERIVATION_VERSION, BoundStore, resolve_store
from .strategies import resolve_strategies

#: Process-wide count of full derivations actually executed (store hits do
#: not count).  Lets suites, benchmarks and tests assert that a warm store
#: run performs *zero* derivations.
_derivations = 0


def derivation_count() -> int:
    """Number of full derivations run in this process since the last reset."""
    return _derivations


def reset_derivation_count() -> int:
    """Reset the process-wide derivation counter; returns the prior count."""
    global _derivations
    previous = _derivations
    _derivations = 0
    return previous


def program_fingerprint(program: AffineProgram) -> str:
    """Stable hex fingerprint of an affine program's mathematical content.

    The fingerprint is built from a canonical textual description (name,
    parameters, array/statement domains, dependence functions) rather than
    from pickled bytes, so it is insensitive to object identity and to the
    order in which arrays, statements or dependences were declared.
    """
    lines = [f"program {program.name}", "params " + " ".join(program.params)]
    for name in sorted(program.arrays):
        array = program.arrays[name]
        lines.append(
            f"array {name} input={array.is_input} output={array.is_output} "
            f"domain={array.domain!r}"
        )
    for name in sorted(program.statements):
        statement = program.statements[name]
        lines.append(f"statement {name} flops={statement.flops} domain={statement.domain!r}")
    for dep in sorted(
        program.dependences,
        key=lambda d: (d.sink, d.source, repr(d.function.exprs), repr(d.domain)),
    ):
        lines.append(
            f"dep {dep.source}->{dep.sink} fn={dep.function.exprs!r} domain={dep.domain!r}"
        )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


def run_analysis(program: AffineProgram, config: AnalysisConfig) -> IOBoundResult:
    """One full derivation (Algorithm 6) — the cache- and pool-free core.

    Runs every strategy named by ``config`` in order, combines the collected
    sub-bounds with the non-disjoint decomposition lemma (Alg. 1), adds the
    compulsory input misses and clamps at zero:

        Q_low  =  |inputs|  +  max(0, combined sub-bounds).
    """
    global _derivations
    _derivations += 1
    strategies = resolve_strategies(config.strategies)
    dfg = DFG.from_program(program)
    instance = config.heuristic_instance(program.params)

    log: list[str] = []
    sub_bounds: list[SubBound] = []
    for strategy in strategies:
        sub_bounds.extend(strategy.derive(dfg, config, instance, log))

    combined, accepted = combine_sub_q(sub_bounds, instance)
    log.append(f"combined {len(accepted)}/{len(sub_bounds)} sub-bounds")

    input_size = program.input_size()
    total_flops = program.total_flops()
    expression = input_size + sympy.Max(sympy.Integer(0), combined)
    smooth = sympy.expand(input_size + sympy.Max(sympy.Integer(0), combined))
    params = set(program.params)
    asymptotic = asymptotic_leading(smooth, params)

    return IOBoundResult(
        program_name=program.name,
        parameters=program.params,
        expression=expression,
        smooth=smooth,
        asymptotic=asymptotic,
        input_size=input_size,
        total_flops=total_flops,
        sub_bounds=sub_bounds,
        log=log,
    )


def _analyze_for_pool(payload: tuple[AffineProgram, AnalysisConfig]) -> IOBoundResult:
    """Module-level worker entry point (must be picklable for process pools)."""
    program, config = payload
    return run_analysis(program, config)


class Analyzer:
    """Derive I/O lower bounds for affine programs under one configuration.

    Typical usage::

        from repro.analysis import AnalysisConfig, Analyzer

        analyzer = Analyzer(AnalysisConfig(max_depth=1))
        result = analyzer.analyze(program)
        results = analyzer.analyze_many(programs)   # fans out when n_jobs > 1

    With a :class:`~repro.analysis.store.BoundStore` attached (an explicit
    ``store=`` argument, or ``config.cache_dir`` as a thin alias for a store
    rooted there), results are memoised on disk keyed by the program
    fingerprint and the result-relevant part of the configuration, so
    repeated suite runs, benchmarks and multi-process batches skip finished
    derivations entirely.  Pass ``store=BoundStore()`` to share the default
    per-user store (``$REPRO_STORE`` or ``~/.cache/repro``).
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        store: BoundStore | str | Path | None = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        self.store = resolve_store(store, self.config.cache_dir)

    # -- single-program entry point -----------------------------------------

    def analyze(self, program: AffineProgram) -> IOBoundResult:
        """Derive the parametric I/O lower bound for one program."""
        cached = self._cache_load(program)
        if cached is not None:
            return cached
        result = run_analysis(program, self.config)
        self._cache_store(program, result)
        return result

    # -- batch entry point ---------------------------------------------------

    def analyze_many(self, programs: Iterable[AffineProgram]) -> list[IOBoundResult]:
        """Derive bounds for a batch of programs, preserving input order.

        With ``config.n_jobs > 1`` the uncached derivations are fanned out
        over a process pool; cached results are returned without spawning
        workers.  The output list is index-aligned with ``programs`` — every
        program yields exactly one result, and a derivation that silently
        produces nothing raises :class:`RuntimeError` rather than shifting
        later results onto earlier slots.
        """
        batch: Sequence[AffineProgram] = list(programs)
        results: list[IOBoundResult | None] = [None] * len(batch)

        pending: list[int] = []
        for index, program in enumerate(batch):
            cached = self._cache_load(program)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            # Duplicate programs (same store key) share one derivation: the
            # result is fanned out to every index that asked for it.
            by_key: dict[str, list[int]] = {}
            for index in pending:
                by_key.setdefault(self.cache_key(batch[index]), []).append(index)
            groups = list(by_key.values())

            workers = min(self.config.n_jobs, len(groups))
            if workers <= 1:
                for indices in groups:
                    result = run_analysis(batch[indices[0]], self.config)
                    self._cache_store(batch[indices[0]], result)
                    for index in indices:
                        results[index] = result
            else:
                global _derivations
                # Workers only need the result-relevant knobs; stripping the
                # executor fields keeps the pickled payload lean and stops a
                # worker from ever re-entering the pool or the cache.
                worker_config = self.config.replace(n_jobs=1, cache_dir=None)
                with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(
                            _analyze_for_pool, (batch[indices[0]], worker_config)
                        ): indices
                        for indices in groups
                    }
                    for future in concurrent.futures.as_completed(futures):
                        indices = futures[future]
                        result = future.result()
                        # The worker ran run_analysis in its own process, so
                        # account for the derivation here, in the requester.
                        _derivations += 1
                        self._cache_store(batch[indices[0]], result)
                        for index in indices:
                            results[index] = result

        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            names = [batch[index].name for index in missing]
            raise RuntimeError(
                f"analyze_many produced no result for programs at indices {missing} "
                f"({names}); refusing to return a misaligned batch"
            )
        return results

    # -- persistent store ------------------------------------------------------

    def cache_key(self, program: AffineProgram) -> str:
        """Store key: program fingerprint x config signature x semantics version.

        The derivation version guards correctness across upgrades: a bound
        derived by older code with different semantics keys differently and
        is simply never found, forcing a fresh derivation.
        """
        config_digest = hashlib.sha256(
            f"v{DERIVATION_VERSION}:{self.config.signature()!r}".encode("utf-8")
        ).hexdigest()
        return f"{program_fingerprint(program)}-{config_digest[:16]}"

    def _cache_load(self, program: AffineProgram) -> IOBoundResult | None:
        if self.store is None:
            return None
        return self.store.get(self.cache_key(program))

    def _cache_store(self, program: AffineProgram, result: IOBoundResult | None) -> None:
        if self.store is None or result is None:
            return
        self.store.put(
            self.cache_key(program),
            result,
            metadata={"config_signature": repr(self.config.signature())},
        )
