"""The :class:`Analyzer`: the configurable driver of Algorithm 6.

The analyzer separates *what* to derive (the strategies and knobs captured by
:class:`~repro.analysis.config.AnalysisConfig`) from *how* the derivation is
executed.  A derivation is an explicit three-stage pipeline:

1. **plan** — :func:`repro.analysis.plan.plan_program` asks every configured
   strategy for its independent :class:`~repro.analysis.plan.DerivationTask`
   units (one per statement x strategy x depth);
2. **execute** — :func:`execute_plans` runs the tasks over a pluggable
   :class:`~repro.analysis.executor.Executor` (serial, thread pool or
   process pool, selected by ``AnalysisConfig(executor=..., n_jobs=...)`` or
   ``$REPRO_EXECUTOR``), memoising each finished task in the
   :class:`~repro.analysis.store.BoundStore` keyed by its task fingerprint;
3. **combine** — :func:`combine_plan` merges the task results **in plan
   order** (never completion order) through the decomposition lemma, so the
   final bound, its sub-bound list and its log are byte-identical across
   executors and schedulings.

:meth:`Analyzer.analyze_many` feeds the whole batch's task set through one
shared executor — a single ``suite --jobs 8`` schedules every kernel's tasks
in one work queue instead of paying a pool per program.

The legacy :func:`repro.core.iolb.derive_bounds` free function is now a thin
wrapper over this class.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import sympy

from ..core.bounds import IOBoundResult, SubBound, asymptotic_leading
from ..core.decomposition import combine_sub_q
from ..ir import AffineProgram
from .config import AnalysisConfig
from .executor import Executor, resolve_executor
from .plan import (
    DerivationPlan,
    TaskResult,
    dfg_for,
    plan_program,
    program_fingerprint,
    run_strategy_task,
)
from .store import DERIVATION_VERSION, BoundStore, resolve_store
from .strategies import get_strategy

# -- derivation counters ------------------------------------------------------
#
# Two granularities, one lock.  The *program* counter backs the warm-store
# invariant (a warm suite run performs zero derivations); the *task* counter
# backs resume tests (a half-finished run re-executes only the missing
# tasks).  Both are counted on the requester side — also for tasks that ran
# in a worker process — so the numbers mean the same thing on every executor.

_count_lock = threading.Lock()
_derivations = 0
_task_derivations = 0


def derivation_count() -> int:
    """Number of full program derivations run since the last reset.

    Counts every :func:`run_analysis`-equivalent pipeline run that was not
    served from the result-level store (task-level store hits inside a run
    do not make it free: the plan and combination still execute).
    """
    return _derivations


def reset_derivation_count() -> int:
    """Reset the process-wide derivation counter; returns the prior count."""
    global _derivations
    with _count_lock:
        previous = _derivations
        _derivations = 0
    return previous


def task_derivation_count() -> int:
    """Number of individual derivation tasks executed since the last reset.

    Task-level store hits do not count; tasks executed in worker threads or
    processes do (they are accounted on the requester side as their results
    arrive, so the granularity is identical across executors).
    """
    return _task_derivations


def reset_task_derivation_count() -> int:
    """Reset the process-wide task counter; returns the prior count."""
    global _task_derivations
    with _count_lock:
        previous = _task_derivations
        _task_derivations = 0
    return previous


def _count_program_derivation() -> None:
    global _derivations
    with _count_lock:
        _derivations += 1


def _count_task_derivations(count: int) -> None:
    global _task_derivations
    with _count_lock:
        _task_derivations += count


def _execute_payload(payload: tuple) -> TaskResult:
    """Module-level task entry point (must be picklable for process pools).

    The DFG comes from the per-process cache shared with the planner
    (:func:`repro.analysis.plan.dfg_for`): in-process executors reuse the
    plan-time DFG, a pool worker builds it once per program.  The plan's
    fingerprint rides along so the cache lookup never re-hashes the program.
    """
    program, config, task, fingerprint = payload
    dfg = dfg_for(program, fingerprint)
    strategy = get_strategy(task.strategy)
    instance = config.heuristic_instance(program.params)
    return run_strategy_task(strategy, dfg, config, instance, task)


# -- the pipeline stages ------------------------------------------------------


def execute_plans(
    plans: Sequence[DerivationPlan],
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> list[list[TaskResult]]:
    """Execute every task of every plan through one shared executor.

    Tasks already present in ``store`` (matched by task fingerprint) are
    reloaded instead of re-executed; freshly executed tasks are written back
    one by one as they complete, so a run killed half-way leaves its
    finished sub-bounds behind for the next run to resume from.

    Returns one ``TaskResult`` list per plan, each in **plan order**
    regardless of the order in which the executor completed the tasks.
    """
    if not plans:
        return []
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(
        executor if executor is not None else plans[0].config.executor,
        plans[0].config.n_jobs,
    )

    results: list[list[TaskResult | None]] = [[None] * len(plan.tasks) for plan in plans]
    pending: list[tuple[int, int]] = []  # (plan index, task index)
    keys: dict[tuple[int, int], str] = {}
    for plan_index, plan in enumerate(plans):
        for task_index, task in enumerate(plan.tasks):
            if store is not None:
                key = plan.task_key(task)
                keys[(plan_index, task_index)] = key
                payload = store.get_task(key)
                if payload is not None:
                    try:
                        results[plan_index][task_index] = TaskResult.from_dict(
                            payload, task=task
                        )
                        continue
                    except (KeyError, ValueError, TypeError):
                        pass  # unreadable entry: fall through and re-derive
            pending.append((plan_index, task_index))

    if pending:
        payloads = [
            (plans[i].program, plans[i].config, plans[i].tasks[j], plans[i].fingerprint)
            for i, j in pending
        ]
        try:
            for index, task_result in resolved.map(_execute_payload, payloads):
                plan_index, task_index = pending[index]
                results[plan_index][task_index] = task_result
                _count_task_derivations(1)
                if store is not None:
                    # Persist immediately: completion order does not matter
                    # for correctness, and a crash loses only in-flight tasks.
                    store.put_task(keys[(plan_index, task_index)], task_result.to_dict())
        finally:
            if owns_executor:
                resolved.close()

    # Every slot is filled: tasks were either reloaded or executed above (an
    # executor failure propagates out of the loop instead of leaving holes).
    return [list(plan_results) for plan_results in results]  # type: ignore[arg-type]


def execute_plan(
    plan: DerivationPlan,
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> list[TaskResult]:
    """Execute one plan's tasks (see :func:`execute_plans`)."""
    return execute_plans([plan], executor=executor, store=store)[0]


def combine_plan(
    plan: DerivationPlan, task_results: Sequence[TaskResult]
) -> IOBoundResult:
    """Combine executed tasks into the final bound (deterministic stage).

    ``task_results`` must be in plan order; the sub-bound list and the log
    are their concatenation in that order, followed by the decomposition
    lemma (Alg. 1), the compulsory input misses and the clamp at zero:

        Q_low  =  |inputs|  +  max(0, combined sub-bounds).
    """
    program = plan.program
    instance = plan.config.heuristic_instance(program.params)

    log: list[str] = []
    sub_bounds: list[SubBound] = []
    for task_result in task_results:
        sub_bounds.extend(task_result.sub_bounds)
        log.extend(task_result.log)

    combined, accepted = combine_sub_q(sub_bounds, instance)
    log.append(f"combined {len(accepted)}/{len(sub_bounds)} sub-bounds")

    input_size = program.input_size()
    total_flops = program.total_flops()
    expression = input_size + sympy.Max(sympy.Integer(0), combined)
    smooth = sympy.expand(input_size + sympy.Max(sympy.Integer(0), combined))
    params = set(program.params)
    asymptotic = asymptotic_leading(smooth, params)

    return IOBoundResult(
        program_name=program.name,
        parameters=program.params,
        expression=expression,
        smooth=smooth,
        asymptotic=asymptotic,
        input_size=input_size,
        total_flops=total_flops,
        sub_bounds=sub_bounds,
        log=log,
    )


def run_analysis(
    program: AffineProgram,
    config: AnalysisConfig,
    executor: Executor | str | None = None,
    store: BoundStore | None = None,
) -> IOBoundResult:
    """One full derivation (Algorithm 6): plan, execute, combine.

    The result-cache-free core.  ``executor`` defaults to the config's
    (``AnalysisConfig(executor=...)`` / ``$REPRO_EXECUTOR`` / serial);
    passing a ``store`` additionally memoises the individual tasks, so an
    interrupted run resumes from its finished sub-bounds.
    """
    _count_program_derivation()
    plan = plan_program(program, config)
    task_results = execute_plan(plan, executor=executor, store=store)
    return combine_plan(plan, task_results)


class Analyzer:
    """Derive I/O lower bounds for affine programs under one configuration.

    Typical usage::

        from repro.analysis import AnalysisConfig, Analyzer

        analyzer = Analyzer(AnalysisConfig(max_depth=1))
        result = analyzer.analyze(program)
        results = analyzer.analyze_many(programs)   # fans out when n_jobs > 1

    With a :class:`~repro.analysis.store.BoundStore` attached (an explicit
    ``store=`` argument, or ``config.cache_dir`` as a thin alias for a store
    rooted there), results are memoised on disk at two granularities: whole
    results keyed by the program fingerprint and the result-relevant part of
    the configuration, and individual derivation tasks keyed by their task
    fingerprints — so repeated runs skip everything, and interrupted or
    config-tweaked runs skip everything that still applies.  Pass
    ``store=BoundStore()`` to share the default per-user store
    (``$REPRO_STORE`` or ``~/.cache/repro``).
    """

    def __init__(
        self,
        config: AnalysisConfig | None = None,
        store: BoundStore | str | Path | None = None,
    ):
        self.config = config if config is not None else AnalysisConfig()
        self.store = resolve_store(store, self.config.cache_dir)

    # -- single-program entry point -----------------------------------------

    def analyze(
        self, program: AffineProgram, executor: Executor | str | None = None
    ) -> IOBoundResult:
        """Derive the parametric I/O lower bound for one program."""
        cached = self._cache_load(program)
        if cached is not None:
            return cached
        result = run_analysis(program, self.config, executor=executor, store=self.store)
        self._cache_store(program, result)
        return result

    def plan(self, program: AffineProgram) -> DerivationPlan:
        """The derivation plan this analyzer would execute for ``program``."""
        return plan_program(program, self.config)

    # -- batch entry point ---------------------------------------------------

    def analyze_many(
        self,
        programs: Iterable[AffineProgram],
        executor: Executor | str | None = None,
    ) -> list[IOBoundResult]:
        """Derive bounds for a batch of programs, preserving input order.

        All uncached derivations are planned first, and the union of their
        tasks is fed through **one** executor (the config's, or an explicit
        ``executor=`` — pass a live instance to share one pool across
        batches); cached results are returned without scheduling anything.
        The output list is index-aligned with ``programs`` — every program
        yields exactly one result, and a derivation that silently produces
        nothing raises :class:`RuntimeError` rather than shifting later
        results onto earlier slots.
        """
        batch: Sequence[AffineProgram] = list(programs)
        results: list[IOBoundResult | None] = [None] * len(batch)

        pending: list[int] = []
        for index, program in enumerate(batch):
            cached = self._cache_load(program)
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            # Duplicate programs (same store key) share one derivation: the
            # result is fanned out to every index that asked for it.
            by_key: dict[str, list[int]] = {}
            for index in pending:
                by_key.setdefault(self.cache_key(batch[index]), []).append(index)
            groups = list(by_key.values())

            plans = [plan_program(batch[indices[0]], self.config) for indices in groups]
            per_plan = execute_plans(
                plans,
                executor=executor if executor is not None else self.config.executor,
                store=self.store,
            )
            for plan, indices, task_results in zip(plans, groups, per_plan):
                _count_program_derivation()
                result = combine_plan(plan, task_results)
                self._cache_store(batch[indices[0]], result)
                for index in indices:
                    results[index] = result

        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            names = [batch[index].name for index in missing]
            raise RuntimeError(
                f"analyze_many produced no result for programs at indices {missing} "
                f"({names}); refusing to return a misaligned batch"
            )
        return results

    # -- persistent store ------------------------------------------------------

    def cache_key(self, program: AffineProgram) -> str:
        """Store key: program fingerprint x config signature x semantics version.

        The derivation version guards correctness across upgrades: a bound
        derived by older code with different semantics keys differently and
        is simply never found, forcing a fresh derivation.
        """
        config_digest = hashlib.sha256(
            f"v{DERIVATION_VERSION}:{self.config.signature()!r}".encode("utf-8")
        ).hexdigest()
        return f"{program_fingerprint(program)}-{config_digest[:16]}"

    def _cache_load(self, program: AffineProgram) -> IOBoundResult | None:
        if self.store is None:
            return None
        return self.store.get(self.cache_key(program))

    def _cache_store(self, program: AffineProgram, result: IOBoundResult | None) -> None:
        if self.store is None or result is None:
            return
        self.store.put(
            self.cache_key(program),
            result,
            metadata={"config_signature": repr(self.config.signature())},
        )
