"""repro.analysis — the configurable, pluggable, batch-capable Analyzer API.

This package is the primary public entry point for deriving I/O lower bounds
(the legacy :func:`repro.core.derive_bounds` free function is a thin wrapper
kept for backward compatibility):

* :class:`AnalysisConfig` — every knob of the derivation in one frozen,
  JSON-serializable object;
* :class:`BoundStrategy` / :func:`register_strategy` — the pluggable
  sub-bound derivation families run by the Algorithm 6 driver
  (:class:`KPartitionStrategy` and :class:`WavefrontStrategy` are built in);
* :mod:`~repro.analysis.plan` / :mod:`~repro.analysis.executor` /
  :mod:`~repro.analysis.scheduler` — the plan -> schedule -> combine
  pipeline: every derivation is an explicit list of independent
  :class:`DerivationTask` units scheduled over a pluggable
  :class:`Executor` (:class:`SerialExecutor`, :class:`ThreadExecutor`,
  :class:`ProcessExecutor`; selected via ``AnalysisConfig(executor=...,
  n_jobs=...)`` or ``$REPRO_EXECUTOR``) by an event-driven scheduler
  (:func:`schedule_plans`: one ready queue per batch, fewest-remaining
  priority, combine-on-last-task), with results combined in plan order so
  every executor and scheduling produces byte-identical bounds;
* :class:`Analyzer` — ``analyze(program)`` for one program,
  ``analyze_stream(programs)`` for streamed batches (results yielded in
  completion order while later programs still derive),
  ``analyze_many(programs)`` as its input-order collector (the whole
  batch's tasks flow through one shared executor) with on-disk memoisation
  keyed by :func:`program_fingerprint` at both the result and the task
  level;
* :class:`BoundStore` — the shared content-addressed persistent store behind
  that memoisation (``$REPRO_STORE`` / ``~/.cache/repro``), with schema
  negotiation, LRU eviction and ``stats``/``gc``/``clear`` maintenance;
* :mod:`~repro.analysis.serialization` — JSON documents of many results
  (:func:`save_results` / :func:`load_results`).

Typical usage::

    from repro.analysis import AnalysisConfig, Analyzer

    analyzer = Analyzer(AnalysisConfig(max_depth=1, n_jobs=4, cache_dir=".iolb"))
    result = analyzer.analyze(program)
    print(result.asymptotic, result.oi_upper_bound())
"""

from .analyzer import (
    DERIVATION_VERSION,
    Analyzer,
    combine_plan,
    derivation_count,
    execute_plan,
    execute_plans,
    program_fingerprint,
    reset_derivation_count,
    reset_task_derivation_count,
    result_key,
    run_analysis,
    stream_analyses,
    task_derivation_count,
)
from .scheduler import StreamCounters, WorkItem, schedule_plans, schedule_work
from .config import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_GAMMA,
    DEFAULT_MAX_SUBCDAGS_PER_STATEMENT,
    DEFAULT_PARAM_VALUE,
    DEFAULT_STRATEGIES,
    AnalysisConfig,
)
from .executor import (
    EXECUTOR_ENV,
    EXECUTOR_NAMES,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from .plan import (
    DerivationPlan,
    DerivationTask,
    TaskResult,
    plan_program,
)
from .serialization import (
    load_results,
    results_from_document,
    results_to_document,
    save_results,
)
from .store import (
    BUDGET_ENV,
    STORE_ENV,
    STORE_SCHEMA,
    BoundStore,
    StoreStats,
    default_store_root,
    parse_size,
    resolve_store,
)
from .strategies import (
    BoundStrategy,
    KPartitionStrategy,
    WavefrontStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategies,
    unregister_strategy,
)

__all__ = [
    "AnalysisConfig",
    "Analyzer",
    "BUDGET_ENV",
    "BoundStore",
    "BoundStrategy",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_GAMMA",
    "DEFAULT_MAX_SUBCDAGS_PER_STATEMENT",
    "DEFAULT_PARAM_VALUE",
    "DEFAULT_STRATEGIES",
    "DERIVATION_VERSION",
    "DerivationPlan",
    "DerivationTask",
    "EXECUTOR_ENV",
    "EXECUTOR_NAMES",
    "Executor",
    "KPartitionStrategy",
    "ProcessExecutor",
    "STORE_ENV",
    "STORE_SCHEMA",
    "SerialExecutor",
    "StoreStats",
    "StreamCounters",
    "TaskResult",
    "ThreadExecutor",
    "WavefrontStrategy",
    "WorkItem",
    "available_strategies",
    "combine_plan",
    "default_store_root",
    "derivation_count",
    "execute_plan",
    "execute_plans",
    "get_strategy",
    "load_results",
    "parse_size",
    "plan_program",
    "program_fingerprint",
    "register_strategy",
    "reset_derivation_count",
    "reset_task_derivation_count",
    "resolve_executor",
    "resolve_store",
    "resolve_strategies",
    "result_key",
    "results_from_document",
    "results_to_document",
    "run_analysis",
    "save_results",
    "schedule_plans",
    "schedule_work",
    "stream_analyses",
    "task_derivation_count",
    "unregister_strategy",
]
