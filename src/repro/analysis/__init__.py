"""repro.analysis — the configurable, pluggable, batch-capable Analyzer API.

This package is the primary public entry point for deriving I/O lower bounds
(the legacy :func:`repro.core.derive_bounds` free function is a thin wrapper
kept for backward compatibility):

* :class:`AnalysisConfig` — every knob of the derivation in one frozen,
  JSON-serializable object;
* :class:`BoundStrategy` / :func:`register_strategy` — the pluggable
  sub-bound derivation families run by the Algorithm 6 driver
  (:class:`KPartitionStrategy` and :class:`WavefrontStrategy` are built in);
* :class:`Analyzer` — ``analyze(program)`` for one program,
  ``analyze_many(programs)`` for batches with process fan-out and on-disk
  memoisation keyed by :func:`program_fingerprint`;
* :class:`BoundStore` — the shared content-addressed persistent store behind
  that memoisation (``$REPRO_STORE`` / ``~/.cache/repro``), with schema
  negotiation, LRU eviction and ``stats``/``gc``/``clear`` maintenance;
* :mod:`~repro.analysis.serialization` — JSON documents of many results
  (:func:`save_results` / :func:`load_results`).

Typical usage::

    from repro.analysis import AnalysisConfig, Analyzer

    analyzer = Analyzer(AnalysisConfig(max_depth=1, n_jobs=4, cache_dir=".iolb"))
    result = analyzer.analyze(program)
    print(result.asymptotic, result.oi_upper_bound())
"""

from .analyzer import (
    DERIVATION_VERSION,
    Analyzer,
    derivation_count,
    program_fingerprint,
    reset_derivation_count,
    run_analysis,
)
from .config import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_GAMMA,
    DEFAULT_MAX_SUBCDAGS_PER_STATEMENT,
    DEFAULT_PARAM_VALUE,
    DEFAULT_STRATEGIES,
    AnalysisConfig,
)
from .serialization import (
    load_results,
    results_from_document,
    results_to_document,
    save_results,
)
from .store import (
    BUDGET_ENV,
    STORE_ENV,
    STORE_SCHEMA,
    BoundStore,
    StoreStats,
    default_store_root,
    parse_size,
    resolve_store,
)
from .strategies import (
    BoundStrategy,
    KPartitionStrategy,
    WavefrontStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategies,
    unregister_strategy,
)

__all__ = [
    "AnalysisConfig",
    "Analyzer",
    "BUDGET_ENV",
    "BoundStore",
    "BoundStrategy",
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_GAMMA",
    "DEFAULT_MAX_SUBCDAGS_PER_STATEMENT",
    "DEFAULT_PARAM_VALUE",
    "DEFAULT_STRATEGIES",
    "DERIVATION_VERSION",
    "KPartitionStrategy",
    "STORE_ENV",
    "STORE_SCHEMA",
    "StoreStats",
    "WavefrontStrategy",
    "available_strategies",
    "default_store_root",
    "derivation_count",
    "get_strategy",
    "load_results",
    "parse_size",
    "program_fingerprint",
    "register_strategy",
    "reset_derivation_count",
    "resolve_store",
    "resolve_strategies",
    "results_from_document",
    "results_to_document",
    "run_analysis",
    "save_results",
    "unregister_strategy",
]
