"""Pluggable task executors: the *how* of the derivation pipeline.

A plan (:mod:`repro.analysis.plan`) is a list of independent tasks; an
:class:`Executor` decides where they run:

* :class:`SerialExecutor` — in-process, one after the other (the default);
* :class:`ThreadExecutor` — a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (cheap to start, shares the in-process DFG/relation caches; the work is
  pure Python, so the GIL bounds the speedup);
* :class:`ProcessExecutor` — a shared :class:`~concurrent.futures.ProcessPoolExecutor`
  (true parallelism; tasks, programs and configs are pickled to the
  workers).

Executors expose :meth:`Executor.map`, which yields ``(index, result)``
pairs **in completion order**.  Consumers that need determinism (all of
them) must re-order by index — the combination step of
:func:`repro.analysis.analyzer.execute_plans` does exactly that, which is
what makes the final bound independent of scheduling.  Pool executors
additionally expose :meth:`_PoolExecutor.submit` (one task, returning a
:class:`~concurrent.futures.Future`): the hook the event-driven scheduler
(:mod:`repro.analysis.scheduler`) uses to keep a bounded number of tasks in
flight and refill in priority order as completions arrive.  ``submit`` is
optional in the protocol — map-only executors still work everywhere, they
just receive their work queue up front.

Pools are created lazily on first use and kept open across ``map`` calls, so
a whole suite batch (every kernel's tasks) flows through **one** work queue
instead of paying a pool startup per program; close an executor explicitly
(or use it as a context manager) when done.  ``close`` **cancels anything
still queued** before reaping the workers, so closing from an interrupt
handler (or a ``finally`` after Ctrl-C) leaves no orphan worker processes
grinding through abandoned tasks.

Trust boundary: the process executor runs the same code as the caller, in
child processes of the caller, with the caller's privileges — it is a
throughput device, not a sandbox.  Task payloads and results cross the
boundary by pickling; never feed a store you do not trust into a process
that unpickles from it.

Selection: :func:`resolve_executor` honours, in order, an explicit
instance/name, ``$REPRO_EXECUTOR``, then falls back to ``"process"`` when
``n_jobs > 1`` (matching the historical process fan-out of
``Analyzer.analyze_many``) and ``"serial"`` otherwise.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from typing import Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

#: Environment variable naming the default executor.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Names accepted by :func:`resolve_executor` and ``AnalysisConfig.executor``.
EXECUTOR_NAMES = ("serial", "thread", "process")


@runtime_checkable
class Executor(Protocol):
    """Runs independent task payloads, yielding results as they complete."""

    #: Registry name (``"serial"``, ``"thread"``, ``"process"``, ...).
    name: str

    def map(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> Iterator[tuple[int, Any]]:
        """Apply ``fn`` to every item, yielding ``(input_index, result)``
        pairs in completion order (NOT input order)."""
        ...

    def close(self) -> None:
        """Release any worker pool.  Idempotent."""
        ...


class _ExecutorBase:
    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        jobs = getattr(self, "n_jobs", 1)
        return f"{type(self).__name__}(n_jobs={jobs})"


class SerialExecutor(_ExecutorBase):
    """In-process sequential execution — the zero-dependency default."""

    name = "serial"
    n_jobs = 1

    def __init__(self, n_jobs: int = 1):
        # Accepts (and ignores) n_jobs so every executor constructs uniformly.
        pass

    def map(self, fn, items):
        for index, item in enumerate(items):
            yield index, fn(item)


class _PoolExecutor(_ExecutorBase):
    """Shared lazily-created pool; subclasses pick the pool class."""

    _pool_factory: Callable[..., concurrent.futures.Executor]

    def __init__(self, n_jobs: int = 2):
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = n_jobs
        self._pool: concurrent.futures.Executor | None = None
        # One executor instance is shared by every request of the threaded
        # service: lazy creation and close must be atomic or two racing
        # threads each resolve a pool and one leaks unclosed.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.Executor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = type(self)._pool_factory(max_workers=self.n_jobs)
            return self._pool

    def map(self, fn, items):
        items = list(items)
        if len(items) <= 1:
            # A single task gains nothing from a pool round-trip.  n_jobs=1
            # still uses a real (one-worker) pool for longer maps: naming a
            # pool executor means "run my tasks on workers", and the CI
            # env-selection smoke relies on that actually happening.
            for index, item in enumerate(items):
                yield index, fn(item)
            return
        pool = self._ensure_pool()
        futures = {pool.submit(fn, item): index for index, item in enumerate(items)}
        for future in concurrent.futures.as_completed(futures):
            yield futures[future], future.result()

    def submit(self, fn, item) -> concurrent.futures.Future:
        """Schedule one task on the pool, returning its future.

        This is the event-driven entry point: where ``map`` commits a whole
        work list at once, ``submit`` lets a scheduler decide the next task
        only when a worker actually frees up.
        """
        return self._ensure_pool().submit(fn, item)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            # cancel_futures: a close racing live work (Ctrl-C mid-suite)
            # drops everything still queued instead of letting the workers
            # grind through abandoned tasks before the join.  The swap above
            # makes concurrent close() calls shut the pool down exactly once.
            pool.shutdown(wait=True, cancel_futures=True)


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution: shared memory, shared caches, GIL-bounded."""

    name = "thread"
    _pool_factory = staticmethod(concurrent.futures.ThreadPoolExecutor)


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution: true parallelism, pickled payloads."""

    name = "process"
    _pool_factory = staticmethod(concurrent.futures.ProcessPoolExecutor)


_EXECUTOR_CLASSES = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def resolve_executor(
    executor: "Executor | str | None" = None, n_jobs: int = 1
) -> Executor:
    """Normalise the ways callers can name an executor.

    ``executor`` may be an :class:`Executor` instance (passed through — the
    caller keeps ownership and ``n_jobs`` is ignored), one of
    :data:`EXECUTOR_NAMES`, or ``None``, which consults ``$REPRO_EXECUTOR``
    and finally defaults to ``"process"`` when ``n_jobs > 1``, else
    ``"serial"``.
    """
    if executor is not None and not isinstance(executor, str):
        return executor
    name = executor
    if name is None:
        name = os.environ.get(EXECUTOR_ENV) or None
    if name is None:
        name = "process" if n_jobs > 1 else "serial"
    try:
        cls = _EXECUTOR_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTOR_NAMES}"
        ) from None
    return cls(n_jobs=max(1, int(n_jobs)))
