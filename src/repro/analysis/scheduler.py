"""Event-driven streaming scheduler: the *when* of the derivation pipeline.

:mod:`repro.analysis.plan` makes a derivation an explicit list of independent
tasks and :mod:`repro.analysis.executor` decides where they run; this module
decides **when** — and, crucially, when each program's *combine* step fires.
The barrier-style reference pipeline (``execute_plans``) waited for a whole
batch's task set before combining anything; :func:`schedule_plans` instead
runs one event loop over the union of every plan's tasks:

* all tasks of all plans enter a single **ready queue**;
* workers pull tasks in **priority order** — fewest-remaining-tasks-per-program
  first (ties broken by plan position, then task position, so scheduling is
  reproducible) — which drains small programs early instead of striping
  round-robin across the batch;
* each plan's results are collected as its tasks land, and the moment a
  plan's **last task** completes the plan is yielded to the caller — so
  program 1's bound streams out while program 30's tasks are still running.

Determinism is inherited from the plan layer, not re-derived here: a plan's
task results are yielded **in plan order** whatever order they completed in,
so combining a yielded plan produces byte-identical bounds on every executor
and every scheduling (the CI-enforced invariant of PR 4).  The only thing
that varies across schedulers is the order *between* plans — completion
order by construction — and collectors such as ``execute_plans`` re-order by
plan index, which is why the barrier API could be rebuilt on top of this
module without changing a byte of its output.

Executors participate in one of three ways:

* executors with a ``submit`` method (the thread/process pools) run a true
  event loop: at most ``n_jobs`` tasks in flight, refilled in priority order
  as completions arrive (:func:`concurrent.futures.wait`);
* map-only executors (:class:`~repro.analysis.executor.SerialExecutor`,
  third-party plug-ins) receive every pending task up front, sorted by the
  same priority rule, and completions stream back through their ``map`` —
  still firing each plan's combine as its last task lands;
* a ``store`` short-circuits both: tasks already present are reloaded during
  enqueue, plans that become complete without executing anything are yielded
  immediately (this is what gives a warm service request sub-millisecond
  turnaround), and freshly executed tasks are persisted one by one as they
  complete, so an interrupted run resumes from every finished task.

On any failure — a task raising, or the consumer abandoning the stream —
not-yet-started futures are cancelled and owned executors are closed
(:meth:`~repro.analysis.executor._PoolExecutor.close` also cancels anything
still queued in the pool), so a Ctrl-C'd run leaves no orphan workers.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Iterator, Sequence

from .executor import Executor, resolve_executor
from .plan import DerivationPlan, TaskResult, dfg_for, run_strategy_task
from .store import BoundStore
from .strategies import get_strategy

# -- derivation counters ------------------------------------------------------
#
# Two granularities, one lock.  The *program* counter backs the warm-store
# invariant (a warm suite run performs zero derivations); the *task* counter
# backs resume tests (a half-finished run re-executes only the missing
# tasks).  Both are counted on the requester side — also for tasks that ran
# in a worker process — so the numbers mean the same thing on every executor.

_count_lock = threading.Lock()
_derivations = 0
_task_derivations = 0


def derivation_count() -> int:
    """Number of full program derivations run since the last reset.

    Counts every plan→execute→combine pipeline run that was not served from
    the result-level store (task-level store hits inside a run do not make
    it free: the plan and combination still execute).
    """
    return _derivations


def reset_derivation_count() -> int:
    """Reset the process-wide derivation counter; returns the prior count."""
    global _derivations
    with _count_lock:
        previous = _derivations
        _derivations = 0
    return previous


def task_derivation_count() -> int:
    """Number of individual derivation tasks executed since the last reset.

    Task-level store hits do not count; tasks executed in worker threads or
    processes do (they are accounted on the requester side as their results
    arrive, so the granularity is identical across executors).
    """
    return _task_derivations


def reset_task_derivation_count() -> int:
    """Reset the process-wide task counter; returns the prior count."""
    global _task_derivations
    with _count_lock:
        previous = _task_derivations
        _task_derivations = 0
    return previous


def _count_program_derivation() -> None:
    global _derivations
    with _count_lock:
        _derivations += 1


def _count_task_derivations(count: int) -> None:
    global _task_derivations
    with _count_lock:
        _task_derivations += count


def _execute_payload(payload: tuple) -> TaskResult:
    """Module-level task entry point (must be picklable for process pools).

    The DFG comes from the per-process cache shared with the planner
    (:func:`repro.analysis.plan.dfg_for`): in-process executors reuse the
    plan-time DFG, a pool worker builds it once per program.  The plan's
    fingerprint rides along so the cache lookup never re-hashes the program.
    """
    program, config, task, fingerprint = payload
    dfg = dfg_for(program, fingerprint)
    strategy = get_strategy(task.strategy)
    instance = config.heuristic_instance(program.params)
    return run_strategy_task(strategy, dfg, config, instance, task)


# -- the scheduler ------------------------------------------------------------


def schedule_plans(
    plans: Sequence[DerivationPlan],
    executor: "Executor | str | None" = None,
    store: BoundStore | None = None,
) -> Iterator[tuple[int, list[TaskResult]]]:
    """Stream ``(plan_index, task_results)`` pairs in plan-completion order.

    Every plan's tasks enter one ready queue; a plan is yielded the moment
    its last task lands, with its results listed **in plan order** (so the
    downstream combine is byte-deterministic).  Plans fully satisfied by the
    ``store`` are yielded first, by ascending plan index, without executing
    anything.

    An ``executor`` given by name (or ``None``, resolved from the first
    plan's config) is owned by the scheduler and closed — cancelling
    anything still queued — when the stream ends, errors, or is abandoned;
    a live instance stays the caller's to close.
    """
    if not plans:
        return
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(
        executor if executor is not None else plans[0].config.executor,
        plans[0].config.n_jobs,
    )
    try:
        yield from _run_event_loop(plans, resolved, store)
    finally:
        if owns_executor:
            resolved.close()


def _run_event_loop(
    plans: Sequence[DerivationPlan],
    executor: Executor,
    store: BoundStore | None,
) -> Iterator[tuple[int, list[TaskResult]]]:
    results: list[list[TaskResult | None]] = [[None] * len(plan.tasks) for plan in plans]
    #: Per-plan queues of not-yet-submitted task indices, in plan order.
    pending: dict[int, list[int]] = {}
    #: Unfinished (queued or in-flight) task count per plan — the priority.
    remaining = [0] * len(plans)
    keys: dict[tuple[int, int], str] = {}

    for plan_index, plan in enumerate(plans):
        todo: list[int] = []
        for task_index, task in enumerate(plan.tasks):
            if store is not None:
                key = plan.task_key(task)
                keys[(plan_index, task_index)] = key
                payload = store.get_task(key)
                if payload is not None:
                    try:
                        results[plan_index][task_index] = TaskResult.from_dict(
                            payload, task=task
                        )
                        continue
                    except (KeyError, ValueError, TypeError):
                        pass  # unreadable entry: fall through and re-derive
            todo.append(task_index)
        remaining[plan_index] = len(todo)
        if todo:
            pending[plan_index] = todo

    # Warm (or task-less) plans stream out before anything executes.
    for plan_index in range(len(plans)):
        if remaining[plan_index] == 0:
            yield plan_index, list(results[plan_index])  # type: ignore[arg-type]
    if not pending:
        return

    def payload_for(plan_index: int, task_index: int) -> tuple:
        plan = plans[plan_index]
        return (plan.program, plan.config, plan.tasks[task_index], plan.fingerprint)

    def pick() -> tuple[int, int]:
        """Next task: from the program with fewest unfinished tasks."""
        plan_index = min(pending, key=lambda index: (remaining[index], index))
        queue = pending[plan_index]
        task_index = queue.pop(0)
        if not queue:
            del pending[plan_index]
        return plan_index, task_index

    def complete(plan_index: int, task_index: int, task_result: TaskResult) -> bool:
        """Record a landed task; True when it was its plan's last one."""
        results[plan_index][task_index] = task_result
        _count_task_derivations(1)
        if store is not None:
            # Persist immediately: completion order does not matter for
            # correctness, and a crash loses only in-flight tasks.  The
            # enqueue loop keyed every task when a store is present.
            store.put_task(keys[(plan_index, task_index)], task_result.to_dict())
        remaining[plan_index] -= 1
        return remaining[plan_index] == 0

    submit = getattr(executor, "submit", None)
    if submit is None:
        # Map-only executor (serial, or a third-party plug-in): commit the
        # whole queue up front in priority order and stream its completions.
        order: list[tuple[int, int]] = []
        while pending:
            order.append(pick())
        payloads = [payload_for(*coords) for coords in order]
        for index, task_result in executor.map(_execute_payload, payloads):
            plan_index, task_index = order[index]
            if complete(plan_index, task_index, task_result):
                yield plan_index, list(results[plan_index])  # type: ignore[arg-type]
        return

    # True event loop: keep at most n_jobs tasks in flight, refilling in
    # (dynamic) priority order as completions arrive.
    max_in_flight = max(1, int(getattr(executor, "n_jobs", 1)))
    in_flight: dict[concurrent.futures.Future, tuple[int, int]] = {}
    try:
        while pending or in_flight:
            while pending and len(in_flight) < max_in_flight:
                plan_index, task_index = pick()
                future = submit(_execute_payload, payload_for(plan_index, task_index))
                in_flight[future] = (plan_index, task_index)
            done, _ = concurrent.futures.wait(
                in_flight, return_when=concurrent.futures.FIRST_COMPLETED
            )
            # A wave of simultaneous completions is processed in task-
            # coordinate order so plan-completion order stays reproducible.
            for future in sorted(done, key=lambda item: in_flight[item]):
                plan_index, task_index = in_flight.pop(future)
                if complete(plan_index, task_index, future.result()):
                    yield plan_index, list(results[plan_index])  # type: ignore[arg-type]
    except BaseException:
        # A failing task (or an abandoned consumer) must not strand queued
        # work: cancel whatever has not started.  Running tasks finish in
        # the pool; the owning close() below reaps the workers themselves.
        for future in in_flight:
            future.cancel()
        raise
