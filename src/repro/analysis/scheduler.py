"""Event-driven streaming scheduler: the *when* of the derivation pipeline.

:mod:`repro.analysis.plan` makes a derivation an explicit list of independent
tasks and :mod:`repro.analysis.executor` decides where they run; this module
decides **when** — and, crucially, when each program's *combine* step fires.
The barrier-style reference pipeline (``execute_plans``) waited for a whole
batch's task set before combining anything; :func:`schedule_plans` instead
runs one event loop over the union of every plan's tasks:

* all tasks of all plans enter a single **ready queue**;
* workers pull tasks in **priority order** — fewest-remaining-tasks-per-program
  first (ties broken by plan position, then task position, so scheduling is
  reproducible) — which drains small programs early instead of striping
  round-robin across the batch;
* each plan's results are collected as its tasks land, and the moment a
  plan's **last task** completes the plan is yielded to the caller — so
  program 1's bound streams out while program 30's tasks are still running.

Determinism is inherited from the plan layer, not re-derived here: a plan's
task results are yielded **in plan order** whatever order they completed in,
so combining a yielded plan produces byte-identical bounds on every executor
and every scheduling (the CI-enforced invariant of PR 4).  The only thing
that varies across schedulers is the order *between* plans — completion
order by construction — and collectors such as ``execute_plans`` re-order by
plan index, which is why the barrier API could be rebuilt on top of this
module without changing a byte of its output.

Executors participate in one of three ways:

* executors with a ``submit`` method (the thread/process pools) run a true
  event loop: at most ``n_jobs`` tasks in flight, refilled in priority order
  as completions arrive (:func:`concurrent.futures.wait`);
* map-only executors (:class:`~repro.analysis.executor.SerialExecutor`,
  third-party plug-ins) receive every pending task up front, sorted by the
  same priority rule, and completions stream back through their ``map`` —
  still firing each plan's combine as its last task lands;
* a ``store`` short-circuits both: tasks already present are reloaded during
  enqueue, plans that become complete without executing anything are yielded
  immediately (this is what gives a warm service request sub-millisecond
  turnaround), and freshly executed tasks are persisted one by one as they
  complete, so an interrupted run resumes from every finished task.

On any failure — a task raising, or the consumer abandoning the stream —
not-yet-started futures are cancelled and owned executors are closed
(:meth:`~repro.analysis.executor._PoolExecutor.close` also cancels anything
still queued in the pool), so a Ctrl-C'd run leaves no orphan workers.

The event loop itself is generic: :func:`schedule_work` schedules groups of
:class:`WorkItem`\\ s — any picklable payload plus an optional store key —
and :func:`schedule_plans` is its derivation adapter.  The tiling search of
:mod:`repro.upper.search` reuses the same engine for cache simulations, so
upper-bound searches parallelise, memoise and resume exactly like
derivations do.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Iterator, Sequence

from .executor import Executor, resolve_executor
from .plan import DerivationPlan, TaskResult, dfg_for, run_strategy_task
from .store import BoundStore
from .strategies import get_strategy

# -- derivation counters ------------------------------------------------------
#
# Two granularities, one lock.  The *program* counter backs the warm-store
# invariant (a warm suite run performs zero derivations); the *task* counter
# backs resume tests (a half-finished run re-executes only the missing
# tasks).  Both are counted on the requester side — also for tasks that ran
# in a worker process — so the numbers mean the same thing on every executor.
#
# Both module counters are PROCESS-GLOBAL: under a concurrent front-end
# (the threaded ``repro serve``) two overlapping streams each read the
# combined total, so "how much work did *this* stream do" must come from a
# per-stream :class:`StreamCounters` threaded through the call chain
# instead (``schedule_plans(counters=...)`` → ``stream_analyses`` →
# ``analyze_suite_stream``).  The globals keep backing the single-stream
# CLI/test invariants.

_count_lock = threading.Lock()
_derivations = 0
_task_derivations = 0


class StreamCounters:
    """Thread-safe work counters scoped to one analysis stream.

    An instance passed down one ``schedule_plans``/``stream_analyses`` call
    chain counts only that stream's derivations, however many other streams
    are running concurrently in the process — which is what a per-request
    ``done`` event must report.  Counting happens *in addition to* the
    process-global counters, never instead of them.
    """

    __slots__ = ("_lock", "_derivations", "_task_derivations")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._derivations = 0
        self._task_derivations = 0

    @property
    def derivations(self) -> int:
        """Full program derivations this stream performed (store hits excluded)."""
        return self._derivations

    @property
    def task_derivations(self) -> int:
        """Individual derivation tasks this stream executed (store hits excluded)."""
        return self._task_derivations

    def count_derivation(self) -> None:
        with self._lock:
            self._derivations += 1

    def count_task_derivations(self, count: int = 1) -> None:
        with self._lock:
            self._task_derivations += count


def derivation_count() -> int:
    """Number of full program derivations run since the last reset.

    Counts every plan→execute→combine pipeline run that was not served from
    the result-level store (task-level store hits inside a run do not make
    it free: the plan and combination still execute).
    """
    return _derivations


def reset_derivation_count() -> int:
    """Reset the process-wide derivation counter; returns the prior count."""
    global _derivations
    with _count_lock:
        previous = _derivations
        _derivations = 0
    return previous


def task_derivation_count() -> int:
    """Number of individual derivation tasks executed since the last reset.

    Task-level store hits do not count; tasks executed in worker threads or
    processes do (they are accounted on the requester side as their results
    arrive, so the granularity is identical across executors).
    """
    return _task_derivations


def reset_task_derivation_count() -> int:
    """Reset the process-wide task counter; returns the prior count."""
    global _task_derivations
    with _count_lock:
        previous = _task_derivations
        _task_derivations = 0
    return previous


def _count_program_derivation(counters: "StreamCounters | None" = None) -> None:
    global _derivations
    with _count_lock:
        _derivations += 1
    if counters is not None:
        counters.count_derivation()


def _count_task_derivations(count: int, counters: "StreamCounters | None" = None) -> None:
    global _task_derivations
    with _count_lock:
        _task_derivations += count
    if counters is not None:
        counters.count_task_derivations(count)


def _execute_payload(payload: tuple) -> TaskResult:
    """Module-level task entry point (must be picklable for process pools).

    The DFG comes from the per-process cache shared with the planner
    (:func:`repro.analysis.plan.dfg_for`): in-process executors reuse the
    plan-time DFG, a pool worker builds it once per program.  The plan's
    fingerprint rides along so the cache lookup never re-hashes the program.
    """
    program, config, task, fingerprint = payload
    dfg = dfg_for(program, fingerprint)
    strategy = get_strategy(task.strategy)
    instance = config.heuristic_instance(program.params)
    return run_strategy_task(strategy, dfg, config, instance, task)


# -- the generic work scheduler -----------------------------------------------


class WorkItem:
    """One schedulable unit of work inside a :func:`schedule_work` group.

    ``payload`` is what the executor's ``run`` callable receives (it must be
    picklable for process pools); ``key`` is the optional store key under
    which the item's result is memoised; ``context`` rides along for the
    ``decode``/``encode`` hooks (e.g. the :class:`DerivationTask` a payload
    was built from), never crossing a process boundary.
    """

    __slots__ = ("payload", "key", "context")

    def __init__(self, payload: object, key: str | None = None, context: object = None):
        self.payload = payload
        self.key = key
        self.context = context


def schedule_work(
    groups: Sequence[Sequence[WorkItem]],
    run,
    executor: "Executor | str | None" = None,
    n_jobs: int = 1,
    store_get=None,
    store_put=None,
    decode=None,
    encode=None,
    on_executed=None,
) -> Iterator[tuple[int, list]]:
    """Stream ``(group_index, results)`` pairs in group-completion order.

    The generic engine behind :func:`schedule_plans` (and the tiling search
    in :mod:`repro.upper.search`): every group's items enter one ready
    queue, workers pull items from the group with fewest unfinished items
    first (ties by group position, then item order), and a group is yielded
    the moment its last item lands with its results listed **in item
    order** — byte-deterministic on every executor and scheduling.

    Memoisation hooks: an item with a ``key`` is looked up via
    ``store_get(key)`` during enqueue (a hit is passed through
    ``decode(item, payload)``; decode raising ``KeyError``/``ValueError``/
    ``TypeError`` counts as a miss and the item re-executes), groups fully
    satisfied by the store are yielded first by ascending index without
    executing anything, and freshly executed results are persisted one by
    one via ``store_put(key, encode(item, result))``.  ``on_executed()``
    fires once per actually-executed item, on the requester side, so
    counters mean the same thing on every executor.

    An ``executor`` given by name (or ``None``, resolved with ``n_jobs``)
    is owned by the scheduler and closed when the stream ends, errors, or
    is abandoned; a live instance stays the caller's to close.
    """
    material = [list(group) for group in groups]
    if not material:
        return
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(executor, n_jobs) if owns_executor else executor
    try:
        yield from _run_event_loop(
            material, run, resolved, store_get, store_put, decode, encode, on_executed
        )
    finally:
        if owns_executor:
            resolved.close()


def _run_event_loop(
    groups: list[list[WorkItem]],
    run,
    executor: Executor,
    store_get,
    store_put,
    decode,
    encode,
    on_executed,
) -> Iterator[tuple[int, list]]:
    results: list[list] = [[None] * len(group) for group in groups]
    #: Per-group queues of not-yet-submitted item indices, in item order.
    pending: dict[int, list[int]] = {}
    #: Unfinished (queued or in-flight) item count per group — the priority.
    remaining = [0] * len(groups)

    for group_index, group in enumerate(groups):
        todo: list[int] = []
        for item_index, item in enumerate(group):
            if store_get is not None and item.key is not None:
                payload = store_get(item.key)
                if payload is not None:
                    try:
                        results[group_index][item_index] = (
                            decode(item, payload) if decode is not None else payload
                        )
                        continue
                    except (KeyError, ValueError, TypeError):
                        pass  # unreadable entry: fall through and re-execute
            todo.append(item_index)
        remaining[group_index] = len(todo)
        if todo:
            pending[group_index] = todo

    # Warm (or item-less) groups stream out before anything executes.
    for group_index in range(len(groups)):
        if remaining[group_index] == 0:
            yield group_index, list(results[group_index])
    if not pending:
        return

    def pick() -> tuple[int, int]:
        """Next item: from the group with fewest unfinished items."""
        group_index = min(pending, key=lambda index: (remaining[index], index))
        queue = pending[group_index]
        item_index = queue.pop(0)
        if not queue:
            del pending[group_index]
        return group_index, item_index

    def complete(group_index: int, item_index: int, result) -> bool:
        """Record a landed item; True when it was its group's last one."""
        results[group_index][item_index] = result
        if on_executed is not None:
            on_executed()
        item = groups[group_index][item_index]
        if store_put is not None and item.key is not None:
            # Persist immediately: completion order does not matter for
            # correctness, and a crash loses only in-flight items.
            store_put(item.key, encode(item, result) if encode is not None else result)
        remaining[group_index] -= 1
        return remaining[group_index] == 0

    submit = getattr(executor, "submit", None)
    if submit is None:
        # Map-only executor (serial, or a third-party plug-in): commit the
        # whole queue up front in priority order and stream its completions.
        order: list[tuple[int, int]] = []
        while pending:
            order.append(pick())
        payloads = [groups[g][i].payload for g, i in order]
        for index, result in executor.map(run, payloads):
            group_index, item_index = order[index]
            if complete(group_index, item_index, result):
                yield group_index, list(results[group_index])
        return

    # True event loop: keep at most n_jobs tasks in flight, refilling in
    # (dynamic) priority order as completions arrive.
    max_in_flight = max(1, int(getattr(executor, "n_jobs", 1)))
    in_flight: dict[concurrent.futures.Future, tuple[int, int]] = {}
    try:
        while pending or in_flight:
            while pending and len(in_flight) < max_in_flight:
                group_index, item_index = pick()
                future = submit(run, groups[group_index][item_index].payload)
                in_flight[future] = (group_index, item_index)
            done, _ = concurrent.futures.wait(
                in_flight, return_when=concurrent.futures.FIRST_COMPLETED
            )
            # A wave of simultaneous completions is processed in item-
            # coordinate order so group-completion order stays reproducible.
            for future in sorted(done, key=lambda item: in_flight[item]):
                group_index, item_index = in_flight.pop(future)
                if complete(group_index, item_index, future.result()):
                    yield group_index, list(results[group_index])
    except BaseException:
        # A failing item (or an abandoned consumer) must not strand queued
        # work: cancel whatever has not started.  Running tasks finish in
        # the pool; the owning close() below reaps the workers themselves.
        for future in in_flight:
            future.cancel()
        raise


# -- the derivation adapter ---------------------------------------------------


def schedule_plans(
    plans: Sequence[DerivationPlan],
    executor: "Executor | str | None" = None,
    store: BoundStore | None = None,
    counters: "StreamCounters | None" = None,
) -> Iterator[tuple[int, list[TaskResult]]]:
    """Stream ``(plan_index, task_results)`` pairs in plan-completion order.

    Every plan's tasks enter one ready queue; a plan is yielded the moment
    its last task lands, with its results listed **in plan order** (so the
    downstream combine is byte-deterministic).  Plans fully satisfied by the
    ``store`` are yielded first, by ascending plan index, without executing
    anything.

    An ``executor`` given by name (or ``None``, resolved from the first
    plan's config) is owned by the scheduler and closed — cancelling
    anything still queued — when the stream ends, errors, or is abandoned;
    a live instance stays the caller's to close.

    Implemented as an adapter over the generic :func:`schedule_work` engine:
    one :class:`WorkItem` per :class:`DerivationTask`, memoised through the
    store's ``kind="task"`` entries and counted by
    :func:`task_derivation_count` — plus, when a per-stream
    :class:`StreamCounters` is given, on that stream's own counters (the
    concurrent service reports each request's work from these, since the
    process-global counters aggregate over all concurrent requests).
    """
    if not plans:
        return
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(
        executor if executor is not None else plans[0].config.executor,
        plans[0].config.n_jobs,
    )
    groups = [
        [
            WorkItem(
                payload=(plan.program, plan.config, task, plan.fingerprint),
                key=plan.task_key(task) if store is not None else None,
                context=task,
            )
            for task in plan.tasks
        ]
        for plan in plans
    ]
    try:
        yield from schedule_work(
            groups,
            _execute_payload,
            executor=resolved,
            store_get=store.get_task if store is not None else None,
            store_put=store.put_task if store is not None else None,
            decode=lambda item, payload: TaskResult.from_dict(payload, task=item.context),
            encode=lambda item, task_result: task_result.to_dict(),
            on_executed=lambda: _count_task_derivations(1, counters),
        )
    finally:
        if owns_executor:
            resolved.close()
