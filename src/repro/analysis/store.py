"""Content-addressed, shared, persistent store of derived I/O bounds.

The paper's value proposition is that a parametric bound is derived *once*
per program and then reused forever; :class:`BoundStore` is the subsystem
that makes the "forever" part real.  It replaces the ad-hoc flat-directory
JSON cache of the first ``Analyzer`` iteration with a first-class store:

* **content-addressed layout** — entries live at
  ``<root>/objects/<2-hex-shard>/<key>.json`` where the key is the program
  fingerprint crossed with the result-relevant config signature, so the same
  derivation is found by every process, suite run and machine sharing the
  root;
* **shared default root** — ``$REPRO_STORE`` when set, otherwise
  ``~/.cache/repro`` (the per-user XDG-style location), so suites,
  benchmarks and services all hit one store without any configuration;
* **schema negotiation** — every entry is a versioned envelope.  The older
  flat layout (``<root>/<key>.json`` bare-result files) is still read and
  transparently migrated into shards *when the key still matches* — note
  that results derived under an older ``DERIVATION_VERSION`` key differently
  on purpose (their semantics may differ) and are simply re-derived, never
  served; entries written by a *newer* library version are treated as misses
  and are not overwritten (a check-then-replace guard: best-effort under
  mixed-version writers racing on one key, absolute otherwise);
* **eviction** — :meth:`BoundStore.gc` enforces a size budget by evicting
  least-recently-used entries (access times are bumped on every hit, so the
  policy works on ``noatime`` mounts too);
* **concurrent-writer safety** — writes go through a temporary file in the
  destination shard followed by an atomic :func:`os.replace`; readers treat
  missing, truncated or unparseable entries as misses, so any number of
  writers and readers can share a store without locks.

Maintenance is exposed programmatically (:meth:`stats`, :meth:`gc`,
:meth:`clear`) and on the command line::

    python -m repro cache stats
    python -m repro cache gc --budget 64M
    python -m repro cache clear
"""

from __future__ import annotations

import io
import json
import os
import re
import tarfile
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..core.bounds import IOBoundResult

#: Version of the *derivation semantics*.  Bump it whenever an algorithm
#: change (strategy logic, set counting, decomposition, simplification) can
#: alter a derived bound: the version is folded into every store key (see
#: :meth:`repro.analysis.Analyzer.cache_key`), so a warm shared store never
#: serves results computed by older, differently-behaving code.
#: History: 2 — the nested-case-split counting fix in ``repro.sets``;
#: 3 — symbolic (Algorithm 5) wavefront validation replaces the
#: concrete-CDAG check and ``_omega_range`` takes the tightest bound per
#: piece instead of the first.
DERIVATION_VERSION = 3

#: Environment variable naming the default store root.
STORE_ENV = "REPRO_STORE"

#: Environment variable holding the default size budget (e.g. ``256M``).
BUDGET_ENV = "REPRO_STORE_BUDGET"

#: Version of the on-disk entry envelope written by this library.  Entries
#: with a *larger* ``store_schema`` come from a newer library: they are
#: reported as misses and never overwritten.  Entries with no envelope at all
#: (bare ``IOBoundResult.to_dict()`` payloads, the legacy flat-cache format)
#: are read as "schema 0" and migrated into the envelope on first hit.
STORE_SCHEMA = 1

_SIZE_SUFFIXES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}

#: Shape of a store key (and of a legacy flat entry's stem): the 64-hex
#: program fingerprint crossed with the 16-hex config digest.  The legacy
#: sweep in :meth:`BoundStore.clear` only touches files matching this, so a
#: root that also holds unrelated JSON (exported suite documents, notes)
#: never loses them.
_KEY_PATTERN = re.compile(r"[0-9a-f]{64}-[0-9a-f]{16}")

#: Archive member names accepted by :meth:`BoundStore.import_archive`: the
#: sharded layout with a result key, a ``-task`` key or a ``-sim`` key as the
#: stem.  Anything else in the tar — absolute paths, ``..`` traversals,
#: unrelated files — is skipped, never extracted: members are read through
#: ``extractfile`` and re-written through the store's own atomic write path,
#: so a hostile archive cannot place a file anywhere but a valid entry slot.
_ARCHIVE_MEMBER_PATTERN = re.compile(
    r"objects/[0-9a-f]{2}/([0-9a-f]{64}-(?:[0-9a-f]{16}|task|sim))\.json"
)

#: With a size budget configured, ``put`` triggers a full ``gc`` sweep only
#: every this many writes — a sweep walks and stats the whole store, so
#: running it per write would make batch derivation quadratic in store size.
GC_WRITE_INTERVAL = 8


def default_store_root() -> Path:
    """The shared store root: ``$REPRO_STORE`` or ``~/.cache/repro``."""
    env = os.environ.get(STORE_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def parse_size(text: str | int | None) -> int | None:
    """Parse a human-readable size (``"64M"``, ``"1G"``, ``4096``) to bytes."""
    if text is None:
        return None
    if isinstance(text, int):
        return text
    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([KMGT]?)I?B?\s*", text.upper())
    if match is None:
        raise ValueError(f"cannot parse size {text!r} (expected e.g. 4096, 64M, 1G)")
    return int(float(match.group(1)) * _SIZE_SUFFIXES[match.group(2)])


def _default_budget() -> int | None:
    env = os.environ.get(BUDGET_ENV)
    return parse_size(env) if env else None


@dataclass
class StoreStats:
    """Snapshot of a store's on-disk state plus this process's session counters."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    shards: int = 0
    schema_versions: dict[int, int] = field(default_factory=dict)
    #: Entry kinds on disk: whole-program ``"result"`` envelopes vs.
    #: task-level ``"task"`` envelopes (plus ``"unreadable"``).
    kinds: dict[str, int] = field(default_factory=dict)
    size_budget: int | None = None
    #: Session counters (this BoundStore instance, this process only).
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "shards": self.shards,
            "schema_versions": {str(k): v for k, v in sorted(self.schema_versions.items())},
            "kinds": dict(sorted(self.kinds.items())),
            "size_budget": self.size_budget,
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
            },
        }


class BoundStore:
    """Content-addressed persistent store of :class:`IOBoundResult` entries.

    Parameters
    ----------
    root:
        Store root directory.  ``None`` resolves the shared default
        (``$REPRO_STORE`` or ``~/.cache/repro``).
    size_budget:
        Byte budget enforced by :meth:`gc` (and opportunistically after every
        write).  ``None`` reads ``$REPRO_STORE_BUDGET``; when that is unset
        too, the store is unbounded until :meth:`gc` is called with an
        explicit budget.  Accepts ints or human-readable strings (``"64M"``).
    """

    def __init__(self, root: str | Path | None = None, size_budget: int | str | None = None):
        self.root = Path(root).expanduser() if root is not None else default_store_root()
        self.size_budget = parse_size(size_budget) if size_budget is not None else _default_budget()
        # One store instance is shared by every request thread of the
        # concurrent service; the disk layout is lock-free by design
        # (atomic replace + miss-on-unreadable), but the session counters
        # are plain ints and would drop increments under racing readers.
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._evictions = 0
        self._writes_since_gc = 0

    def _count_hit(self) -> None:
        with self._counter_lock:
            self._hits += 1

    def _count_miss(self) -> None:
        with self._counter_lock:
            self._misses += 1

    # Session counters: cheap accessors (no disk I/O — unlike stats()).

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def writes(self) -> int:
        return self._writes

    # -- layout ---------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        """On-disk location of an entry: ``objects/<first-2-hex>/<key>.json``."""
        return self.objects_dir / key[:2] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        """Pre-store flat layout (``<root>/<key>.json``), still read-supported."""
        return self.root / f"{key}.json"

    def _entries(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.json"))

    # -- read path ------------------------------------------------------------

    def get(self, key: str) -> IOBoundResult | None:
        """Look up a result; any unreadable or foreign entry is a miss."""
        path = self.path_for(key)
        payload = _read_json(path)
        if payload is not None and payload.get("kind", "result") != "result":
            # A task-level entry living under a colliding key is not a result.
            payload = None
        if payload is None:
            legacy = _read_json(self._legacy_path(key))
            if legacy is not None:
                result = _result_from_payload(legacy, schema=0)
                if result is not None:
                    # Migrate the legacy flat entry into the sharded layout so
                    # the next reader finds it in one probe; the old file is
                    # left alone (another process may be mid-read on it).
                    self.put(key, result)
                    self._count_hit()
                    return result
            self._count_miss()
            return None
        schema = _entry_schema(payload)
        result = _result_from_payload(payload, schema)
        if result is None:
            self._count_miss()
            return None
        _touch(path)  # bump atime explicitly: LRU works on noatime mounts
        self._count_hit()
        return result

    def contains(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            return True
        return self._legacy_path(key).exists()

    # -- write path -----------------------------------------------------------

    def put(
        self,
        key: str,
        result: IOBoundResult,
        metadata: Mapping[str, object] | None = None,
    ) -> Path | None:
        """Write an entry atomically; best-effort, never required to succeed.

        Returns the entry path, or ``None`` when the write was skipped:
        either a newer library version already owns the slot (the guard is
        check-then-replace, so under concurrent mixed-version writers racing
        on one key it is best-effort rather than atomic), or the store root
        is not writable (e.g. a read-only replica) — the store degrades to
        read-only rather than failing the caller's derivation.
        """
        envelope: dict = {
            "store_schema": STORE_SCHEMA,
            "key": key,
            "program": result.program_name,
            "result": result.to_dict(),
        }
        if metadata:
            envelope["metadata"] = dict(metadata)
        return self._write_entry(key, envelope)

    # -- kinded sub-result entries (tasks, simulations) -----------------------

    def _get_kinded(self, key: str, kind: str, body_field: str) -> dict | None:
        """Shared read path for non-result entry kinds (task, simulation)."""
        path = self.path_for(key)
        payload = _read_json(path)
        if (
            payload is None
            or _entry_schema(payload) > STORE_SCHEMA
            or payload.get("kind") != kind
        ):
            self._count_miss()
            return None
        body = payload.get(body_field)
        if not isinstance(body, dict):
            self._count_miss()
            return None
        _touch(path)
        self._count_hit()
        return body

    def _put_kinded(
        self,
        key: str,
        kind: str,
        body_field: str,
        payload: Mapping[str, object],
        metadata: Mapping[str, object] | None = None,
    ) -> Path | None:
        envelope: dict = {
            "store_schema": STORE_SCHEMA,
            "kind": kind,
            "key": key,
            body_field: dict(payload),
        }
        if metadata:
            envelope["metadata"] = dict(metadata)
        return self._write_entry(key, envelope)

    def get_task(self, key: str) -> dict | None:
        """Look up a task-level entry; returns its raw payload dict.

        Task entries memoise *sub-bound* derivations (one per
        :class:`~repro.analysis.plan.DerivationTask`, keyed by the task
        fingerprint), so a crashed or config-tweaked run resumes from every
        task that already finished.  The payload is the dict written by
        :meth:`put_task` (a ``TaskResult.to_dict()``); decoding it back into
        objects is the planner's job — the store stays schema-agnostic about
        task internals, exactly as it is about result internals.
        """
        return self._get_kinded(key, "task", "task_result")

    def put_task(
        self,
        key: str,
        payload: Mapping[str, object],
        metadata: Mapping[str, object] | None = None,
    ) -> Path | None:
        """Write a task-level entry atomically (same guarantees as ``put``)."""
        return self._put_kinded(key, "task", "task_result", payload, metadata)

    def get_simulation(self, key: str) -> dict | None:
        """Look up a ``kind="simulation"`` entry; returns its raw payload dict.

        Simulation entries memoise cache-simulator runs of the tiling search
        (:mod:`repro.upper.search`), keyed by (program fingerprint x instance
        x cache size x tile x policy).  A warm tightness-report rerun costs
        zero simulations exactly as a warm suite run costs zero derivations.
        """
        return self._get_kinded(key, "simulation", "simulation")

    def put_simulation(
        self,
        key: str,
        payload: Mapping[str, object],
        metadata: Mapping[str, object] | None = None,
    ) -> Path | None:
        """Write a simulation entry atomically (same guarantees as ``put``)."""
        return self._put_kinded(key, "simulation", "simulation", payload, metadata)

    def _write_entry(self, key: str, envelope: dict) -> Path | None:
        path = self.path_for(key)
        existing = _read_json(path)
        if existing is not None and _entry_schema(existing) > STORE_SCHEMA:
            return None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Write-then-rename in the destination directory so concurrent
            # writers and readers never observe a half-written entry.
            handle, temp_name = tempfile.mkstemp(
                dir=str(path.parent), prefix=".put-", suffix=".tmp"
            )
        except OSError:
            return None
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(envelope, stream)
            os.replace(temp_name, path)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            return None
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._counter_lock:
            self._writes += 1
            self._writes_since_gc += 1
            run_gc = (
                self.size_budget is not None
                and self._writes_since_gc >= GC_WRITE_INTERVAL
            )
        if run_gc:
            # Amortised budget enforcement: a gc sweep walks the whole store,
            # so it runs every GC_WRITE_INTERVAL writes, not per write.
            self.gc()
        return path

    # -- replication ----------------------------------------------------------

    def export_archive(self, path: str | Path) -> int:
        """Pack every store entry into a gzipped tar at ``path``.

        The archive holds the sharded ``objects/<2-hex>/<key>.json`` layout
        verbatim (results and task entries alike), so it can be imported
        into any other store root — the "replicate a store across machines"
        path.  The tar is written to a temporary sibling and moved into
        place atomically.  Returns the number of entries packed.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        count = 0
        handle, temp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".export-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                with tarfile.open(fileobj=stream, mode="w:gz") as archive:
                    for entry in self._entries():
                        try:
                            data = entry.read_bytes()
                        except OSError:
                            continue  # evicted by a concurrent gc
                        member = tarfile.TarInfo(
                            f"objects/{entry.parent.name}/{entry.name}"
                        )
                        member.size = len(data)
                        archive.addfile(member, io.BytesIO(data))
                        count += 1
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return count

    def import_archive(self, path: str | Path) -> tuple[int, int]:
        """Unpack a :meth:`export_archive` tar into this store.

        Schema negotiation mirrors the read path: an incoming entry is
        written only into an empty (or unreadable) slot, or over an entry
        with a strictly *older* envelope version — an existing entry of the
        same or newer ``store_schema`` is **never overwritten**, so a
        replica import can only add knowledge, not roll it back.  Entries
        exported by a *newer* library version (``store_schema`` above this
        library's) are skipped too: this library could neither read them nor
        ever replace them (``put`` refuses to overwrite newer entries), so
        accepting them would permanently poison the slot.  Members that are
        not well-formed store entries (bad names, path traversal, unparsable
        JSON) are skipped.  Returns ``(imported, skipped)``.
        """
        imported = 0
        skipped = 0
        with tarfile.open(path, mode="r:*") as archive:
            for member in archive:
                if not member.isfile():
                    continue
                match = _ARCHIVE_MEMBER_PATTERN.fullmatch(member.name.lstrip("./"))
                if match is None:
                    skipped += 1
                    continue
                key = match.group(1)
                stream = archive.extractfile(member)
                if stream is None:
                    skipped += 1
                    continue
                try:
                    payload = json.load(stream)
                except (ValueError, OSError):
                    skipped += 1
                    continue
                if not isinstance(payload, dict):
                    skipped += 1
                    continue
                if _entry_schema(payload) > STORE_SCHEMA:
                    skipped += 1
                    continue
                existing = _read_json(self.path_for(key))
                if existing is not None and _entry_schema(existing) >= _entry_schema(payload):
                    skipped += 1
                    continue
                if self._write_entry(key, payload) is None:
                    skipped += 1
                else:
                    imported += 1
        return imported, skipped

    # -- maintenance ----------------------------------------------------------

    def stats(self, quick: bool = False) -> StoreStats:
        """On-disk totals plus this instance's session hit/miss counters.

        ``quick=True`` skips opening and parsing every entry — counts and
        byte totals come from ``stat()`` alone, leaving ``schema_versions``
        and ``kinds`` empty.  That is the shape a live service's stats
        endpoint wants: answering a monitoring probe must not read the whole
        store off disk while requests are being served.
        """
        with self._counter_lock:
            stats = StoreStats(
                root=str(self.root),
                size_budget=self.size_budget,
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                evictions=self._evictions,
            )
        shards = set()
        for path in self._entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue  # evicted by a concurrent gc
            stats.entries += 1
            stats.total_bytes += size
            shards.add(path.parent.name)
            if quick:
                continue
            payload = _read_json(path)
            schema = -1 if payload is None else _entry_schema(payload)
            stats.schema_versions[schema] = stats.schema_versions.get(schema, 0) + 1
            kind = "unreadable" if payload is None else str(payload.get("kind", "result"))
            stats.kinds[kind] = stats.kinds.get(kind, 0) + 1
        stats.shards = len(shards)
        return stats

    def gc(self, size_budget: int | str | None = None) -> int:
        """Evict least-recently-used entries until the store fits the budget.

        Returns the number of evicted entries.  With no budget (neither here,
        nor on the store, nor in ``$REPRO_STORE_BUDGET``) this is a no-op.
        """
        budget = parse_size(size_budget) if size_budget is not None else self.size_budget
        with self._counter_lock:
            self._writes_since_gc = 0
        if budget is None:
            return 0
        records = []
        total = 0
        for path in self._entries():
            try:
                info = path.stat()
            except OSError:
                continue
            records.append((info.st_atime, info.st_size, path))
            total += info.st_size
        records.sort(key=lambda record: record[0])
        evicted = 0
        for _atime, size, path in records:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue  # lost a race with another gc; recount conservatively
            total -= size
            evicted += 1
        with self._counter_lock:
            self._evictions += evicted
        return evicted

    def clear(self) -> int:
        """Remove every entry (sharded and legacy); returns the count removed.

        Only files that look like store entries are touched: the legacy
        sweep matches the key pattern, so unrelated JSON living at the root
        (e.g. a ``suite --json`` export) survives.
        """
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                if not _KEY_PATTERN.fullmatch(path.stem):
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __repr__(self) -> str:
        budget = "unbounded" if self.size_budget is None else f"{self.size_budget}B"
        return f"BoundStore({str(self.root)!r}, {budget})"


def resolve_store(store: "BoundStore | str | Path | None", cache_dir: str | Path | None = None) -> "BoundStore | None":
    """Normalise the ways callers can name a store.

    Explicit :class:`BoundStore` instances pass through; strings/paths become
    a store rooted there; ``None`` falls back to ``cache_dir`` (the
    :class:`~repro.analysis.config.AnalysisConfig` alias) or, when that is
    unset too, to no store at all.
    """
    if isinstance(store, BoundStore):
        return store
    if store is not None:
        return BoundStore(store)
    if cache_dir is not None:
        return BoundStore(cache_dir)
    return None


# -- entry parsing helpers ----------------------------------------------------


def _read_json(path: Path) -> dict | None:
    """Best-effort JSON read: missing/truncated/non-dict files are ``None``."""
    try:
        with open(path, "r") as stream:
            payload = json.load(stream)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _entry_schema(payload: Mapping) -> int:
    """Envelope version of an entry payload (0 for legacy bare results)."""
    schema = payload.get("store_schema", 0)
    return schema if isinstance(schema, int) else 0


def _result_from_payload(payload: Mapping, schema: int) -> IOBoundResult | None:
    """Decode an entry according to its negotiated schema version.

    * schema 0 — the payload *is* a bare ``IOBoundResult.to_dict()`` (the
      legacy flat cache format);
    * schema 1 — the current envelope, result under ``"result"``;
    * anything newer — unknown on purpose: report a miss, never guess.
    """
    if schema > STORE_SCHEMA:
        return None
    body = payload if schema == 0 else payload.get("result")
    if not isinstance(body, Mapping):
        return None
    try:
        return IOBoundResult.from_dict(body)
    except (KeyError, ValueError, TypeError):
        return None


def _touch(path: Path) -> None:
    try:
        os.utime(path)
    except OSError:
        pass
