"""Derivation planning: the *what* of Algorithm 6 as an explicit task graph.

Algorithm 6 is embarrassingly parallel on the inside: every
(statement x strategy x depth) sub-CDAG derivation is independent of every
other one right up to the decomposition-lemma combination step.  This module
makes that structure explicit.  A derivation is first *planned* — each
registered :class:`~repro.analysis.strategies.BoundStrategy` turns the
program's DFG into a list of :class:`DerivationTask` coordinates — and only
then *executed*, task by task, over a pluggable
:class:`~repro.analysis.executor.Executor` (serial, thread pool, or process
pool; see :mod:`repro.analysis.executor`).

Determinism rule
----------------
Task results are always combined in **plan order** (the order
:meth:`DerivationPlan.tasks` lists them), never in completion order.  The
final :class:`~repro.core.bounds.IOBoundResult` — its ``sub_bounds`` list,
its ``log``, and hence its serialized bytes — is therefore identical across
the serial, thread and process executors, and across any scheduling of the
workers.

Task fingerprints
-----------------
Every task has a stable fingerprint derived from
:func:`program_fingerprint` + the task coordinates + the slice of the
configuration that can influence *that task's* result (a strategy narrows
this via ``task_signature``; e.g. a wavefront task does not key on
``gamma``).  The fingerprint keys task-level entries in the
:class:`~repro.analysis.store.BoundStore`, so a crashed or config-tweaked
run (say, ``max_depth`` raised from 1 to 2) reuses every finished sub-bound
instead of starting over.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.bounds import SubBound
from ..ir import AffineProgram, DFG
from .config import AnalysisConfig
from .store import DERIVATION_VERSION

#: Statement sentinel for a whole-strategy task: a legacy strategy that only
#: implements ``derive`` (no ``plan``/``run_task``) is scheduled as a single
#: task spanning all of its statements.
WHOLE_STRATEGY = "*"


def program_fingerprint(program: AffineProgram) -> str:
    """Stable hex fingerprint of an affine program's mathematical content.

    The fingerprint is built from a canonical textual description (name,
    parameters, array/statement domains, dependence functions) rather than
    from pickled bytes, so it is insensitive to object identity and to the
    order in which arrays, statements or dependences were declared.
    """
    lines = [f"program {program.name}", "params " + " ".join(program.params)]
    for name in sorted(program.arrays):
        array = program.arrays[name]
        lines.append(
            f"array {name} input={array.is_input} output={array.is_output} "
            f"domain={array.domain!r}"
        )
    for name in sorted(program.statements):
        statement = program.statements[name]
        lines.append(f"statement {name} flops={statement.flops} domain={statement.domain!r}")
    for dep in sorted(
        program.dependences,
        key=lambda d: (d.sink, d.source, repr(d.function.exprs), repr(d.domain)),
    ):
        lines.append(
            f"dep {dep.source}->{dep.sink} fn={dep.function.exprs!r} domain={dep.domain!r}"
        )
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


# -- per-process DFG cache ----------------------------------------------------

_DFG_CACHE_LIMIT = 8
_dfg_cache_lock = threading.Lock()
_dfg_cache: dict[str, DFG] = {}


def dfg_for(program: AffineProgram, fingerprint: str | None = None) -> DFG:
    """Build (or reuse) the DFG of a program, keyed by its fingerprint.

    Both the planner and every executor's task entry point funnel through
    here, so one process builds a program's DFG — and the relation caches
    that accumulate on it — once, whether it is planning, executing
    serially, or serving a worker pool.  Bounded so a long-lived service
    cannot leak programs.
    """
    key = fingerprint if fingerprint is not None else program_fingerprint(program)
    with _dfg_cache_lock:
        cached = _dfg_cache.get(key)
    if cached is not None:
        return cached
    dfg = DFG.from_program(program)
    with _dfg_cache_lock:
        while len(_dfg_cache) >= _DFG_CACHE_LIMIT:
            _dfg_cache.pop(next(iter(_dfg_cache)))
        _dfg_cache[key] = dfg
    return dfg


@dataclass(frozen=True)
class DerivationTask:
    """One schedulable unit of Algorithm 6: statement x strategy x depth.

    A task is pure data (no callables), so it can be pickled to a process
    pool and serialized into a store entry.  ``depth`` is the wavefront
    parametrisation depth (0 for strategies without a depth notion, e.g.
    K-partition tasks, whose internal same-statement rounds are sequential
    by construction and stay inside one task).
    """

    strategy: str
    statement: str
    depth: int = 0

    @property
    def task_id(self) -> str:
        """Human-readable stable identity used for ordering and logs."""
        return f"{self.strategy}:{self.statement}:d{self.depth}"

    def to_dict(self) -> dict[str, Any]:
        return {"strategy": self.strategy, "statement": self.statement, "depth": self.depth}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DerivationTask":
        return cls(
            strategy=data["strategy"],
            statement=data["statement"],
            depth=int(data.get("depth", 0)),
        )


@dataclass
class TaskResult:
    """The output of one executed task: its sub-bounds and its log lines."""

    task: DerivationTask
    sub_bounds: list[SubBound] = field(default_factory=list)
    log: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task.to_dict(),
            "sub_bounds": [bound.to_dict() for bound in self.sub_bounds],
            "log": list(self.log),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], task: DerivationTask | None = None
    ) -> "TaskResult":
        """Rebuild a result; ``task`` (when given) overrides the stored one.

        Store lookups pass the *planned* task: the store key already binds
        the coordinates, and the planned object keeps ``is`` identity with
        the plan.
        """
        if task is None:
            task = DerivationTask.from_dict(data["task"])
        return cls(
            task=task,
            sub_bounds=[SubBound.from_dict(entry) for entry in data.get("sub_bounds", [])],
            log=list(data.get("log", [])),
        )


@dataclass(frozen=True)
class DerivationPlan:
    """The full ordered task list for one (program, config) derivation."""

    program: AffineProgram
    config: AnalysisConfig
    tasks: tuple[DerivationTask, ...]
    fingerprint: str

    def __len__(self) -> int:
        return len(self.tasks)

    def task_key(self, task: DerivationTask) -> str:
        """Store key of a task-level entry (the task fingerprint).

        Folds together the derivation-semantics version, the program
        fingerprint, the task coordinates and the task-relevant config
        signature.  Strategies narrow the last part via ``task_signature``
        (e.g. a wavefront task is insensitive to ``gamma``, and no task keys
        on ``max_depth`` — so raising it reuses every finished depth).  The
        ``-task`` suffix keeps the key space disjoint from result-level
        entries while sharding by the leading hex as usual.
        """
        from .strategies import get_strategy  # local: strategies imports this module

        try:
            strategy = get_strategy(task.strategy)
        except KeyError:
            strategy = None
        signer = getattr(strategy, "task_signature", None)
        signature = signer(self.config) if signer is not None else self.config.signature()
        text = repr((DERIVATION_VERSION, self.fingerprint, task.task_id, signature))
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return f"{digest}-task"

    def task_keys(self) -> list[str]:
        return [self.task_key(task) for task in self.tasks]


def plan_strategy(strategy, dfg: DFG, config: AnalysisConfig) -> list[DerivationTask]:
    """The tasks one strategy contributes for one program.

    Strategies that predate the task pipeline (only ``derive``) are planned
    as a single whole-strategy task, so third-party plug-ins keep working
    unchanged — they just cannot parallelise internally.
    """
    planner = getattr(strategy, "plan", None)
    if planner is None:
        return [DerivationTask(strategy=strategy.name, statement=WHOLE_STRATEGY)]
    return list(planner(dfg, config))


def run_strategy_task(
    strategy,
    dfg: DFG,
    config: AnalysisConfig,
    instance: Mapping[str, int],
    task: DerivationTask,
) -> TaskResult:
    """Execute one task in-process (the executor-agnostic core)."""
    runner = getattr(strategy, "run_task", None)
    if runner is None or task.statement == WHOLE_STRATEGY:
        log: list[str] = []
        sub_bounds = strategy.derive(dfg, config, instance, log)
        return TaskResult(task=task, sub_bounds=list(sub_bounds), log=log)
    return runner(dfg, config, instance, task)


def plan_program(
    program: AffineProgram, config: AnalysisConfig, dfg: DFG | None = None
) -> DerivationPlan:
    """Plan the whole derivation: every strategy's tasks, in strategy order.

    The plan is deterministic: strategies appear in ``config.strategies``
    order and each strategy lists its tasks in a fixed (topological)
    statement order — the exact order the monolithic ``derive`` loops used
    to run in, so logs and sub-bound lists are bit-for-bit compatible.
    """
    from .strategies import resolve_strategies  # local: avoids import cycle

    fingerprint = program_fingerprint(program)
    if dfg is None:
        dfg = dfg_for(program, fingerprint)
    tasks: list[DerivationTask] = []
    for strategy in resolve_strategies(config.strategies):
        tasks.extend(plan_strategy(strategy, dfg, config))
    return DerivationPlan(
        program=program,
        config=config,
        tasks=tuple(tasks),
        fingerprint=fingerprint,
    )
