"""Pluggable bound-derivation strategies and their registry.

Algorithm 6 of the paper interleaves two families of sub-bounds: K-partition
bounds (Alg. 2/3/4) and wavefront bounds (Alg. 5 / Cor. 6.3).  Historically
both were inlined in ``derive_bounds``; here each family is a
:class:`BoundStrategy` and the driver is a generic pipeline over the
strategies named by :class:`~repro.analysis.config.AnalysisConfig`.

A strategy participates in the plan/execute pipeline through three methods:

* ``plan(dfg, config)`` — list the independent
  :class:`~repro.analysis.plan.DerivationTask` units it wants scheduled
  (one per statement for K-partition, one per statement x depth for
  wavefront);
* ``run_task(dfg, config, instance, task)`` — execute one of those tasks,
  returning a :class:`~repro.analysis.plan.TaskResult` (pure function of its
  arguments: it may run in a worker thread or process);
* ``task_signature(config)`` — the slice of the config that can influence
  this strategy's task results, folded into task-level store keys (narrower
  than the full signature, so e.g. raising ``max_depth`` reuses finished
  wavefront depths from the store).

``derive`` survives as a compatibility wrapper that plans and runs serially;
third-party strategies that only implement ``derive`` still work — the
planner schedules them as a single whole-strategy task (see
:func:`repro.analysis.plan.plan_strategy`).

Third parties can register additional strategies (e.g. an isl-backed
derivation, or a domain-specific shortcut) with :func:`register_strategy` and
select them via ``AnalysisConfig(strategies=(...))`` — no changes to the
driver are needed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Protocol, runtime_checkable

from ..core.bounds import SubBound
from ..core.kpartition import (
    MAX_WORKING_PIECES,
    statement_partition_bounds,
)
from ..core.wavefront import sub_param_q_by_wavefront, wavefront_depths
from ..ir import DFG
from .config import AnalysisConfig
from .plan import DerivationTask, TaskResult

__all__ = [
    "BoundStrategy",
    "KPartitionStrategy",
    "MAX_WORKING_PIECES",
    "WavefrontStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "resolve_strategies",
    "unregister_strategy",
]


@runtime_checkable
class BoundStrategy(Protocol):
    """One family of sub-bound derivations plugged into the Alg. 6 driver.

    A strategy receives the program's DFG, the analysis configuration and the
    concrete ranking instance, and returns the sub-bounds it could derive.
    Strategies must be stateless (or at least reusable): one instance may be
    used for many programs, possibly from multiple worker threads or
    processes.  ``plan``/``run_task``/``task_signature`` (see the module
    docstring) are optional but recommended: they let the executor schedule
    the strategy's work task by task.
    """

    #: Registry key, also recorded in ``SubBound.method``-style logs.
    name: str

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        """Derive the strategy's sub-bounds for ``dfg.program``."""
        ...


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], BoundStrategy]] = {}


def register_strategy(
    factory: Callable[[], BoundStrategy], *, name: str | None = None, replace: bool = False
) -> Callable[[], BoundStrategy]:
    """Register a strategy factory (typically the strategy class itself).

    ``name`` defaults to the factory's ``name`` class attribute.  Returns the
    factory so it can be used as a decorator::

        @register_strategy
        class MyStrategy:
            name = "mine"
            def derive(self, dfg, config, instance, log): ...

    Note for parallel execution: worker processes re-import this module, so a
    custom strategy is only visible to them if its registration runs at
    import time of a module the workers also import (always true with the
    ``fork`` start method used on Linux; under ``spawn`` — macOS/Windows
    defaults — register at module top level, not inside
    ``if __name__ == "__main__"``).
    """
    key = name if name is not None else getattr(factory, "name", None)
    if not key or not isinstance(key, str):
        raise ValueError("strategy factory must define a non-empty string `name`")
    if key in _REGISTRY and not replace:
        raise ValueError(f"strategy {key!r} already registered (pass replace=True to override)")
    _REGISTRY[key] = factory
    return factory


def unregister_strategy(name: str) -> None:
    """Remove a strategy from the registry (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get_strategy(name: str) -> BoundStrategy:
    """Instantiate the registered strategy called ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None
    return factory()


def available_strategies() -> list[str]:
    """Names of all registered strategies, sorted."""
    return sorted(_REGISTRY)


def resolve_strategies(names: Iterable[str]) -> list[BoundStrategy]:
    """Instantiate the strategies named by a config, preserving order."""
    return [get_strategy(name) for name in names]


# -- built-in strategies ----------------------------------------------------

@register_strategy
class KPartitionStrategy:
    """K-partition sub-bounds (Alg. 2/3/4 + the Sec. 4.2 decomposition).

    Planned as one task per statement; inside a task, the same-statement
    rounds (search a path combination, grow the kernel lattice, derive an
    Alg. 4 bound, remove the covered may-spill region, repeat) are
    sequential by construction and run in
    :func:`repro.core.kpartition.statement_partition_bounds`.
    """

    name = "kpartition"

    def plan(self, dfg: DFG, config: AnalysisConfig) -> list[DerivationTask]:
        return [
            DerivationTask(strategy=self.name, statement=statement)
            for statement in dfg.topological_statements()
        ]

    def run_task(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        task: DerivationTask,
    ) -> TaskResult:
        log: list[str] = []
        sub_bounds = statement_partition_bounds(
            dfg,
            task.statement,
            instance,
            config.gamma,
            max_rounds=config.max_subcdags_per_statement,
            log=log,
        )
        return TaskResult(task=task, sub_bounds=sub_bounds, log=log)

    def task_signature(self, config: AnalysisConfig) -> tuple:
        """Config fields a K-partition task's result can depend on."""
        return (
            self.name,
            None if config.instance is None else tuple(sorted(config.instance.items())),
            config.gamma,
            config.max_subcdags_per_statement,
        )

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        """Compatibility wrapper: plan, then run every task serially."""
        sub_bounds: list[SubBound] = []
        for task in self.plan(dfg, config):
            result = self.run_task(dfg, config, instance, task)
            sub_bounds.extend(result.sub_bounds)
            log.extend(result.log)
        return sub_bounds


@register_strategy
class WavefrontStrategy:
    """Wavefront sub-bounds (Alg. 5 / Cor. 6.3) at depths 1..max_depth.

    Planned as one task per (statement, depth) pair — depth-major, matching
    the historical loop order — with the plan-time applicability test of
    :func:`repro.core.wavefront.wavefront_depths`.
    """

    name = "wavefront"

    def plan(self, dfg: DFG, config: AnalysisConfig) -> list[DerivationTask]:
        program = dfg.program
        statements = dfg.topological_statements()
        admissible = {
            statement: set(
                wavefront_depths(program.statement(statement).dims, config.max_depth)
            )
            for statement in statements
        }
        return [
            DerivationTask(strategy=self.name, statement=statement, depth=depth)
            for depth in range(1, config.max_depth + 1)
            for statement in statements
            if depth in admissible[statement]
        ]

    def run_task(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        task: DerivationTask,
    ) -> TaskResult:
        log: list[str] = []
        sub_bounds: list[SubBound] = []
        bound = sub_param_q_by_wavefront(
            dfg,
            task.statement,
            depth=task.depth,
            validation_instance=config.wavefront_validation_instance,
            validate=config.validate_wavefront,
            validation=config.wavefront_validation,
        )
        if bound is not None:
            sub_bounds.append(bound)
            log.append(f"wavefront[{task.statement} depth {task.depth}]: {bound.smooth}")
        return TaskResult(task=task, sub_bounds=sub_bounds, log=log)

    def task_signature(self, config: AnalysisConfig) -> tuple:
        """Config fields a wavefront task's result can depend on.

        ``max_depth`` is deliberately absent: it decides which tasks are
        *planned*, not what any one task computes, so a store populated at
        ``max_depth=1`` keeps serving its depth-1 entries when the config is
        re-run at ``max_depth=2``.
        """
        return (
            self.name,
            config.validate_wavefront,
            config.wavefront_validation,
            None
            if config.wavefront_validation_instance is None
            else tuple(sorted(config.wavefront_validation_instance.items())),
        )

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        """Compatibility wrapper: plan, then run every task serially."""
        sub_bounds: list[SubBound] = []
        for task in self.plan(dfg, config):
            result = self.run_task(dfg, config, instance, task)
            sub_bounds.extend(result.sub_bounds)
            log.extend(result.log)
        return sub_bounds
