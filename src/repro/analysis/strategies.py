"""Pluggable bound-derivation strategies and their registry.

Algorithm 6 of the paper interleaves two families of sub-bounds: K-partition
bounds (Alg. 2/3/4) and wavefront bounds (Alg. 5 / Cor. 6.3).  Historically
both were inlined in ``derive_bounds``; here each family is a
:class:`BoundStrategy` and the driver is a generic loop over the strategies
named by :class:`~repro.analysis.config.AnalysisConfig`.

Third parties can register additional strategies (e.g. an isl-backed
derivation, or a domain-specific shortcut) with :func:`register_strategy` and
select them via ``AnalysisConfig(strategies=(...))`` — no changes to the
driver are needed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Protocol, runtime_checkable

from ..core.bounds import SubBound, evaluate
from ..core.kpartition import sub_param_q_by_partition
from ..core.paths import genpaths
from ..core.wavefront import sub_param_q_by_wavefront
from ..ir import DFG
from ..linalg import SubspaceLattice, subspace_closure
from ..sets import Constraint, CountingError, LinExpr, ParamSet, card
from .config import AnalysisConfig

#: Cap on the number of pieces a shattered working domain may have before the
#: same-statement decomposition gives up on further rounds.
MAX_WORKING_PIECES = 16


@runtime_checkable
class BoundStrategy(Protocol):
    """One family of sub-bound derivations plugged into the Alg. 6 driver.

    A strategy receives the program's DFG, the analysis configuration and the
    concrete ranking instance, and returns the sub-bounds it could derive.
    Strategies must be stateless (or at least reusable): one instance may be
    used for many programs, possibly from multiple worker processes.
    """

    #: Registry key, also recorded in ``SubBound.method``-style logs.
    name: str

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        """Derive the strategy's sub-bounds for ``dfg.program``."""
        ...


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], BoundStrategy]] = {}


def register_strategy(
    factory: Callable[[], BoundStrategy], *, name: str | None = None, replace: bool = False
) -> Callable[[], BoundStrategy]:
    """Register a strategy factory (typically the strategy class itself).

    ``name`` defaults to the factory's ``name`` class attribute.  Returns the
    factory so it can be used as a decorator::

        @register_strategy
        class MyStrategy:
            name = "mine"
            def derive(self, dfg, config, instance, log): ...

    Note for ``Analyzer.analyze_many`` with ``n_jobs > 1``: worker processes
    re-import this module, so a custom strategy is only visible to them if
    its registration runs at import time of a module the workers also import
    (always true with the ``fork`` start method used on Linux; under
    ``spawn`` — macOS/Windows defaults — register at module top level, not
    inside ``if __name__ == "__main__"``).
    """
    key = name if name is not None else getattr(factory, "name", None)
    if not key or not isinstance(key, str):
        raise ValueError("strategy factory must define a non-empty string `name`")
    if key in _REGISTRY and not replace:
        raise ValueError(f"strategy {key!r} already registered (pass replace=True to override)")
    _REGISTRY[key] = factory
    return factory


def unregister_strategy(name: str) -> None:
    """Remove a strategy from the registry (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get_strategy(name: str) -> BoundStrategy:
    """Instantiate the registered strategy called ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; available: {available_strategies()}"
        ) from None
    return factory()


def available_strategies() -> list[str]:
    """Names of all registered strategies, sorted."""
    return sorted(_REGISTRY)


def resolve_strategies(names: Iterable[str]) -> list[BoundStrategy]:
    """Instantiate the strategies named by a config, preserving order."""
    return [get_strategy(name) for name in names]


# -- shared helpers ---------------------------------------------------------

def _large_parameter_context(params: Iterable[str], minimum: int = 4) -> list[Constraint]:
    """Context constraints ``param >= minimum`` encoding the large-parameter regime."""
    return [Constraint(LinExpr({p: 1}, -minimum)) for p in params]


def _instance_card(domain: ParamSet, instance: Mapping[str, int]) -> float | None:
    """Cardinality of a domain at the heuristic instance (None when unknown)."""
    try:
        expr = card(domain)
    except CountingError:
        return None
    try:
        return evaluate(expr, instance)
    except (TypeError, ValueError):
        return None


# -- built-in strategies ----------------------------------------------------

@register_strategy
class KPartitionStrategy:
    """K-partition sub-bounds (Alg. 2/3/4 + the Sec. 4.2 decomposition).

    For every statement, repeatedly search for a path combination (Alg. 3),
    grow the kernel subgroup lattice (Alg. 2) and derive a K-partition bound
    (Alg. 4), removing the covered may-spill region before looking for
    another sub-CDAG of the same statement.
    """

    name = "kpartition"

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        program = dfg.program
        sub_bounds: list[SubBound] = []
        for statement in dfg.topological_statements():
            working = program.statement(statement).domain
            for round_index in range(config.max_subcdags_per_statement):
                bound = self._derive_partition_bound(
                    dfg, statement, working, instance, config.gamma
                )
                if bound is None:
                    break
                sub_bounds.append(bound)
                log.append(
                    f"kpartition[{statement} round {round_index}]: "
                    f"{bound.smooth} ({bound.notes})"
                )
                if round_index + 1 >= config.max_subcdags_per_statement:
                    break
                spill = bound.may_spill.get(statement)
                if spill is None:
                    break
                # Pieces that are only non-empty for degenerate (tiny)
                # parameter values are dropped: this is pure search-space
                # pruning and keeps the later rounds focused on genuinely
                # uncovered regions.
                context = _large_parameter_context(program.params)
                working = working.subtract(spill).coalesce(context)
                if (
                    working.is_obviously_empty()
                    or len(working.pieces) > MAX_WORKING_PIECES
                    or working.is_empty(context)
                ):
                    break
        return sub_bounds

    @staticmethod
    def _derive_partition_bound(
        dfg: DFG,
        statement: str,
        working_domain: ParamSet,
        instance: Mapping[str, int],
        gamma: float,
    ) -> SubBound | None:
        """One iteration of the per-statement loop of Algorithm 6 (lines 9-18)."""
        domain_size = _instance_card(working_domain, instance)
        if domain_size is not None and domain_size < 1:
            return None

        paths = genpaths(dfg, statement, restrict_domain=working_domain)
        if not paths:
            return None

        ambient = dfg.program.statement(statement).space.dim
        lattice = SubspaceLattice(ambient)
        accepted = []
        current_domain = working_domain.intersect(dfg.program.statement(statement).domain)
        for path in paths:
            restricted = current_domain.intersect(path.domain)
            if domain_size is not None:
                restricted_size = _instance_card(restricted, instance)
                if restricted_size is not None and restricted_size < gamma * domain_size:
                    continue
            kernel = path.kernel()
            if kernel.is_zero():
                continue
            lattice, changed = subspace_closure(lattice, kernel)
            if not changed:
                continue
            accepted.append(path)
            current_domain = restricted

        if not accepted:
            return None
        return sub_param_q_by_partition(
            dfg, statement, accepted, current_domain, lattice, depth=0
        )


@register_strategy
class WavefrontStrategy:
    """Wavefront sub-bounds (Alg. 5 / Cor. 6.3) at depths 1..max_depth."""

    name = "wavefront"

    def derive(
        self,
        dfg: DFG,
        config: AnalysisConfig,
        instance: Mapping[str, int],
        log: list[str],
    ) -> list[SubBound]:
        program = dfg.program
        sub_bounds: list[SubBound] = []
        for depth in range(1, config.max_depth + 1):
            for statement in dfg.topological_statements():
                if len(program.statement(statement).dims) <= depth:
                    continue
                bound = sub_param_q_by_wavefront(
                    dfg,
                    statement,
                    depth=depth,
                    validation_instance=config.wavefront_validation_instance,
                    validate=config.validate_wavefront,
                    validation=config.wavefront_validation,
                )
                if bound is not None:
                    sub_bounds.append(bound)
                    log.append(f"wavefront[{statement} depth {depth}]: {bound.smooth}")
        return sub_bounds
