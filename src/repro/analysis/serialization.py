"""Persist and reload batches of analysis results as JSON documents.

The per-object schema lives on the result types themselves
(:meth:`IOBoundResult.to_dict` / :meth:`IOBoundResult.from_dict`, with sympy
expressions serialized via ``srepr``); this module adds the document-level
plumbing used by the CLI, the PolyBench suite and the on-disk cache: a
versioned envelope holding many results keyed by program name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Mapping

from ..core.bounds import IOBoundResult

#: Version tag of the multi-result document envelope.
DOCUMENT_SCHEMA = 1


def results_to_document(results: Iterable[IOBoundResult]) -> dict:
    """Bundle results into a JSON-compatible document keyed by program name."""
    return {
        "schema": DOCUMENT_SCHEMA,
        "results": {result.program_name: result.to_dict() for result in results},
    }


def results_from_document(document: Mapping) -> dict[str, IOBoundResult]:
    """Inverse of :func:`results_to_document`."""
    schema = document.get("schema", DOCUMENT_SCHEMA)
    if schema != DOCUMENT_SCHEMA:
        raise ValueError(
            f"unsupported results document schema {schema!r} "
            f"(this library reads schema {DOCUMENT_SCHEMA})"
        )
    return {
        name: IOBoundResult.from_dict(entry)
        for name, entry in document.get("results", {}).items()
    }


def save_results(results: Iterable[IOBoundResult], path: str | Path) -> Path:
    """Write results to ``path`` as a JSON document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(results_to_document(results), indent=2) + "\n")
    return path


def load_results(path: str | Path) -> dict[str, IOBoundResult]:
    """Reload results previously written by :func:`save_results`."""
    return results_from_document(json.loads(Path(path).read_text()))
