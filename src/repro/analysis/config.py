"""Analysis configuration: every knob of the derivation in one frozen object.

:class:`AnalysisConfig` replaces the seven loose keyword arguments of the
legacy ``derive_bounds`` entry point.  A config is immutable, so it can be
shared between an :class:`~repro.analysis.Analyzer` and its worker processes,
compared for equality, folded into an on-disk cache key (via the hashable
:meth:`AnalysisConfig.signature`), and round-tripped through JSON (for the
CLI and for persisted suite runs).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

#: Default heuristic instance: parameters are taken much larger than the cache
#: size, matching the asymptotic regime (S = o(params)) in which the bounds
#: are compared and reported.  The instance is only used to *rank* candidate
#: sub-bounds; the returned bound is valid for every parameter value.
DEFAULT_PARAM_VALUE = 10**5
DEFAULT_CACHE_SIZE = 256

#: Fraction of the statement domain a path must cover to be considered by the
#: K-partition search.
DEFAULT_GAMMA = 0.25

#: Number of statement-centric sub-CDAGs searched per statement.  The second
#: and later rounds work on the domain left after removing the previous
#: round's may-spill set; that set difference can shatter into many pieces, so
#: the default keeps a single round (all headline PolyBench results come from
#: round 0) and callers can raise it for programs that need the Sec. 4.2
#: same-statement decomposition.
DEFAULT_MAX_SUBCDAGS_PER_STATEMENT = 1

#: Strategies run by default, in order: K-partition bounds (Alg. 4) first,
#: wavefront bounds (Alg. 5) second — the order of Algorithm 6.
DEFAULT_STRATEGIES = ("kpartition", "wavefront")


@dataclass(frozen=True)
class AnalysisConfig:
    """Immutable bundle of every knob of the IOLB derivation (Algorithm 6).

    Attributes
    ----------
    instance:
        Heuristic parameter values used only to *rank* competing sub-bounds
        (the returned bound is valid for all parameter values).  Defaults to
        ``DEFAULT_PARAM_VALUE`` (10**5) for every program parameter and
        ``DEFAULT_CACHE_SIZE`` (256) for the cache size ``S``.
    gamma:
        Fraction of the statement domain a path must cover to be considered
        by the K-partition search.
    max_depth:
        Maximum loop-parametrisation depth explored by the wavefront method
        (0 disables wavefront bounds even when the strategy is listed).
    validate_wavefront:
        When True, wavefront bounds are only kept if the reachability
        hypothesis of Cor. 6.3 is validated (see ``wavefront_validation``).
    wavefront_validation:
        How the hypothesis is checked: ``"symbolic"`` (default) decides it
        on :mod:`repro.rel` affine relations with transitive closure —
        instance-independent, faithful to the paper's Algorithm 5 — while
        ``"concrete"`` expands a small CDAG and checks it by graph search
        (the historical validator, kept as a differential oracle).
    wavefront_validation_instance:
        Parameter values for the concrete validation CDAG (None picks a
        small default inside the wavefront detector; ignored in symbolic
        mode).
    max_subcdags_per_statement:
        Sub-CDAG rounds searched per statement (Sec. 4.2 decomposition).
    strategies:
        Names of the :class:`~repro.analysis.strategies.BoundStrategy`
        implementations to run, in order.  Names are resolved against the
        strategy registry at analysis time, so strategies registered after
        the config was created are usable.
    executor:
        How derivation tasks are executed: ``"serial"`` (in-process, the
        default), ``"thread"`` (a shared thread pool), or ``"process"`` (a
        shared process pool).  ``None`` consults ``$REPRO_EXECUTOR`` and
        finally picks ``"process"`` when ``n_jobs > 1``, ``"serial"``
        otherwise — so ``n_jobs=8`` alone keeps the historical process
        fan-out behaviour.  Executors change *how fast* the analysis runs,
        never *what* it computes: results are combined in plan order, so
        they are byte-identical across executors.
    n_jobs:
        Worker count of the task executor (threads or processes).  1 means
        sequential in-process execution.
    cache_dir:
        Thin alias for a result store: when set, the
        :class:`~repro.analysis.Analyzer` memoises through a
        :class:`~repro.analysis.store.BoundStore` rooted at this directory
        (keyed by program fingerprint + config signature).  None means no
        implicit store — pass ``store=`` to the analyzer to use one (e.g.
        the shared default under ``$REPRO_STORE`` / ``~/.cache/repro``).
    """

    instance: Mapping[str, int] | None = None
    gamma: float = DEFAULT_GAMMA
    max_depth: int = 1
    validate_wavefront: bool = True
    wavefront_validation: str = "symbolic"
    wavefront_validation_instance: Mapping[str, int] | None = None
    max_subcdags_per_statement: int = DEFAULT_MAX_SUBCDAGS_PER_STATEMENT
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES
    executor: str | None = None
    n_jobs: int = 1
    cache_dir: str | Path | None = None

    def __post_init__(self) -> None:
        # Normalise sequence/str fields so equality and the cache signature
        # do not depend on how the caller spelled them.
        object.__setattr__(self, "strategies", tuple(self.strategies))
        if self.instance is not None:
            object.__setattr__(
                self, "instance", {str(k): int(v) for k, v in dict(self.instance).items()}
            )
        if self.wavefront_validation_instance is not None:
            object.__setattr__(
                self,
                "wavefront_validation_instance",
                {str(k): int(v) for k, v in dict(self.wavefront_validation_instance).items()},
            )
        if self.cache_dir is not None:
            object.__setattr__(self, "cache_dir", Path(self.cache_dir))

        if not (0.0 <= self.gamma <= 1.0):
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        if self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.max_subcdags_per_statement < 1:
            raise ValueError(
                f"max_subcdags_per_statement must be >= 1, got {self.max_subcdags_per_statement}"
            )
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        from .executor import EXECUTOR_NAMES

        if self.executor is not None and self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES} (or None for "
                f"$REPRO_EXECUTOR / automatic), got {self.executor!r}"
            )
        from ..core.wavefront import VALIDATION_MODES

        if self.wavefront_validation not in VALIDATION_MODES:
            raise ValueError(
                f"wavefront_validation must be one of {VALIDATION_MODES}, got "
                f"{self.wavefront_validation!r}"
            )
        if not self.strategies:
            raise ValueError("strategies must name at least one registered strategy")
        for name in self.strategies:
            if not isinstance(name, str) or not name:
                raise ValueError(f"strategy names must be non-empty strings, got {name!r}")

    # -- derivation helpers -------------------------------------------------

    def replace(self, **changes: Any) -> "AnalysisConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def heuristic_instance(self, params: tuple[str, ...]) -> dict[str, int]:
        """The concrete ranking instance for a program's parameters."""
        values = {p: DEFAULT_PARAM_VALUE for p in params}
        values["S"] = DEFAULT_CACHE_SIZE
        if self.instance:
            values.update({k: int(v) for k, v in self.instance.items()})
        return values

    def signature(self) -> tuple:
        """Hashable summary of every field that influences the *result*.

        ``executor``, ``n_jobs`` and ``cache_dir`` change how the analysis
        is executed, not what it computes (results are combined in plan
        order on every executor), so they are excluded — a cached result
        stays valid when only those fields differ.
        """
        return (
            None if self.instance is None else tuple(sorted(self.instance.items())),
            self.gamma,
            self.max_depth,
            self.validate_wavefront,
            self.wavefront_validation,
            None
            if self.wavefront_validation_instance is None
            else tuple(sorted(self.wavefront_validation_instance.items())),
            self.max_subcdags_per_statement,
            self.strategies,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (for the CLI and cache metadata)."""
        return {
            "instance": None if self.instance is None else dict(self.instance),
            "gamma": self.gamma,
            "max_depth": self.max_depth,
            "validate_wavefront": self.validate_wavefront,
            "wavefront_validation": self.wavefront_validation,
            "wavefront_validation_instance": (
                None
                if self.wavefront_validation_instance is None
                else dict(self.wavefront_validation_instance)
            ),
            "max_subcdags_per_statement": self.max_subcdags_per_statement,
            "strategies": list(self.strategies),
            "executor": self.executor,
            "n_jobs": self.n_jobs,
            "cache_dir": None if self.cache_dir is None else str(self.cache_dir),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown AnalysisConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("strategies") is not None:
            kwargs["strategies"] = tuple(kwargs["strategies"])
        return cls(**kwargs)
