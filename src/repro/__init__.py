"""repro — a reproduction of IOLB (Olivry et al., PLDI 2020).

Automated derivation of parametric data-movement (I/O) lower bounds for
affine programs, and of the corresponding upper bounds on operational
intensity (OI).

Typical usage::

    from repro import polybench
    from repro.core import derive_bounds

    spec = polybench.get_kernel("gemm")
    result = derive_bounds(spec.program)
    print(result.asymptotic)        # ~ 2*Ni*Nj*Nk/sqrt(S)
    print(result.oi_upper_bound())  # ~ sqrt(S)
"""

from . import core, ir, linalg, pebble, polybench, sets
from .core import derive_bounds
from .ir import AffineProgram, ProgramBuilder

__all__ = [
    "AffineProgram",
    "ProgramBuilder",
    "core",
    "derive_bounds",
    "ir",
    "linalg",
    "pebble",
    "polybench",
    "sets",
]

__version__ = "1.0.0"
