"""repro — a reproduction of IOLB (Olivry et al., PLDI 2020).

Automated derivation of parametric data-movement (I/O) lower bounds for
affine programs, and of the corresponding upper bounds on operational
intensity (OI).

Typical usage::

    from repro import polybench
    from repro.analysis import AnalysisConfig, Analyzer

    spec = polybench.get_kernel("gemm")
    result = Analyzer(AnalysisConfig()).analyze(spec.program)
    print(result.asymptotic)        # ~ 2*Ni*Nj*Nk/sqrt(S)
    print(result.oi_upper_bound())  # ~ sqrt(S)

The legacy free function ``repro.derive_bounds`` is kept as a thin wrapper
over the analyzer.
"""

from . import analysis, core, ir, linalg, pebble, polybench, rel, sets, upper
from .analysis import AnalysisConfig, Analyzer
from .core import derive_bounds
from .ir import AffineProgram, ProgramBuilder

__all__ = [
    "AffineProgram",
    "AnalysisConfig",
    "Analyzer",
    "ProgramBuilder",
    "analysis",
    "core",
    "derive_bounds",
    "ir",
    "linalg",
    "pebble",
    "polybench",
    "rel",
    "sets",
    "upper",
]

__version__ = "1.6.0"
