"""The tiling search engine: enumerate tile shapes, simulate, keep the best.

Per program instance and cache size ``S`` the search walks a powers-of-two
grid of rectangular tile shapes (plus the untiled all-ones baseline), turns
each into a :func:`~repro.pebble.tiled_schedule` on the instance's explicit
CDAG, and simulates it through the LRU and Belady cache simulators.  Every
simulated schedule is a validated red-white pebble game, so *any* candidate's
load count is already a sound upper bound on the instance's optimal I/O — the
search only decides how tight the reported bound is, never whether it is
valid.  A refinement wave then perturbs the best shape one dimension at a
time off the powers-of-two grid.

Tilings whose rectangular order violates a dependence (stencil time tiling
without skewing) are detected via the schedule's ``used_fallback`` flag and
skipped rather than scored — except for the all-ones baseline, whose
topological fallback is still an honest (untiled) schedule and keeps every
kernel sandwiched.

Simulations fan out through the generic event-driven scheduler
(:func:`repro.analysis.scheduler.schedule_work`) — the same engine that runs
derivation tasks — so a search parallelises over the configured executor and
memoises each (program fingerprint x instance x S x tile x policy) cell as a
``kind="simulation"`` store entry: interrupted searches resume, and a warm
rerun performs **zero** simulations (the invariant behind
:func:`simulation_count`, mirroring the derivation counters).
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

from ..analysis.executor import Executor, resolve_executor
from ..analysis.plan import program_fingerprint
from ..analysis.scheduler import WorkItem, schedule_work
from ..analysis.store import BoundStore
from ..ir import CDAG, AffineProgram
from ..pebble import TilingFallbackWarning, simulate_schedule, tiled_schedule
from .result import TileSimulation, UpperBoundResult, select_best

#: Bump to invalidate every persisted simulation entry (key material).
SIMULATION_VERSION = 1

# -- simulation counter -------------------------------------------------------
#
# The upper-bound twin of the derivation counters: counted on the requester
# side as results arrive — also for simulations that ran in worker processes —
# so a warm report rerun asserts ``simulation_count() == 0`` on any executor.

_count_lock = threading.Lock()
_simulations = 0


def simulation_count() -> int:
    """Number of cache simulations executed since the last reset.

    Store hits do not count; simulations executed in worker threads or
    processes do (accounted on the requester side as their results arrive).
    """
    return _simulations


def reset_simulation_count() -> int:
    """Reset the process-wide simulation counter; returns the prior count."""
    global _simulations
    with _count_lock:
        previous = _simulations
        _simulations = 0
    return previous


def _count_simulations(count: int) -> None:
    global _simulations
    with _count_lock:
        _simulations += count


# -- per-process CDAG cache ---------------------------------------------------
#
# The search simulates dozens of tilings of the *same* small CDAG; expanding
# it once per simulation would dwarf the simulation cost.  Same pattern as
# ``plan.dfg_for``: in-process executors share the requester's expansion, a
# pool worker expands once per (program, instance) and reuses it for every
# tile shape routed to that worker.

_CDAG_CACHE_LIMIT = 8
_cdag_lock = threading.Lock()
_cdag_cache: "OrderedDict[tuple, CDAG]" = OrderedDict()


def cdag_for(
    program: AffineProgram,
    instance: Mapping[str, int],
    fingerprint: str | None = None,
) -> CDAG:
    """Expand (or fetch the cached) explicit CDAG of one program instance."""
    if fingerprint is None:
        fingerprint = program_fingerprint(program)
    key = (fingerprint, tuple(sorted((str(k), int(v)) for k, v in instance.items())))
    with _cdag_lock:
        cached = _cdag_cache.get(key)
        if cached is not None:
            _cdag_cache.move_to_end(key)
            return cached
    cdag = CDAG.expand(program, instance)
    with _cdag_lock:
        _cdag_cache[key] = cdag
        while len(_cdag_cache) > _CDAG_CACHE_LIMIT:
            _cdag_cache.popitem(last=False)
    return cdag


# -- keys ---------------------------------------------------------------------


def simulation_key(
    fingerprint: str,
    instance: Mapping[str, int],
    cache_words: int,
    shape: Sequence[int],
    policy: str,
) -> str:
    """Store key of one simulation cell: ``<sha256>-sim``.

    Keyed by (program fingerprint x instance x S x tile x policy) plus the
    schema version, so any change to the simulator's semantics invalidates
    persisted entries by construction rather than by garbage collection.
    """
    material = repr((
        SIMULATION_VERSION,
        fingerprint,
        tuple(sorted((str(k), int(v)) for k, v in instance.items())),
        int(cache_words),
        tuple(int(s) for s in shape),
        str(policy),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest() + "-sim"


# -- tile shapes --------------------------------------------------------------


def tile_sizes_for(
    program: AffineProgram, shape: Sequence[int]
) -> dict[str, tuple[int, ...]]:
    """Per-statement tile sizes from one global shape, innermost-aligned.

    Statements of different depth share the *innermost* entries of the shape
    (a 2-deep statement in a 3-deep program takes the last two edges), which
    matches how shallower statements share the inner loops of a nest.
    """
    shape = tuple(int(s) for s in shape)
    sizes = {}
    for name, statement in program.statements.items():
        depth = len(statement.dims)
        sizes[name] = shape[len(shape) - depth:] if depth <= len(shape) else (
            (1,) * (depth - len(shape)) + shape
        )
    return sizes


def _extents(cdag: CDAG) -> tuple[int, ...]:
    """Innermost-aligned iteration-space spans across all statements."""
    depth = max(
        (len(statement.dims) for statement in cdag.program.statements.values()),
        default=0,
    )
    lows = [None] * depth
    highs = [None] * depth
    for name, point in cdag.compute_vertices():
        offset = depth - len(point)
        for local, coordinate in enumerate(point):
            slot = offset + local
            if lows[slot] is None or coordinate < lows[slot]:
                lows[slot] = coordinate
            if highs[slot] is None or coordinate > highs[slot]:
                highs[slot] = coordinate
    return tuple(
        1 if lows[slot] is None else highs[slot] - lows[slot] + 1
        for slot in range(depth)
    )


def candidate_shapes(
    extents: Sequence[int], max_candidates: int = 64
) -> list[tuple[int, ...]]:
    """The powers-of-two tile grid: every combination of per-dimension edges.

    Each dimension offers the powers of two up to its extent, plus the extent
    itself (one tile spanning the whole dimension).  The cartesian product is
    deterministically subsampled to ``max_candidates`` shapes; the all-ones
    untiled baseline always survives the cut.
    """
    options = []
    for extent in extents:
        extent = max(1, int(extent))
        edges = []
        edge = 1
        while edge <= extent:
            edges.append(edge)
            edge *= 2
        if extent not in edges:
            edges.append(extent)
        options.append(edges)

    shapes: list[tuple[int, ...]] = [()]
    for edges in options:
        shapes = [shape + (edge,) for shape in shapes for edge in edges]
    shapes.sort()
    if len(shapes) > max_candidates:
        step = len(shapes) / max_candidates
        shapes = [shapes[int(index * step)] for index in range(max_candidates)]
    baseline = tuple(1 for _ in extents)
    if baseline not in shapes:
        shapes.insert(0, baseline)
    return shapes


def _refinement_shapes(
    best: Sequence[int], extents: Sequence[int], tried: Iterable[tuple[int, ...]]
) -> list[tuple[int, ...]]:
    """Single-dimension perturbations of the winner, off the powers grid."""
    tried = set(tried)
    best = tuple(int(s) for s in best)
    shapes: list[tuple[int, ...]] = []
    for index, (edge, extent) in enumerate(zip(best, extents)):
        for perturbed in ((edge * 3) // 4, edge + max(1, edge // 2)):
            perturbed = max(1, min(int(extent), perturbed))
            shape = best[:index] + (perturbed,) + best[index + 1:]
            if shape not in tried and shape not in shapes:
                shapes.append(shape)
    return shapes


# -- the worker ---------------------------------------------------------------


def _simulate_payload(payload: tuple) -> TileSimulation:
    """Module-level simulation entry point (picklable for process pools).

    Skips — rather than scores — tilings whose rectangular order is illegal
    for the CDAG (``used_fallback``), except the all-ones baseline: its
    topological fallback is still an honest untiled schedule, and simulating
    it guarantees every kernel gets at least one sound upper bound.
    """
    program, instance_items, cache_words, shape, policy, fingerprint = payload
    instance = dict(instance_items)
    cdag = cdag_for(program, instance, fingerprint)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TilingFallbackWarning)
        schedule = tiled_schedule(cdag, tile_sizes_for(program, shape), warn=False)
    baseline = all(edge == 1 for edge in shape)
    skipped = TileSimulation(
        shape=tuple(shape),
        policy=policy,
        capacity=cache_words,
        simulated=False,
        used_fallback=schedule.used_fallback,
    )
    if schedule.used_fallback and not baseline:
        return skipped
    try:
        result = simulate_schedule(cdag, list(schedule), cache_words, policy=policy)
    except (ValueError, RuntimeError):
        # Cache too small for some operation's operands: not a usable bound.
        return skipped
    flops = sum(program.statement(name).flops for name, _ in schedule)
    return TileSimulation(
        shape=tuple(shape),
        policy=policy,
        capacity=cache_words,
        simulated=True,
        used_fallback=schedule.used_fallback,
        loads=result.loads,
        evictions=result.evictions,
        operations=result.operations,
        flops=flops,
    )


# -- the search ---------------------------------------------------------------


def search_upper_bounds(
    jobs: Sequence[tuple[AffineProgram, Mapping[str, int]]],
    cache_words: int = 64,
    policies: Sequence[str] = ("lru", "opt"),
    max_candidates: int = 64,
    refine: bool = True,
    executor: "Executor | str | None" = None,
    n_jobs: int = 1,
    store: BoundStore | None = None,
) -> list[UpperBoundResult | None]:
    """Search tilings for a batch of ``(program, instance)`` jobs at once.

    All jobs' wave-1 simulations enter **one** :func:`schedule_work` queue
    over one shared executor (exactly like a suite derivation); the
    refinement wave then perturbs each job's winner.  Returns one
    :class:`UpperBoundResult` per job, in job order — ``None`` for jobs
    whose CDAG could not be expanded at the requested instance.

    With a ``store``, every simulation cell persists as a
    ``kind="simulation"`` entry; a warm rerun executes zero simulations.
    """
    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(executor, n_jobs)
    try:
        return _run_search(
            jobs, cache_words, policies, max_candidates, refine, resolved, store
        )
    finally:
        if owns_executor:
            resolved.close()


def search_upper_bound(
    program: AffineProgram,
    instance: Mapping[str, int],
    cache_words: int = 64,
    **kwargs,
) -> UpperBoundResult | None:
    """Single-program convenience wrapper over :func:`search_upper_bounds`."""
    return search_upper_bounds([(program, instance)], cache_words=cache_words, **kwargs)[0]


def _run_search(
    jobs: Sequence[tuple[AffineProgram, Mapping[str, int]]],
    cache_words: int,
    policies: Sequence[str],
    max_candidates: int,
    refine: bool,
    executor: Executor,
    store: BoundStore | None,
) -> list[UpperBoundResult | None]:
    prepared: list[dict | None] = []
    for program, instance in jobs:
        try:
            cdag = cdag_for(program, instance)
        except Exception:
            prepared.append(None)
            continue
        if not cdag.compute_vertices():
            prepared.append(None)
            continue
        extents = _extents(cdag)
        prepared.append({
            "program": program,
            "instance": dict(cdag.params),
            "fingerprint": program_fingerprint(program),
            "extents": extents,
            "shapes": candidate_shapes(extents, max_candidates),
            "simulations": [],
        })

    def run_wave(shapes_per_job: list[list[tuple[int, ...]]]) -> None:
        groups: list[list[WorkItem]] = []
        group_jobs: list[int] = []
        for job_index, job in enumerate(prepared):
            if job is None or not shapes_per_job[job_index]:
                continue
            items = []
            for shape in shapes_per_job[job_index]:
                for policy in policies:
                    payload = (
                        job["program"],
                        tuple(sorted(job["instance"].items())),
                        int(cache_words),
                        shape,
                        policy,
                        job["fingerprint"],
                    )
                    key = None
                    if store is not None:
                        key = simulation_key(
                            job["fingerprint"], job["instance"], cache_words, shape, policy
                        )
                    items.append(WorkItem(payload, key=key))
            groups.append(items)
            group_jobs.append(job_index)
        for group_index, results in schedule_work(
            groups,
            _simulate_payload,
            executor=executor,
            store_get=store.get_simulation if store is not None else None,
            store_put=store.put_simulation if store is not None else None,
            decode=lambda item, payload: TileSimulation.from_dict(payload),
            encode=lambda item, sim: sim.to_dict(),
            on_executed=lambda: _count_simulations(1),
        ):
            prepared[group_jobs[group_index]]["simulations"].extend(results)

    run_wave([[] if job is None else list(job["shapes"]) for job in prepared])

    if refine:
        refinements: list[list[tuple[int, ...]]] = []
        for job in prepared:
            if job is None:
                refinements.append([])
                continue
            best = select_best(job["simulations"])
            if best is None:
                refinements.append([])
                continue
            refinements.append(
                _refinement_shapes(best.shape, job["extents"], job["shapes"])
            )
        run_wave(refinements)

    results: list[UpperBoundResult | None] = []
    for job in prepared:
        if job is None:
            results.append(None)
            continue
        simulations = sorted(job["simulations"], key=lambda sim: (sim.shape, sim.policy))
        results.append(
            UpperBoundResult(
                program=job["program"].name,
                instance=job["instance"],
                cache_words=int(cache_words),
                best=select_best(simulations),
                simulations=simulations,
            )
        )
    return results
