"""repro.upper — simulated upper bounds and the tightness report.

The lower-bound side of the reproduction (:mod:`repro.analysis`) derives
parametric ``Q_low(S, params)`` certificates; this package supplies the
matching *upper* bounds of the paper's Sec. 8.2 tightness experiment:

* :mod:`~repro.upper.search` — a tiling search engine that, per kernel and
  cache size ``S``, enumerates rectangular tile shapes, generates
  :func:`~repro.pebble.tiled_schedule`\\ s on a small-instance CDAG, and
  simulates each through the :mod:`repro.pebble` cache simulators (LRU and
  Belady).  Every simulated schedule is a legal red-white pebble game, so
  its load count is a *sound* upper bound on the optimal I/O of that
  instance — the search is heuristic, the certificate is the simulation;
* :mod:`~repro.upper.result` — :class:`TileSimulation` /
  :class:`UpperBoundResult`, the losslessly JSON-serializable records the
  search produces (persisted in the :class:`~repro.analysis.BoundStore` as
  ``kind="simulation"`` entries, so searches are resumable and warm reruns
  cost zero simulations);
* :mod:`~repro.upper.report` — the :class:`TightnessReport` combiner behind
  ``python -m repro report``: per kernel, the parametric lower bound, its
  instance evaluation, the best simulated upper bound, the winning tile
  shape and the tightness ratio — the automated Table 2 sandwich.
"""

from .result import TileSimulation, UpperBoundResult
from .search import (
    SIMULATION_VERSION,
    candidate_shapes,
    cdag_for,
    reset_simulation_count,
    search_upper_bound,
    search_upper_bounds,
    simulation_count,
    simulation_key,
    tile_sizes_for,
)
from .report import TightnessReport, TightnessRow, tightness_report

__all__ = [
    "SIMULATION_VERSION",
    "TightnessReport",
    "TightnessRow",
    "TileSimulation",
    "UpperBoundResult",
    "candidate_shapes",
    "cdag_for",
    "reset_simulation_count",
    "search_upper_bound",
    "search_upper_bounds",
    "simulation_count",
    "simulation_key",
    "tightness_report",
    "tile_sizes_for",
]
