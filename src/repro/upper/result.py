"""Result records of the tiling search: one simulation, one search outcome.

Both records are lossless JSON documents built from plain ``int``/``str``/
``bool`` leaves (tuples become lists on the way out and back), so they can sit
in the :class:`~repro.analysis.BoundStore` next to ``IOBoundResult`` entries
and round-trip through ``cache export`` archives unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..pebble import SimulationResult


@dataclass(frozen=True)
class TileSimulation:
    """One cache simulation of one tile shape under one replacement policy.

    ``shape`` is the global tile-edge vector, innermost-aligned across the
    program's statements (see :func:`repro.upper.search.tile_sizes_for`); the
    all-ones shape is the untiled program-order baseline.  ``simulated`` is
    False when the schedule was skipped — either the rectangular tiling was
    illegal for the CDAG (``used_fallback``) so simulating it would score a
    schedule that does not realise the tiling, or the cache could not hold a
    single operation's operands.  Skipped records are still persisted: a warm
    search rerun must not re-discover which tilings were meaningless.
    """

    shape: tuple[int, ...]
    policy: str
    capacity: int
    simulated: bool
    used_fallback: bool = False
    loads: int = 0
    evictions: int = 0
    operations: int = 0
    flops: int = 0

    def achieved_oi(self) -> float:
        """Achieved OI = #flops / #loads, via the simulator's own method."""
        if not self.simulated or self.operations == 0:
            return 0.0
        return SimulationResult(
            loads=self.loads,
            evictions=self.evictions,
            operations=self.operations,
            capacity=self.capacity,
            policy=self.policy,
        ).operational_intensity(flops_per_op=self.flops / self.operations)

    def to_dict(self) -> dict:
        return {
            "shape": list(self.shape),
            "policy": self.policy,
            "capacity": self.capacity,
            "simulated": self.simulated,
            "used_fallback": self.used_fallback,
            "loads": self.loads,
            "evictions": self.evictions,
            "operations": self.operations,
            "flops": self.flops,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TileSimulation":
        return cls(
            shape=tuple(int(s) for s in payload["shape"]),
            policy=str(payload["policy"]),
            capacity=int(payload["capacity"]),
            simulated=bool(payload["simulated"]),
            used_fallback=bool(payload.get("used_fallback", False)),
            loads=int(payload.get("loads", 0)),
            evictions=int(payload.get("evictions", 0)),
            operations=int(payload.get("operations", 0)),
            flops=int(payload.get("flops", 0)),
        )


@dataclass
class UpperBoundResult:
    """Outcome of a tiling search for one program instance and cache size.

    ``best`` is the simulated record with the fewest loads — a sound upper
    bound on the instance's optimal I/O, because every simulated schedule is
    a validated red-white pebble game.  ``simulations`` keeps every record
    the search produced (including skipped ones), so the result doubles as a
    search trace.
    """

    program: str
    instance: dict[str, int]
    cache_words: int
    best: TileSimulation | None
    simulations: list[TileSimulation] = field(default_factory=list)

    @property
    def candidates(self) -> int:
        """Tile shapes examined (each simulated under every policy)."""
        return len({sim.shape for sim in self.simulations})

    @property
    def skipped_fallback(self) -> int:
        """Tilings skipped because their rectangular order was illegal."""
        return sum(1 for sim in self.simulations if not sim.simulated and sim.used_fallback)

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "instance": dict(self.instance),
            "cache_words": self.cache_words,
            "best": None if self.best is None else self.best.to_dict(),
            "simulations": [sim.to_dict() for sim in self.simulations],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "UpperBoundResult":
        best = payload.get("best")
        return cls(
            program=str(payload["program"]),
            instance={str(k): int(v) for k, v in dict(payload["instance"]).items()},
            cache_words=int(payload["cache_words"]),
            best=None if best is None else TileSimulation.from_dict(best),
            simulations=[TileSimulation.from_dict(s) for s in payload.get("simulations", [])],
        )


def select_best(simulations: list[TileSimulation]) -> TileSimulation | None:
    """Deterministic winner: fewest loads among simulated records.

    Non-fallback records (the schedule realises its tiling) win over the
    fallback baseline at equal loads; remaining ties break on policy name
    and shape so every executor and scheduling elects the same record.
    """
    ranked = [sim for sim in simulations if sim.simulated]
    if not ranked:
        return None
    return min(ranked, key=lambda sim: (sim.loads, sim.used_fallback, sim.policy, sim.shape))
