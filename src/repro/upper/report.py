"""The tightness report: lower bound and simulated upper bound, side by side.

``python -m repro report`` is the automated Sec. 8.2 / Table 2 experiment:
for each kernel it derives (or loads) the parametric lower bound
``Q_low(S, params)``, evaluates it at a small concrete instance, runs the
tiling search of :mod:`repro.upper.search` at the same instance and cache
size, and prints both sides with their ratio — ``tightness = Q_up / Q_low``,
1.0 meaning the sandwich closed.  Both sides share one executor and one
store, so a warm report rerun performs zero derivations *and* zero
simulations (the counters are embedded in the JSON document so CI can assert
exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import sympy

from ..analysis import BoundStore, Executor, resolve_executor, resolve_store
from ..analysis.scheduler import derivation_count
from ..polybench.registry import all_kernels, get_kernel
from ..polybench.suite import _shrink, analyze_suite_stream
from .result import TileSimulation, UpperBoundResult
from .search import search_upper_bounds, simulation_count

REPORT_SCHEMA = 1

#: Default edge length the LARGE instances are shrunk to before expansion —
#: small enough that every kernel's explicit CDAG stays tractable.
DEFAULT_INSTANCE_TARGET = 12


@dataclass
class TightnessRow:
    """One kernel's sandwich: parametric lower bound vs. simulated upper."""

    kernel: str
    category: str
    instance: dict[str, int]
    lower_asymptotic: str
    lower_value: float
    oi_upper_bound: float
    upper: UpperBoundResult | None
    error: str | None = None

    @property
    def best(self) -> TileSimulation | None:
        return None if self.upper is None else self.upper.best

    @property
    def upper_loads(self) -> int | None:
        best = self.best
        return None if best is None else best.loads

    @property
    def tightness(self) -> float | None:
        """Q_up / Q_low at the instance (>= 1; 1.0 means the sandwich closed)."""
        if self.upper_loads is None:
            return None
        return self.upper_loads / max(self.lower_value, 1.0)

    @property
    def achieved_oi(self) -> float | None:
        best = self.best
        return None if best is None else best.achieved_oi()

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "category": self.category,
            "instance": dict(self.instance),
            "lower_asymptotic": self.lower_asymptotic,
            "lower_value": self.lower_value,
            "oi_upper_bound": self.oi_upper_bound,
            "upper": None if self.upper is None else self.upper.to_dict(),
            "error": self.error,
            # Derived conveniences for JSON consumers (ignored by from_dict).
            "upper_loads": self.upper_loads,
            "tightness": self.tightness,
            "achieved_oi": self.achieved_oi,
            "tile_shape": None if self.best is None else list(self.best.shape),
            "policy": None if self.best is None else self.best.policy,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TightnessRow":
        upper = payload.get("upper")
        return cls(
            kernel=str(payload["kernel"]),
            category=str(payload.get("category", "")),
            instance={str(k): int(v) for k, v in dict(payload.get("instance", {})).items()},
            lower_asymptotic=str(payload.get("lower_asymptotic", "")),
            lower_value=float(payload.get("lower_value", 0.0)),
            oi_upper_bound=float(payload.get("oi_upper_bound", 0.0)),
            upper=None if upper is None else UpperBoundResult.from_dict(upper),
            error=payload.get("error"),
        )


@dataclass
class TightnessReport:
    """The whole report plus the work it cost (for warm-rerun assertions)."""

    cache_words: int
    rows: list[TightnessRow] = field(default_factory=list)
    derivations: int = 0
    simulations: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "cache_words": self.cache_words,
            "derivations": self.derivations,
            "simulations": self.simulations,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TightnessReport":
        return cls(
            cache_words=int(payload["cache_words"]),
            rows=[TightnessRow.from_dict(row) for row in payload.get("rows", [])],
            derivations=int(payload.get("derivations", 0)),
            simulations=int(payload.get("simulations", 0)),
        )

    def format_table(self) -> str:
        """Fixed-width text table, one row per kernel."""
        headers = [
            "kernel", "Q_low (asymptotic)", "Q_low@inst", "Q_up (loads)",
            "tile", "policy", "OI_ach", "OI_up", "tightness",
        ]
        body = []
        for row in self.rows:
            if row.error is not None or row.best is None:
                reason = row.error or "no legal simulation"
                body.append([
                    row.kernel, row.lower_asymptotic, _num(row.lower_value),
                    f"({reason})", "-", "-", "-", _num(row.oi_upper_bound), "-",
                ])
                continue
            best = row.best
            shape = "x".join(str(edge) for edge in best.shape)
            if best.used_fallback:
                shape = "untiled"
            body.append([
                row.kernel,
                row.lower_asymptotic,
                _num(row.lower_value),
                str(best.loads),
                shape,
                best.policy,
                _num(row.achieved_oi),
                _num(row.oi_upper_bound),
                _num(row.tightness),
            ])
        widths = [
            max(len(headers[column]), *(len(line[column]) for line in body)) if body
            else len(headers[column])
            for column in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(width) for header, width in zip(headers, widths)).rstrip()
        ]
        for line in body:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
            )
        return "\n".join(lines)


def _num(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value:.2f}"


def tightness_report(
    names: Iterable[str] | None = None,
    cache_words: int = 64,
    config=None,
    instance: Mapping[str, int] | None = None,
    store: BoundStore | None = None,
    executor: "Executor | str | None" = None,
    n_jobs: int | None = None,
    policies=("lru", "opt"),
    max_candidates: int = 64,
    refine: bool = True,
    target: int = DEFAULT_INSTANCE_TARGET,
) -> TightnessReport:
    """Build the tightness report for a set of kernels (default: all).

    Lower bounds come from the ordinary derivation pipeline
    (:func:`~repro.polybench.suite.analyze_suite_stream`, with each kernel's
    registered wavefront depth); upper bounds from the tiling search at the
    kernel's LARGE instance shrunk to ``target`` (overridable per parameter
    via ``instance``).  Both sides share one ``store`` and one executor, so
    warm reruns cost zero derivations and zero simulations — the report
    records both counters.
    """
    specs = all_kernels() if names is None else [get_kernel(name) for name in names]
    if store is None:
        store = resolve_store(None, getattr(config, "cache_dir", None))
    derivations_before = derivation_count()
    simulations_before = simulation_count()

    owns_executor = executor is None or isinstance(executor, str)
    resolved = resolve_executor(executor, n_jobs if n_jobs is not None else 1)
    try:
        analyses = {
            analysis.spec.name: analysis
            for analysis in analyze_suite_stream(
                [spec.name for spec in specs],
                config=config,
                n_jobs=n_jobs,
                store=store,
                executor=resolved,
            )
        }
        instances = []
        for spec in specs:
            small = _shrink(spec.large_instance, target)
            if instance:
                small.update({
                    name: int(value) for name, value in instance.items() if name in small
                })
            instances.append(small)
        uppers = search_upper_bounds(
            [(spec.program, small) for spec, small in zip(specs, instances)],
            cache_words=cache_words,
            policies=policies,
            max_candidates=max_candidates,
            refine=refine,
            executor=resolved,
            store=store,
        )
    finally:
        if owns_executor:
            resolved.close()

    rows = []
    for spec, small, upper in zip(specs, instances, uppers):
        analysis = analyses[spec.name]
        evaluation_point = {**small, "S": cache_words}
        try:
            lower_value = analysis.result.evaluate(evaluation_point)
            oi_upper = analysis.result.evaluate_oi_upper(evaluation_point)
        except Exception as error:  # un-evaluatable bound: report, don't die
            rows.append(TightnessRow(
                kernel=spec.name,
                category=spec.category,
                instance=small,
                lower_asymptotic=sympy.sstr(analysis.result.asymptotic),
                lower_value=0.0,
                oi_upper_bound=0.0,
                upper=upper,
                error=f"lower bound evaluation failed: {error}",
            ))
            continue
        rows.append(TightnessRow(
            kernel=spec.name,
            category=spec.category,
            instance=small,
            lower_asymptotic=sympy.sstr(analysis.result.asymptotic),
            lower_value=lower_value,
            oi_upper_bound=oi_upper,
            upper=upper,
            error=None if upper is not None else "CDAG expansion failed",
        ))
    return TightnessReport(
        cache_words=cache_words,
        rows=rows,
        derivations=derivation_count() - derivations_before,
        simulations=simulation_count() - simulations_before,
    )
