"""PolyBench stencil kernels and the adi alternating-direction solver.

Kernels: jacobi-1d, jacobi-2d, heat-3d, seidel-2d, fdtd-2d, adi.
"""

from __future__ import annotations

from ..ir import AffineProgram, ProgramBuilder
from .registry import (
    CATEGORY_TILEABLE,
    CATEGORY_WAVEFRONT,
    KernelSpec,
    register,
)


def build_jacobi_1d() -> AffineProgram:
    """1D Jacobi: two three-point sweeps per time step (A -> B -> A)."""
    builder = ProgramBuilder("jacobi-1d", ["T", "N"])
    builder.add_array("[N] -> { A[i] : 0 <= i < N }")
    builder.add_array("[N] -> { B[i] : 0 <= i < N }")
    builder.add_statement("[T, N] -> { SB[t, i] : 0 <= t < T and 1 <= i < N - 1 }", flops=3)
    builder.add_statement("[T, N] -> { SA[t, i] : 0 <= t < T and 1 <= i < N - 1 }", flops=3)
    for offset, cond in (("- 1", "2 <= i < N - 1"), ("", "1 <= i < N - 1"), ("+ 1", "1 <= i < N - 2")):
        builder.add_dependence(
            f"[T, N] -> {{ SB[t, i] -> SA[t - 1, i {offset}] : 1 <= t < T and {cond} }}"
        )
        builder.add_dependence(
            f"[T, N] -> {{ SA[t, i] -> SB[t, i {offset}] : 0 <= t < T and {cond} }}"
        )
    builder.add_dependence("[T, N] -> { SB[t, i] -> A[i] : t = 0 and 1 <= i < N - 1 }")
    return builder.build()


def build_jacobi_2d() -> AffineProgram:
    """2D Jacobi: five-point stencil, two sweeps per time step."""
    builder = ProgramBuilder("jacobi-2d", ["T", "N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { B[i, j] : 0 <= i < N and 0 <= j < N }")
    interior = "1 <= i < N - 1 and 1 <= j < N - 1"
    builder.add_statement(f"[T, N] -> {{ SB[t, i, j] : 0 <= t < T and {interior} }}", flops=5)
    builder.add_statement(f"[T, N] -> {{ SA[t, i, j] : 0 <= t < T and {interior} }}", flops=5)
    offsets = [("", ""), ("- 1", ""), ("+ 1", ""), ("", "- 1"), ("", "+ 1")]
    for di, dj in offsets:
        guard_i = "2 <= i < N - 1" if di == "- 1" else ("1 <= i < N - 2" if di == "+ 1" else "1 <= i < N - 1")
        guard_j = "2 <= j < N - 1" if dj == "- 1" else ("1 <= j < N - 2" if dj == "+ 1" else "1 <= j < N - 1")
        builder.add_dependence(
            f"[T, N] -> {{ SB[t, i, j] -> SA[t - 1, i {di}, j {dj}] : 1 <= t < T and {guard_i} and {guard_j} }}"
        )
        builder.add_dependence(
            f"[T, N] -> {{ SA[t, i, j] -> SB[t, i {di}, j {dj}] : 0 <= t < T and {guard_i} and {guard_j} }}"
        )
    builder.add_dependence(
        f"[T, N] -> {{ SB[t, i, j] -> A[i, j] : t = 0 and {interior} }}"
    )
    return builder.build()


def build_heat_3d() -> AffineProgram:
    """3D heat equation: seven-point stencil, two sweeps per time step."""
    builder = ProgramBuilder("heat-3d", ["T", "N"])
    builder.add_array("[N] -> { A[i, j, k] : 0 <= i < N and 0 <= j < N and 0 <= k < N }")
    interior = "1 <= i < N - 1 and 1 <= j < N - 1 and 1 <= k < N - 1"
    builder.add_statement(f"[T, N] -> {{ SB[t, i, j, k] : 0 <= t < T and {interior} }}", flops=15)
    builder.add_statement(f"[T, N] -> {{ SA[t, i, j, k] : 0 <= t < T and {interior} }}", flops=15)
    # Centre plus the six face neighbours (guards shrink the domain slightly;
    # the interior condition keeps every source inside the grid).
    neighbours = [("", "", ""), ("- 1", "", ""), ("+ 1", "", ""),
                  ("", "- 1", ""), ("", "+ 1", ""), ("", "", "- 1"), ("", "", "+ 1")]
    for di, dj, dk in neighbours:
        guard = (
            f"{'2 <= i < N - 1' if di == '- 1' else ('1 <= i < N - 2' if di == '+ 1' else '1 <= i < N - 1')} and "
            f"{'2 <= j < N - 1' if dj == '- 1' else ('1 <= j < N - 2' if dj == '+ 1' else '1 <= j < N - 1')} and "
            f"{'2 <= k < N - 1' if dk == '- 1' else ('1 <= k < N - 2' if dk == '+ 1' else '1 <= k < N - 1')}"
        )
        builder.add_dependence(
            f"[T, N] -> {{ SB[t, i, j, k] -> SA[t - 1, i {di}, j {dj}, k {dk}] : 1 <= t < T and {guard} }}"
        )
        builder.add_dependence(
            f"[T, N] -> {{ SA[t, i, j, k] -> SB[t, i {di}, j {dj}, k {dk}] : 0 <= t < T and {guard} }}"
        )
    builder.add_dependence(
        f"[T, N] -> {{ SB[t, i, j, k] -> A[i, j, k] : t = 0 and {interior} }}"
    )
    return builder.build()


def build_seidel_2d() -> AffineProgram:
    """2D Gauss-Seidel: in-place nine-point sweep."""
    builder = ProgramBuilder("seidel-2d", ["T", "N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    interior = "1 <= i < N - 1 and 1 <= j < N - 1"
    builder.add_statement(f"[T, N] -> {{ S[t, i, j] : 0 <= t < T and {interior} }}", flops=9)
    # In-place update: values from the current sweep (already updated
    # neighbours) and from the previous sweep (not yet updated neighbours).
    current = [("- 1", "- 1"), ("- 1", ""), ("- 1", "+ 1"), ("", "- 1")]
    previous = [("", ""), ("", "+ 1"), ("+ 1", "- 1"), ("+ 1", ""), ("+ 1", "+ 1")]
    for di, dj in current:
        guard_i = "2 <= i < N - 1" if di == "- 1" else "1 <= i < N - 1"
        guard_j = "2 <= j < N - 1" if dj == "- 1" else ("1 <= j < N - 2" if dj == "+ 1" else "1 <= j < N - 1")
        builder.add_dependence(
            f"[T, N] -> {{ S[t, i, j] -> S[t, i {di}, j {dj}] : 0 <= t < T and {guard_i} and {guard_j} }}"
        )
    for di, dj in previous:
        guard_i = "1 <= i < N - 2" if di == "+ 1" else "1 <= i < N - 1"
        guard_j = "2 <= j < N - 1" if dj == "- 1" else ("1 <= j < N - 2" if dj == "+ 1" else "1 <= j < N - 1")
        builder.add_dependence(
            f"[T, N] -> {{ S[t, i, j] -> S[t - 1, i {di}, j {dj}] : 1 <= t < T and {guard_i} and {guard_j} }}"
        )
    builder.add_dependence(f"[T, N] -> {{ S[t, i, j] -> A[i, j] : t = 0 and {interior} }}")
    return builder.build()


def build_fdtd_2d() -> AffineProgram:
    """2D finite-difference time-domain: three coupled field updates per step."""
    builder = ProgramBuilder("fdtd-2d", ["T", "Nx", "Ny"])
    builder.add_array("[Nx, Ny] -> { ex[i, j] : 0 <= i < Nx and 0 <= j < Ny }")
    builder.add_array("[Nx, Ny] -> { ey[i, j] : 0 <= i < Nx and 0 <= j < Ny }")
    builder.add_array("[Nx, Ny] -> { hz[i, j] : 0 <= i < Nx and 0 <= j < Ny }")
    # ey[i][j] -= coeff * (hz[i][j] - hz[i-1][j])
    builder.add_statement(
        "[T, Nx, Ny] -> { SEY[t, i, j] : 0 <= t < T and 1 <= i < Nx and 0 <= j < Ny }", flops=3
    )
    # ex[i][j] -= coeff * (hz[i][j] - hz[i][j-1])
    builder.add_statement(
        "[T, Nx, Ny] -> { SEX[t, i, j] : 0 <= t < T and 0 <= i < Nx and 1 <= j < Ny }", flops=3
    )
    # hz[i][j] -= coeff * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j])
    builder.add_statement(
        "[T, Nx, Ny] -> { SHZ[t, i, j] : 0 <= t < T and 0 <= i < Nx - 1 and 0 <= j < Ny - 1 }", flops=5
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEY[t, i, j] -> SHZ[t - 1, i, j] : 1 <= t < T and 1 <= i < Nx - 1 and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEY[t, i, j] -> SHZ[t - 1, i - 1, j] : 1 <= t < T and 1 <= i < Nx and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEY[t, i, j] -> SEY[t - 1, i, j] : 1 <= t < T and 1 <= i < Nx and 0 <= j < Ny }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEX[t, i, j] -> SHZ[t - 1, i, j] : 1 <= t < T and 0 <= i < Nx - 1 and 1 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEX[t, i, j] -> SHZ[t - 1, i, j - 1] : 1 <= t < T and 0 <= i < Nx - 1 and 1 <= j < Ny }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEX[t, i, j] -> SEX[t - 1, i, j] : 1 <= t < T and 0 <= i < Nx and 1 <= j < Ny }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SHZ[t, i, j] -> SEX[t, i, j + 1] : 0 <= t < T and 0 <= i < Nx - 1 and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SHZ[t, i, j] -> SEY[t, i + 1, j] : 0 <= t < T and 0 <= i < Nx - 1 and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SHZ[t, i, j] -> SHZ[t - 1, i, j] : 1 <= t < T and 0 <= i < Nx - 1 and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SHZ[t, i, j] -> hz[i, j] : t = 0 and 0 <= i < Nx - 1 and 0 <= j < Ny - 1 }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEX[t, i, j] -> ex[i, j] : t = 0 and 0 <= i < Nx and 1 <= j < Ny }"
    )
    builder.add_dependence(
        "[T, Nx, Ny] -> { SEY[t, i, j] -> ey[i, j] : t = 0 and 1 <= i < Nx and 0 <= j < Ny }"
    )
    return builder.build()


def build_adi() -> AffineProgram:
    """Alternating-direction implicit solver (simplified dependence skeleton).

    Each time step runs a column sweep (recurrence along ``j``) followed by a
    row sweep (recurrence along ``i``); both read the grid produced by the
    previous step.  The paper proves a constant OI upper bound for adi with
    the full wavefront machinery of Alg. 5; our restricted detector does not
    establish the complete-reachability hypothesis for this dependence
    pattern, so the reproduced bound falls back to the (weaker but valid)
    K-partition/input bound — see EXPERIMENTS.md.
    """
    builder = ProgramBuilder("adi", ["T", "N"])
    builder.add_array("[N] -> { u[i, j] : 0 <= i < N and 0 <= j < N }")
    interior = "1 <= i < N - 1 and 1 <= j < N - 1"
    # Column sweep: v[t, i, j] from v[t, i, j-1] and u of the previous step.
    builder.add_statement(f"[T, N] -> {{ V[t, i, j] : 1 <= t < T and {interior} }}", flops=8)
    # Row sweep: unew[t, i, j] from unew[t, i-1, j] and v of the same step.
    builder.add_statement(f"[T, N] -> {{ U[t, i, j] : 1 <= t < T and {interior} }}", flops=7)
    builder.add_dependence(
        f"[T, N] -> {{ V[t, i, j] -> V[t, i, j - 1] : 1 <= t < T and 1 <= i < N - 1 and 2 <= j < N - 1 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ V[t, i, j] -> U[t - 1, i, j] : 2 <= t < T and {interior} }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ V[t, i, j] -> U[t - 1, i - 1, j] : 2 <= t < T and 2 <= i < N - 1 and 1 <= j < N - 1 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ V[t, i, j] -> U[t - 1, i + 1, j] : 2 <= t < T and 1 <= i < N - 2 and 1 <= j < N - 1 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ U[t, i, j] -> U[t, i - 1, j] : 1 <= t < T and 2 <= i < N - 1 and 1 <= j < N - 1 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ U[t, i, j] -> V[t, i, j] : 1 <= t < T and {interior} }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ U[t, i, j] -> V[t, i, j - 1] : 1 <= t < T and 1 <= i < N - 1 and 2 <= j < N - 1 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ U[t, i, j] -> V[t, i, j + 1] : 1 <= t < T and 1 <= i < N - 1 and 1 <= j < N - 2 }}"
    )
    builder.add_dependence(
        f"[T, N] -> {{ V[t, i, j] -> u[i, j] : t = 1 and {interior} }}"
    )
    return builder.build()


register(KernelSpec(
    name="jacobi-1d", category=CATEGORY_TILEABLE, build=build_jacobi_1d,
    paper_oi_upper="24*S", paper_oi_manual="3*S/2",
    paper_input_size="N", paper_ops="6*T*N",
    large_instance={"T": 500, "N": 2000},
))

register(KernelSpec(
    name="jacobi-2d", category=CATEGORY_TILEABLE, build=build_jacobi_2d,
    paper_oi_upper="15*sqrt(3)*sqrt(S)", paper_oi_manual="5*sqrt(S)/4",
    paper_input_size="N*N", paper_ops="10*T*N*N",
    large_instance={"T": 500, "N": 1300},
))

register(KernelSpec(
    name="heat-3d", category=CATEGORY_TILEABLE, build=build_heat_3d,
    paper_oi_upper="(160/(3*3**Rational(1,3)))*S**Rational(1,3)",
    paper_oi_manual="(5*3**Rational(1,3)/2)*S**Rational(1,3)",
    paper_input_size="N**3", paper_ops="30*T*N**3",
    large_instance={"T": 500, "N": 120},
))

register(KernelSpec(
    name="seidel-2d", category=CATEGORY_TILEABLE, build=build_seidel_2d,
    paper_oi_upper="(27*sqrt(3)/2)*sqrt(S)", paper_oi_manual="(9/4)*sqrt(S)",
    paper_input_size="N*N", paper_ops="9*T*N*N",
    large_instance={"T": 500, "N": 2000},
))

register(KernelSpec(
    name="fdtd-2d", category=CATEGORY_TILEABLE, build=build_fdtd_2d,
    paper_oi_upper="22*sqrt(2)*sqrt(S)", paper_oi_manual="(11*sqrt(3)/24)*sqrt(S)",
    paper_input_size="3*Nx*Ny", paper_ops="11*Nx*Ny*T",
    large_instance={"T": 500, "Nx": 1000, "Ny": 1200},
))

register(KernelSpec(
    name="adi", category=CATEGORY_WAVEFRONT, build=build_adi,
    paper_oi_upper="30", paper_oi_manual="5",
    paper_input_size="N*N", paper_ops="30*N*N*T",
    large_instance={"T": 500, "N": 1000},
    max_depth=1,
    notes="paper bound needs the full Alg. 5 wavefront; restricted detector "
          "does not fire, reproduction reports the weaker partition bound",
))
