"""PolyBench data-mining, dynamic-programming and medley kernels.

Kernels: correlation, covariance, floyd-warshall, nussinov, deriche.
"""

from __future__ import annotations

from ..ir import AffineProgram, ProgramBuilder
from .registry import (
    CATEGORY_LOW_REUSE,
    CATEGORY_OVERESTIMATED,
    CATEGORY_TILEABLE,
    KernelSpec,
    register,
)


def _covariance_like(name: str) -> AffineProgram:
    """Shared structure of covariance/correlation: C[i,j] = sum_k D[k,i]*D[k,j]."""
    builder = ProgramBuilder(name, ["M", "N"])
    builder.add_array("[M, N] -> { D[k, i] : 0 <= k < N and 0 <= i < M }")
    builder.add_statement(
        "[M, N] -> { S[i, j, k] : 0 <= i < M and i <= j < M and 0 <= k < N }", flops=2
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < M and i <= j < M and 1 <= k < N }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> D[k, i] : 0 <= i < M and i <= j < M and 0 <= k < N }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> D[k, j] : 0 <= i < M and i <= j < M and 0 <= k < N }"
    )
    return builder.build()


def build_covariance() -> AffineProgram:
    """Covariance matrix of a data set (mean-centred outer-product accumulation)."""
    return _covariance_like("covariance")


def build_correlation() -> AffineProgram:
    """Correlation matrix (same reuse structure as covariance)."""
    return _covariance_like("correlation")


def build_floyd_warshall() -> AffineProgram:
    """All-pairs shortest paths: path[i][j] = min(path[i][j], path[i][k]+path[k][j])."""
    builder = ProgramBuilder("floyd-warshall", ["N"])
    builder.add_array("[N] -> { path[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_statement(
        "[N] -> { S[k, i, j] : 0 <= k < N and 0 <= i < N and 0 <= j < N }", flops=2
    )
    builder.add_dependence(
        "[N] -> { S[k, i, j] -> S[k - 1, i, j] : 1 <= k < N and 0 <= i < N and 0 <= j < N }"
    )
    # The pivot row/column of iteration k was last updated either at k-1 or at
    # k depending on the order between i/j and k (cf. the paper's Example 3);
    # both cases project along the same directions, so the simpler uniform
    # form is kept (dropping a dependence only weakens the bound).
    builder.add_dependence(
        "[N] -> { S[k, i, j] -> S[k - 1, i, k] : 1 <= k < N and 0 <= i < N and 0 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S[k, i, j] -> S[k - 1, k, j] : 1 <= k < N and 0 <= i < N and 0 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S[k, i, j] -> path[i, j] : k = 0 and 0 <= i < N and 0 <= j < N }"
    )
    return builder.build()


def build_nussinov() -> AffineProgram:
    """RNA secondary-structure dynamic program (triangular matmul-like recursion)."""
    builder = ProgramBuilder("nussinov", ["N"])
    builder.add_array("[N] -> { seq[i] : 0 <= i < N }")
    builder.add_array("[N] -> { tbl[i, j] : 0 <= i < N and i <= j < N }")
    # table[i][j] = max over k in (i, j) of table[i][k] + table[k+1][j]
    builder.add_statement(
        "[N] -> { S[i, j, k] : 0 <= i < N and i + 1 <= j < N and i <= k < j }", flops=2
    )
    builder.add_dependence(
        "[N] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < N and i + 1 <= j < N and i + 1 <= k < j }"
    )
    builder.add_dependence(
        "[N] -> { S[i, j, k] -> S[i, k, k - 1] : 0 <= i < N and i + 1 <= j < N and i + 1 <= k < j }"
    )
    builder.add_dependence(
        "[N] -> { S[i, j, k] -> S[k + 1, j, j - 1] : 0 <= i < N and i + 1 <= j < N and i <= k < j - 1 }"
    )
    builder.add_dependence(
        "[N] -> { S[i, j, k] -> seq[i] : 0 <= i < N and i + 1 <= j < N and k = i }"
    )
    builder.add_dependence(
        "[N] -> { S[i, j, k] -> tbl[i, j] : 0 <= i < N and i + 1 <= j < N and k = i }"
    )
    return builder.build()


def build_deriche() -> AffineProgram:
    """Deriche recursive edge detection filter (horizontal + vertical IIR passes)."""
    builder = ProgramBuilder("deriche", ["W", "H"])
    builder.add_array("[W, H] -> { img[i, j] : 0 <= i < W and 0 <= j < H }")
    # Horizontal causal pass (recurrence along j), then vertical causal pass
    # (recurrence along i) on the result.  The anticausal passes have the same
    # reuse structure and are folded into the per-instance operation count.
    builder.add_statement("[W, H] -> { SH[i, j] : 0 <= i < W and 0 <= j < H }", flops=16)
    builder.add_statement("[W, H] -> { SV[i, j] : 0 <= i < W and 0 <= j < H }", flops=16)
    builder.add_dependence("[W, H] -> { SH[i, j] -> SH[i, j - 1] : 0 <= i < W and 1 <= j < H }")
    builder.add_dependence("[W, H] -> { SH[i, j] -> img[i, j] : 0 <= i < W and 0 <= j < H }")
    builder.add_dependence("[W, H] -> { SV[i, j] -> SV[i - 1, j] : 1 <= i < W and 0 <= j < H }")
    builder.add_dependence("[W, H] -> { SV[i, j] -> SH[i, j] : 0 <= i < W and 0 <= j < H }")
    return builder.build()


register(KernelSpec(
    name="covariance", category=CATEGORY_TILEABLE, build=build_covariance,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="M*N", paper_ops="M*M*N",
    large_instance={"M": 1200, "N": 1400},
))

register(KernelSpec(
    name="correlation", category=CATEGORY_TILEABLE, build=build_correlation,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="M*N", paper_ops="M*M*N",
    large_instance={"M": 1200, "N": 1400},
))

register(KernelSpec(
    name="floyd-warshall", category=CATEGORY_TILEABLE, build=build_floyd_warshall,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N", paper_ops="2*N**3",
    large_instance={"N": 2800},
))

register(KernelSpec(
    name="nussinov", category=CATEGORY_OVERESTIMATED, build=build_nussinov,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="1",
    paper_input_size="N*N/2", paper_ops="N**3/3",
    large_instance={"N": 2500},
    notes="paper reports the geometric OI_up is not achievable (category 4)",
))

register(KernelSpec(
    name="deriche", category=CATEGORY_LOW_REUSE, build=build_deriche,
    paper_oi_upper="32", paper_oi_manual="16/3",
    paper_input_size="H*W", paper_ops="32*H*W",
    large_instance={"W": 4096, "H": 2160},
))
