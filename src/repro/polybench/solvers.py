"""PolyBench linear-algebra solvers and decompositions.

Kernels: cholesky, lu, ludcmp, trisolv, durbin, gramschmidt.
"""

from __future__ import annotations

from ..ir import AffineProgram, ProgramBuilder
from .registry import (
    CATEGORY_LOW_REUSE,
    CATEGORY_OVERESTIMATED,
    CATEGORY_TILEABLE,
    CATEGORY_WAVEFRONT,
    KernelSpec,
    register,
)


def build_cholesky() -> AffineProgram:
    """Cholesky factorisation (the paper's Appendix A worked example)."""
    builder = ProgramBuilder("cholesky", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j <= i }")
    builder.add_statement("[N] -> { S1[k] : 0 <= k < N }", flops=1)
    builder.add_statement("[N] -> { S2[k, i] : 0 <= k < N and k + 1 <= i < N }", flops=1)
    builder.add_statement(
        "[N] -> { S3[k, i, j] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }", flops=2
    )
    builder.add_dependence(
        "[N] -> { S3[k, i, j] -> S3[k - 1, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }"
    )
    builder.add_dependence(
        "[N] -> { S3[k, i, j] -> S2[k, j] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }"
    )
    builder.add_dependence(
        "[N] -> { S3[k, i, j] -> S2[k, i] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j <= i }"
    )
    builder.add_dependence(
        "[N] -> { S2[k, i] -> S3[k - 1, i, k] : 1 <= k < N and k + 1 <= i < N }"
    )
    builder.add_dependence("[N] -> { S2[k, i] -> S1[k] : 0 <= k < N and k + 1 <= i < N }")
    builder.add_dependence("[N] -> { S1[k] -> S3[k - 1, k, k] : 1 <= k < N }")
    builder.add_dependence("[N] -> { S3[k, i, j] -> A[i, j] : k = 0 and 1 <= i < N and 1 <= j <= i }")
    builder.add_dependence("[N] -> { S2[k, i] -> A[i, k] : k = 0 and 1 <= i < N }")
    builder.add_dependence("[N] -> { S1[k] -> A[k, k] : k = 0 }")
    return builder.build()


def build_lu() -> AffineProgram:
    """LU factorisation (the paper's Appendix B worked example)."""
    builder = ProgramBuilder("lu", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_statement("[N] -> { S1[k, i] : 0 <= k < N and k + 1 <= i < N }", flops=1)
    builder.add_statement(
        "[N] -> { S2[k, i, j] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j < N }", flops=2
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S2[k - 1, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S2[k - 1, k, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S1[k, i] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence("[N] -> { S1[k, i] -> S2[k - 1, i, k] : 1 <= k < N and k + 1 <= i < N }")
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> A[i, j] : k = 0 and 1 <= i < N and 1 <= j < N }"
    )
    builder.add_dependence("[N] -> { S1[k, i] -> A[i, k] : k = 0 and 1 <= i < N }")
    return builder.build()


def build_ludcmp() -> AffineProgram:
    """LU decomposition followed by forward/backward triangular solves."""
    builder = ProgramBuilder("ludcmp", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { b[i] : 0 <= i < N }")
    # Factorisation (same pattern as lu).
    builder.add_statement("[N] -> { S1[k, i] : 0 <= k < N and k + 1 <= i < N }", flops=1)
    builder.add_statement(
        "[N] -> { S2[k, i, j] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j < N }", flops=2
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S2[k - 1, i, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S2[k - 1, k, j] : 1 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> S1[k, i] : 0 <= k < N and k + 1 <= i < N and k + 1 <= j < N }"
    )
    builder.add_dependence("[N] -> { S1[k, i] -> S2[k - 1, i, k] : 1 <= k < N and k + 1 <= i < N }")
    builder.add_dependence(
        "[N] -> { S2[k, i, j] -> A[i, j] : k = 0 and 1 <= i < N and 1 <= j < N }"
    )
    builder.add_dependence("[N] -> { S1[k, i] -> A[i, k] : k = 0 and 1 <= i < N }")
    # Forward substitution y = L^-1 b and backward substitution x = U^-1 y.
    builder.add_statement("[N] -> { SY[i, j] : 0 <= i < N and 0 <= j < i }", flops=2)
    builder.add_dependence("[N] -> { SY[i, j] -> SY[i, j - 1] : 0 <= i < N and 1 <= j < i }")
    builder.add_dependence(
        "[N] -> { SY[i, j] -> S2[j, i, j] : 0 <= i < N and 0 <= j < i and j + 1 <= i }"
    )
    builder.add_dependence("[N] -> { SY[i, j] -> b[i] : 0 <= i < N and j = 0 }")
    builder.add_statement("[N] -> { SX[i, j] : 0 <= i < N and i < j < N }", flops=2)
    builder.add_dependence("[N] -> { SX[i, j] -> SX[i, j - 1] : 0 <= i < N and i + 1 < j < N }")
    builder.add_dependence(
        "[N] -> { SX[i, j] -> S2[i, i, j] : 0 <= i < N and i < j < N }"
    )
    return builder.build()


def build_trisolv() -> AffineProgram:
    """Lower-triangular solve x = L^-1 b."""
    builder = ProgramBuilder("trisolv", ["N"])
    builder.add_array("[N] -> { L[i, j] : 0 <= i < N and 0 <= j <= i }")
    builder.add_array("[N] -> { b[i] : 0 <= i < N }")
    builder.add_statement("[N] -> { S[i, j] : 0 <= i < N and 0 <= j < i }", flops=2)
    builder.add_dependence("[N] -> { S[i, j] -> S[i, j - 1] : 0 <= i < N and 1 <= j < i }")
    builder.add_dependence("[N] -> { S[i, j] -> L[i, j] : 0 <= i < N and 0 <= j < i }")
    builder.add_dependence("[N] -> { S[i, j] -> S[j, j - 1] : 0 <= i < N and 1 <= j < i }")
    builder.add_dependence("[N] -> { S[i, j] -> b[i] : 0 <= i < N and j = 0 }")
    return builder.build()


def build_durbin() -> AffineProgram:
    """Levinson-Durbin recursion (Toeplitz solver).

    Statement roles: ``SUM[k, i]`` accumulates the dot product of the previous
    solution with the Toeplitz column (a reduction chain over ``i``),
    ``ALPHA[k]`` is the per-iteration scalar reflection coefficient (the
    broadcast bottleneck), and ``Y[k, i]`` updates the solution vector.  Each
    outer iteration therefore gathers the whole previous slice into a scalar
    and broadcasts it back — the wavefront pattern of Sec. 6.
    """
    builder = ProgramBuilder("durbin", ["N"])
    builder.add_array("[N] -> { r[i] : 0 <= i < N }")
    builder.add_statement("[N] -> { SUM[k, i] : 1 <= k < N and 0 <= i < k }", flops=2)
    builder.add_statement("[N] -> { ALPHA[k] : 1 <= k < N }", flops=2)
    builder.add_statement("[N] -> { Y[k, i] : 1 <= k < N and 0 <= i < k }", flops=2)
    # sum accumulation over i, reading the previous solution slice.
    builder.add_dependence("[N] -> { SUM[k, i] -> SUM[k, i - 1] : 1 <= k < N and 1 <= i < k }")
    builder.add_dependence("[N] -> { SUM[k, i] -> Y[k - 1, i] : 2 <= k < N and 0 <= i < k - 1 }")
    builder.add_dependence("[N] -> { SUM[k, i] -> r[i] : 1 <= k < N and 0 <= i < k }")
    # alpha reads the completed sum.
    builder.add_dependence("[N] -> { ALPHA[k] -> SUM[k, k - 1] : 1 <= k < N }")
    builder.add_dependence("[N] -> { ALPHA[k] -> ALPHA[k - 1] : 2 <= k < N }")
    # solution update: previous solution (direct and reflected) and alpha.
    builder.add_dependence("[N] -> { Y[k, i] -> Y[k - 1, i] : 2 <= k < N and 0 <= i < k - 1 }")
    builder.add_dependence(
        "[N] -> { Y[k, i] -> Y[k - 1, k - 1 - i] : 2 <= k < N and 1 <= i < k - 1 }"
    )
    builder.add_dependence("[N] -> { Y[k, i] -> ALPHA[k] : 1 <= k < N and 0 <= i < k }")
    return builder.build()


def build_gramschmidt() -> AffineProgram:
    """Modified Gram-Schmidt QR factorisation (main triple loop)."""
    builder = ProgramBuilder("gramschmidt", ["M", "N"])
    builder.add_array("[M, N] -> { A[i, j] : 0 <= i < M and 0 <= j < N }")
    # R[k, j] = sum_i Q[i, k] * A[i, j]   (projection coefficients)
    builder.add_statement(
        "[M, N] -> { R[k, j, i] : 0 <= k < N and k + 1 <= j < N and 0 <= i < M }", flops=2
    )
    # A[i, j] -= Q[i, k] * R[k, j]        (orthogonalisation update)
    builder.add_statement(
        "[M, N] -> { U[k, j, i] : 0 <= k < N and k + 1 <= j < N and 0 <= i < M }", flops=2
    )
    builder.add_dependence(
        "[M, N] -> { R[k, j, i] -> R[k, j, i - 1] : 0 <= k < N and k + 1 <= j < N and 1 <= i < M }"
    )
    builder.add_dependence(
        "[M, N] -> { R[k, j, i] -> U[k - 1, j, i] : 1 <= k < N and k + 1 <= j < N and 0 <= i < M }"
    )
    builder.add_dependence(
        "[M, N] -> { U[k, j, i] -> R[k, j, M - 1] : 0 <= k < N and k + 1 <= j < N and 0 <= i < M }"
    )
    builder.add_dependence(
        "[M, N] -> { U[k, j, i] -> U[k - 1, j, i] : 1 <= k < N and k + 1 <= j < N and 0 <= i < M }"
    )
    builder.add_dependence(
        "[M, N] -> { U[k, j, i] -> A[i, j] : k = 0 and 1 <= j < N and 0 <= i < M }"
    )
    builder.add_dependence(
        "[M, N] -> { R[k, j, i] -> A[i, j] : k = 0 and 1 <= j < N and 0 <= i < M }"
    )
    return builder.build()


register(KernelSpec(
    name="cholesky", category=CATEGORY_TILEABLE, build=build_cholesky,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N/2", paper_ops="N**3/3",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="lu", category=CATEGORY_TILEABLE, build=build_lu,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N", paper_ops="2*N**3/3",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="ludcmp", category=CATEGORY_TILEABLE, build=build_ludcmp,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N", paper_ops="2*N**3/3",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="trisolv", category=CATEGORY_LOW_REUSE, build=build_trisolv,
    paper_oi_upper="2", paper_oi_manual="2",
    paper_input_size="N*N/2", paper_ops="N*N",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="durbin", category=CATEGORY_WAVEFRONT, build=build_durbin,
    paper_oi_upper="4", paper_oi_manual="2/3",
    paper_input_size="N", paper_ops="2*N*N",
    large_instance={"N": 2000},
    max_depth=1,
    notes="wavefront bound: reduction to the scalar alpha then broadcast",
))

register(KernelSpec(
    name="gramschmidt", category=CATEGORY_OVERESTIMATED, build=build_gramschmidt,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="1",
    paper_input_size="M*N", paper_ops="2*M*N*N",
    large_instance={"M": 1000, "N": 1200},
    notes="paper reports the geometric OI_up is not achievable (category 4)",
))
