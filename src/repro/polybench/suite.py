"""Suite-level drivers: run IOLB over PolyBench and build the paper's tables.

* :func:`analyze_kernel` — run the full derivation for one kernel;
* :func:`table1_rows` — reproduce Table 1 (OI upper bound vs. the paper's
  manually derived OI, with the tightness ratio);
* :func:`table2_rows` — reproduce Table 2 / Appendix C (complete and
  asymptotic lower-bound formulae);
* :func:`figure6_rows` — reproduce Figure 6 (numeric OI upper bound vs. the OI
  achieved by a tiled schedule on a cache simulator, against the machine
  balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import sympy

from ..analysis import (
    AnalysisConfig,
    Analyzer,
    BoundStore,
    Executor,
    StreamCounters,
    resolve_store,
    stream_analyses,
)
from ..core import (
    IOBoundResult,
    PAPER_CACHE_WORDS,
    PAPER_MACHINE_BALANCE,
    classify,
)
from ..ir import CDAG
from ..pebble import lexicographic_schedule, simulate_schedule, tiled_schedule
from ..sets import sym
from .registry import KernelSpec, all_kernels, get_kernel


@dataclass
class KernelAnalysis:
    """Derivation result for one kernel, plus the paper's reference values."""

    spec: KernelSpec
    result: IOBoundResult

    @property
    def oi_upper(self) -> sympy.Expr:
        return self.result.oi_upper_bound()

    def oi_ratio_to_manual(self) -> sympy.Expr:
        """OI_up / OI_manual — the tightness ratio of Table 1 (>= 1 ideally)."""
        manual = self.spec.paper_oi_manual_expr()
        return sympy.simplify(self.oi_upper / manual)


def _kernel_config(spec: KernelSpec, config: AnalysisConfig | None, **kwargs) -> AnalysisConfig:
    """Analysis config for one kernel: spec defaults, then explicit overrides."""
    base = config if config is not None else AnalysisConfig(max_depth=spec.max_depth)
    if config is None and "max_depth" not in kwargs:
        kwargs = {**kwargs, "max_depth": spec.max_depth}
    return base.replace(**kwargs) if kwargs else base


def analyze_kernel(
    name: str,
    config: AnalysisConfig | None = None,
    store: BoundStore | None = None,
    **kwargs,
) -> KernelAnalysis:
    """Run the IOLB derivation on one PolyBench kernel.

    Without arguments the kernel's registered wavefront depth is used; pass
    an :class:`~repro.analysis.AnalysisConfig` (or individual config fields
    as keyword arguments, e.g. ``gamma=0.5``) to override.  A
    :class:`~repro.analysis.BoundStore` makes the derivation persistent:
    a kernel already in the store is never re-derived.
    """
    spec = get_kernel(name)
    analyzer = Analyzer(_kernel_config(spec, config, **kwargs), store=store)
    return KernelAnalysis(spec=spec, result=analyzer.analyze(spec.program))


def _suite_jobs(
    specs: list[KernelSpec],
    config: AnalysisConfig | None,
    n_jobs: int | None,
    executor: "Executor | str | None",
    **kwargs,
) -> list[tuple[KernelSpec, AnalysisConfig]]:
    """Pair every spec with its effective config (spec defaults + overrides)."""
    jobs = []
    for spec in specs:
        kernel_config = _kernel_config(spec, config, **kwargs)
        if n_jobs is not None:
            kernel_config = kernel_config.replace(n_jobs=n_jobs)
        if executor is not None and isinstance(executor, str):
            kernel_config = kernel_config.replace(executor=executor)
        jobs.append((spec, kernel_config))
    return jobs


def analyze_suite_stream(
    names: Iterable[str] | None = None,
    config: AnalysisConfig | None = None,
    n_jobs: int | None = None,
    store: BoundStore | None = None,
    executor: "Executor | str | None" = None,
    counters: StreamCounters | None = None,
    **kwargs,
) -> Iterator[KernelAnalysis]:
    """Stream suite results in **completion order**, one per requested kernel.

    Every kernel's derivation tasks — across per-kernel configurations
    (registered wavefront depths differ) — enter **one** event-driven
    scheduler ready queue over one shared executor, and a kernel's
    :class:`KernelAnalysis` is yielded the moment its last task lands: the
    first bounds stream out while later kernels are still deriving.
    Store-satisfied kernels stream out first without waiting on any
    derivation.  Results are byte-identical to :func:`analyze_suite`'s —
    only the iteration order differs.

    ``counters`` (a :class:`~repro.analysis.StreamCounters`) receives only
    *this* stream's derivation counts — what a concurrent caller such as the
    ``repro serve`` front-end must report per request, since the
    process-global :func:`~repro.analysis.derivation_count` aggregates over
    every stream running in the process at once.
    """
    specs = all_kernels() if names is None else [get_kernel(n) for n in names]
    jobs = _suite_jobs(specs, config, n_jobs, executor, **kwargs)
    if store is None and jobs:
        store = resolve_store(None, jobs[0][1].cache_dir)
    # Executor resolution (env, n_jobs fallback) happens inside the
    # scheduler, seeded by the first pending job's config; a name or None
    # keeps ownership there so the pool is closed even on early exit, while
    # a live instance stays the caller's to close.
    for index, result in stream_analyses(
        [(spec.program, job_config) for spec, job_config in jobs],
        executor=executor,
        store=store,
        counters=counters,
    ):
        yield KernelAnalysis(spec=jobs[index][0], result=result)


def analyze_suite(
    names: Iterable[str] | None = None,
    config: AnalysisConfig | None = None,
    n_jobs: int | None = None,
    store: BoundStore | None = None,
    executor: "Executor | str | None" = None,
    **kwargs,
) -> list[KernelAnalysis]:
    """Run the derivation over the whole suite (or a subset).

    The request-order collector over :func:`analyze_suite_stream`: all
    kernels' derivation tasks flow through a single work queue of threads or
    worker processes — with ``n_jobs > 1`` (given here or on ``config``)
    and/or an ``executor`` (a name or a live
    :class:`~repro.analysis.Executor`) — and the collected list follows the
    requested kernel order.  Passing a :class:`~repro.analysis.BoundStore`
    (or setting ``config.cache_dir``) memoises every derivation persistently
    — a warm second suite run does zero derivations.
    """
    specs = all_kernels() if names is None else [get_kernel(n) for n in names]
    analyses: dict[str, KernelAnalysis] = {}
    for analysis in analyze_suite_stream(
        names, config=config, n_jobs=n_jobs, store=store, executor=executor, **kwargs
    ):
        analyses[analysis.spec.name] = analysis
    return [analyses[spec.name] for spec in specs]


def table1_rows(analyses: Iterable[KernelAnalysis]) -> list[dict[str, object]]:
    """Rows of Table 1: input size, #ops, OI_up (ours and paper's), OI_manual."""
    rows = []
    for analysis in analyses:
        spec = analysis.spec
        rows.append({
            "kernel": spec.name,
            "category": spec.category,
            "input_size": sympy.sstr(analysis.result.input_size),
            "ops": sympy.sstr(analysis.result.total_flops),
            "OI_up (repro)": sympy.sstr(analysis.oi_upper),
            "OI_up (paper)": spec.paper_oi_upper,
            "OI_manual (paper)": spec.paper_oi_manual,
        })
    return rows


def table2_rows(analyses: Iterable[KernelAnalysis]) -> list[dict[str, object]]:
    """Rows of Table 2 / Appendix C: complete and asymptotic Q_low formulae."""
    rows = []
    for analysis in analyses:
        rows.append({
            "kernel": analysis.spec.name,
            "Q_low (complete)": sympy.sstr(analysis.result.expression),
            "Q_low (asymptotic)": sympy.sstr(analysis.result.asymptotic),
        })
    return rows


def figure6_rows(
    analyses: Iterable[KernelAnalysis],
    machine_balance: float = PAPER_MACHINE_BALANCE,
    cache_words: int = PAPER_CACHE_WORDS,
    simulate: bool = False,
    simulation_instances: Mapping[str, Mapping[str, int]] | None = None,
    simulation_cache: int = 64,
) -> list[dict[str, object]]:
    """Rows of Figure 6: numeric OI_up vs. achieved OI vs. machine balance.

    The OI upper bound is evaluated at the kernel's LARGE instance with the
    paper's 256 kB cache.  When ``simulate`` is true, a tiled schedule of a
    *small* instance is run through the LRU cache simulator to obtain an
    achieved OI (the PLuTo/Dinero stand-in); the small instance and cache keep
    the CDAG expansion tractable, and only the classification against the
    machine balance is meant to be compared with the paper.
    """
    rows = []
    for analysis in analyses:
        spec = analysis.spec
        instance = dict(spec.large_instance)
        instance["S"] = cache_words
        oi_up = analysis.result.evaluate_oi_upper(instance)

        oi_achieved = None
        if simulate:
            small = dict((simulation_instances or {}).get(spec.name, _shrink(spec.large_instance)))
            oi_achieved = simulate_tiled_oi(spec, small, simulation_cache)

        rows.append({
            "kernel": spec.name,
            "OI_up": round(oi_up, 2),
            "OI_achieved": None if oi_achieved is None else round(oi_achieved, 2),
            "MB": machine_balance,
            "class": classify(oi_up, oi_achieved, machine_balance).value,
        })
    return rows


def simulate_tiled_oi(spec: KernelSpec, instance: Mapping[str, int], cache: int) -> float | None:
    """Achieved OI of a tiled schedule on the LRU cache simulator.

    Returns None when the kernel's CDAG cannot be expanded at the requested
    instance (e.g. parameters too small for the dependence pattern).
    """
    try:
        cdag = CDAG.expand(spec.program, instance)
    except Exception:
        return None
    if not cdag.compute_vertices():
        return None
    tile = max(2, int(round(cache ** 0.5 / 2)))
    tile_sizes = {
        name: tuple(tile for _ in statement.dims)
        for name, statement in spec.program.statements.items()
    }
    schedule = tiled_schedule(cdag, tile_sizes)
    try:
        result = simulate_schedule(cdag, schedule, cache, policy="lru")
    except ValueError:
        return None
    flops = sum(
        spec.program.statement(name).flops for name, _ in schedule
    )
    return flops / max(result.loads, 1)


def untiled_oi(spec: KernelSpec, instance: Mapping[str, int], cache: int) -> float | None:
    """Achieved OI of the untiled (program-order) schedule — the baseline."""
    try:
        cdag = CDAG.expand(spec.program, instance)
    except Exception:
        return None
    schedule = lexicographic_schedule(cdag)
    try:
        result = simulate_schedule(cdag, schedule, cache, policy="lru")
    except ValueError:
        return None
    flops = sum(spec.program.statement(name).flops for name, _ in schedule)
    return flops / max(result.loads, 1)


def _shrink(instance: Mapping[str, int], target: int = 12) -> dict[str, int]:
    """Scale a LARGE instance down to something an explicit CDAG can hold."""
    return {name: min(int(value), target) for name, value in instance.items()}
