"""PolyBench BLAS-like kernels: matrix products and matrix-vector computations.

Kernels: gemm, 2mm, 3mm, symm, syrk, syr2k, trmm, doitgen, atax, bicg, mvt,
gemver, gesummv.
"""

from __future__ import annotations

from ..ir import AffineProgram, ProgramBuilder
from .registry import (
    CATEGORY_LOW_REUSE,
    CATEGORY_TILEABLE,
    KernelSpec,
    register,
)


def _matmul_statement(
    builder: ProgramBuilder,
    stmt: str,
    i_dim: str,
    j_dim: str,
    k_dim: str,
    left: str,
    right: str,
    params: str,
    flops: int = 2,
) -> ProgramBuilder:
    """Add a dense matrix-product statement ``stmt[i,j,k]`` with its reuse edges.

    The statement accumulates over ``k`` (chain circuit), broadcasts
    ``left[i,k]`` along ``j`` and ``right[k,j]`` along ``i`` — the canonical
    gemm dependence pattern of the paper's running example.
    """
    domain = (
        f"[{params}] -> {{ {stmt}[i, j, k] : 0 <= i < {i_dim} "
        f"and 0 <= j < {j_dim} and 0 <= k < {k_dim} }}"
    )
    builder.add_statement(domain, flops=flops)
    builder.add_dependence(
        f"[{params}] -> {{ {stmt}[i, j, k] -> {stmt}[i, j, k - 1] : "
        f"0 <= i < {i_dim} and 0 <= j < {j_dim} and 1 <= k < {k_dim} }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ {stmt}[i, j, k] -> {left}[i, k] : "
        f"0 <= i < {i_dim} and 0 <= j < {j_dim} and 0 <= k < {k_dim} }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ {stmt}[i, j, k] -> {right}[k, j] : "
        f"0 <= i < {i_dim} and 0 <= j < {j_dim} and 0 <= k < {k_dim} }}"
    )
    return builder


# ---------------------------------------------------------------------------
# gemm, 2mm, 3mm
# ---------------------------------------------------------------------------

def build_gemm() -> AffineProgram:
    """C := alpha*A*B + beta*C."""
    builder = ProgramBuilder("gemm", ["Ni", "Nj", "Nk"])
    builder.add_array("[Ni, Nk] -> { A[i, k] : 0 <= i < Ni and 0 <= k < Nk }")
    builder.add_array("[Nk, Nj] -> { B[k, j] : 0 <= k < Nk and 0 <= j < Nj }")
    builder.add_array("[Ni, Nj] -> { C[i, j] : 0 <= i < Ni and 0 <= j < Nj }", is_output=True)
    _matmul_statement(builder, "S", "Ni", "Nj", "Nk", "A", "B", "Ni, Nj, Nk")
    builder.add_dependence(
        "[Ni, Nj, Nk] -> { S[i, j, k] -> C[i, j] : 0 <= i < Ni and 0 <= j < Nj and k = 0 }"
    )
    return builder.build()


def build_2mm() -> AffineProgram:
    """D := alpha*A*B*C + beta*D (two chained matrix products)."""
    params = "Ni, Nj, Nk, Nl"
    builder = ProgramBuilder("2mm", ["Ni", "Nj", "Nk", "Nl"])
    builder.add_array(f"[{params}] -> {{ A[i, k] : 0 <= i < Ni and 0 <= k < Nk }}")
    builder.add_array(f"[{params}] -> {{ B[k, j] : 0 <= k < Nk and 0 <= j < Nj }}")
    builder.add_array(f"[{params}] -> {{ C[j, l] : 0 <= j < Nj and 0 <= l < Nl }}")
    builder.add_array(f"[{params}] -> {{ D[i, l] : 0 <= i < Ni and 0 <= l < Nl }}", is_output=True)
    # tmp[i, j] = sum_k A[i, k] * B[k, j]
    _matmul_statement(builder, "T1", "Ni", "Nj", "Nk", "A", "B", params)
    # D[i, l] += sum_j tmp[i, j] * C[j, l]
    builder.add_statement(
        f"[{params}] -> {{ T2[i, l, j] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}", flops=2
    )
    builder.add_dependence(
        f"[{params}] -> {{ T2[i, l, j] -> T2[i, l, j - 1] : 0 <= i < Ni and 0 <= l < Nl and 1 <= j < Nj }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ T2[i, l, j] -> T1[i, j, Nk - 1] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ T2[i, l, j] -> C[j, l] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ T2[i, l, j] -> D[i, l] : 0 <= i < Ni and 0 <= l < Nl and j = 0 }}"
    )
    return builder.build()


def build_3mm() -> AffineProgram:
    """G := (A*B) * (C*D) (three matrix products)."""
    params = "Ni, Nj, Nk, Nl, Nm"
    builder = ProgramBuilder("3mm", ["Ni", "Nj", "Nk", "Nl", "Nm"])
    builder.add_array(f"[{params}] -> {{ A[i, k] : 0 <= i < Ni and 0 <= k < Nk }}")
    builder.add_array(f"[{params}] -> {{ B[k, j] : 0 <= k < Nk and 0 <= j < Nj }}")
    builder.add_array(f"[{params}] -> {{ C[j, m] : 0 <= j < Nj and 0 <= m < Nm }}")
    builder.add_array(f"[{params}] -> {{ D[m, l] : 0 <= m < Nm and 0 <= l < Nl }}")
    # E[i, j] = A * B
    _matmul_statement(builder, "E", "Ni", "Nj", "Nk", "A", "B", params)
    # F[j, l] = C * D
    _matmul_statement(builder, "F", "Nj", "Nl", "Nm", "C", "D", params)
    # G[i, l] = sum_j E[i, j] * F[j, l]
    builder.add_statement(
        f"[{params}] -> {{ G[i, l, j] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}", flops=2
    )
    builder.add_dependence(
        f"[{params}] -> {{ G[i, l, j] -> G[i, l, j - 1] : 0 <= i < Ni and 0 <= l < Nl and 1 <= j < Nj }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ G[i, l, j] -> E[i, j, Nk - 1] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ G[i, l, j] -> F[j, l, Nm - 1] : 0 <= i < Ni and 0 <= l < Nl and 0 <= j < Nj }}"
    )
    return builder.build()


# ---------------------------------------------------------------------------
# symm, syrk, syr2k, trmm, doitgen
# ---------------------------------------------------------------------------

def build_symm() -> AffineProgram:
    """C := alpha*A*B + beta*C with A symmetric (stored triangular)."""
    builder = ProgramBuilder("symm", ["M", "N"])
    builder.add_array("[M] -> { A[i, k] : 0 <= i < M and 0 <= k <= i }")
    builder.add_array("[M, N] -> { B[k, j] : 0 <= k < M and 0 <= j < N }")
    builder.add_array("[M, N] -> { C[i, j] : 0 <= i < M and 0 <= j < N }", is_output=True)
    builder.add_statement(
        "[M, N] -> { S[i, j, k] : 0 <= i < M and 0 <= j < N and 0 <= k < M }", flops=2
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < M and 0 <= j < N and 1 <= k < M }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> A[i, k] : 0 <= i < M and 0 <= j < N and 0 <= k <= i }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> A[k, i] : 0 <= i < M and 0 <= j < N and i < k < M }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> B[k, j] : 0 <= i < M and 0 <= j < N and 0 <= k < M }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> C[i, j] : 0 <= i < M and 0 <= j < N and k = 0 }"
    )
    return builder.build()


def build_syrk() -> AffineProgram:
    """C := alpha*A*A^T + beta*C (lower triangle)."""
    builder = ProgramBuilder("syrk", ["N", "M"])
    builder.add_array("[N, M] -> { A[i, k] : 0 <= i < N and 0 <= k < M }")
    builder.add_array("[N] -> { C[i, j] : 0 <= i < N and 0 <= j <= i }", is_output=True)
    builder.add_statement(
        "[N, M] -> { S[i, j, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }", flops=1
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < N and 0 <= j <= i and 1 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> A[i, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> A[j, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> C[i, j] : 0 <= i < N and 0 <= j <= i and k = 0 }"
    )
    return builder.build()


def build_syr2k() -> AffineProgram:
    """C := alpha*A*B^T + alpha*B*A^T + beta*C (lower triangle)."""
    builder = ProgramBuilder("syr2k", ["N", "M"])
    builder.add_array("[N, M] -> { A[i, k] : 0 <= i < N and 0 <= k < M }")
    builder.add_array("[N, M] -> { B[i, k] : 0 <= i < N and 0 <= k < M }")
    builder.add_array("[N] -> { C[i, j] : 0 <= i < N and 0 <= j <= i }", is_output=True)
    builder.add_statement(
        "[N, M] -> { S[i, j, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }", flops=2
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < N and 0 <= j <= i and 1 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> A[i, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> B[j, k] : 0 <= i < N and 0 <= j <= i and 0 <= k < M }"
    )
    builder.add_dependence(
        "[N, M] -> { S[i, j, k] -> C[i, j] : 0 <= i < N and 0 <= j <= i and k = 0 }"
    )
    return builder.build()


def build_trmm() -> AffineProgram:
    """B := alpha*A*B with A lower triangular."""
    builder = ProgramBuilder("trmm", ["M", "N"])
    builder.add_array("[M] -> { A[i, k] : 0 <= i < M and 0 <= k < i }")
    builder.add_array("[M, N] -> { B[i, j] : 0 <= i < M and 0 <= j < N }", is_output=True)
    builder.add_statement(
        "[M, N] -> { S[i, j, k] : 0 <= i < M and 0 <= j < N and i < k < M }", flops=2
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> S[i, j, k - 1] : 0 <= i < M and 0 <= j < N and i + 1 < k < M }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> A[k, i] : 0 <= i < M and 0 <= j < N and i < k < M }"
    )
    builder.add_dependence(
        "[M, N] -> { S[i, j, k] -> B[k, j] : 0 <= i < M and 0 <= j < N and i < k < M }"
    )
    return builder.build()


def build_doitgen() -> AffineProgram:
    """Multi-resolution analysis kernel: sum[r,q,p] = sum_s A[r,q,s]*C4[s,p]."""
    params = "Nr, Nq, Np"
    builder = ProgramBuilder("doitgen", ["Nr", "Nq", "Np"])
    builder.add_array(f"[{params}] -> {{ A[r, q, s] : 0 <= r < Nr and 0 <= q < Nq and 0 <= s < Np }}")
    builder.add_array(f"[{params}] -> {{ C4[s, p] : 0 <= s < Np and 0 <= p < Np }}")
    builder.add_statement(
        f"[{params}] -> {{ S[r, q, p, s] : 0 <= r < Nr and 0 <= q < Nq and 0 <= p < Np and 0 <= s < Np }}",
        flops=2,
    )
    builder.add_dependence(
        f"[{params}] -> {{ S[r, q, p, s] -> S[r, q, p, s - 1] : "
        f"0 <= r < Nr and 0 <= q < Nq and 0 <= p < Np and 1 <= s < Np }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ S[r, q, p, s] -> A[r, q, s] : "
        f"0 <= r < Nr and 0 <= q < Nq and 0 <= p < Np and 0 <= s < Np }}"
    )
    builder.add_dependence(
        f"[{params}] -> {{ S[r, q, p, s] -> C4[s, p] : "
        f"0 <= r < Nr and 0 <= q < Nq and 0 <= p < Np and 0 <= s < Np }}"
    )
    return builder.build()


# ---------------------------------------------------------------------------
# Matrix-vector kernels (low reuse): atax, bicg, mvt, gemver, gesummv
# ---------------------------------------------------------------------------

def build_atax() -> AffineProgram:
    """y = A^T (A x)."""
    builder = ProgramBuilder("atax", ["M", "N"])
    builder.add_array("[M, N] -> { A[i, j] : 0 <= i < M and 0 <= j < N }")
    builder.add_array("[N] -> { x[j] : 0 <= j < N }")
    builder.add_statement("[M, N] -> { T[i, j] : 0 <= i < M and 0 <= j < N }", flops=2)
    builder.add_statement("[M, N] -> { Y[j, i] : 0 <= j < N and 0 <= i < M }", flops=2)
    builder.add_dependence(
        "[M, N] -> { T[i, j] -> T[i, j - 1] : 0 <= i < M and 1 <= j < N }"
    )
    builder.add_dependence("[M, N] -> { T[i, j] -> A[i, j] : 0 <= i < M and 0 <= j < N }")
    builder.add_dependence("[M, N] -> { T[i, j] -> x[j] : 0 <= i < M and 0 <= j < N }")
    builder.add_dependence(
        "[M, N] -> { Y[j, i] -> Y[j, i - 1] : 0 <= j < N and 1 <= i < M }"
    )
    builder.add_dependence("[M, N] -> { Y[j, i] -> A[i, j] : 0 <= j < N and 0 <= i < M }")
    builder.add_dependence(
        "[M, N] -> { Y[j, i] -> T[i, N - 1] : 0 <= j < N and 0 <= i < M }"
    )
    return builder.build()


def build_bicg() -> AffineProgram:
    """s = A^T r ; q = A p (BiCGStab subkernel)."""
    builder = ProgramBuilder("bicg", ["M", "N"])
    builder.add_array("[M, N] -> { A[i, j] : 0 <= i < N and 0 <= j < M }")
    builder.add_array("[N] -> { r[i] : 0 <= i < N }")
    builder.add_array("[M] -> { p[j] : 0 <= j < M }")
    builder.add_statement("[M, N] -> { Ss[j, i] : 0 <= j < M and 0 <= i < N }", flops=2)
    builder.add_statement("[M, N] -> { Sq[i, j] : 0 <= i < N and 0 <= j < M }", flops=2)
    builder.add_dependence("[M, N] -> { Ss[j, i] -> Ss[j, i - 1] : 0 <= j < M and 1 <= i < N }")
    builder.add_dependence("[M, N] -> { Ss[j, i] -> A[i, j] : 0 <= j < M and 0 <= i < N }")
    builder.add_dependence("[M, N] -> { Ss[j, i] -> r[i] : 0 <= j < M and 0 <= i < N }")
    builder.add_dependence("[M, N] -> { Sq[i, j] -> Sq[i, j - 1] : 0 <= i < N and 1 <= j < M }")
    builder.add_dependence("[M, N] -> { Sq[i, j] -> A[i, j] : 0 <= i < N and 0 <= j < M }")
    builder.add_dependence("[M, N] -> { Sq[i, j] -> p[j] : 0 <= i < N and 0 <= j < M }")
    return builder.build()


def build_mvt() -> AffineProgram:
    """x1 += A y1 ; x2 += A^T y2."""
    builder = ProgramBuilder("mvt", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { y1[j] : 0 <= j < N }")
    builder.add_array("[N] -> { y2[j] : 0 <= j < N }")
    builder.add_statement("[N] -> { S1[i, j] : 0 <= i < N and 0 <= j < N }", flops=2)
    builder.add_statement("[N] -> { S2[i, j] : 0 <= i < N and 0 <= j < N }", flops=2)
    builder.add_dependence("[N] -> { S1[i, j] -> S1[i, j - 1] : 0 <= i < N and 1 <= j < N }")
    builder.add_dependence("[N] -> { S1[i, j] -> A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { S1[i, j] -> y1[j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { S2[i, j] -> S2[i, j - 1] : 0 <= i < N and 1 <= j < N }")
    builder.add_dependence("[N] -> { S2[i, j] -> A[j, i] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { S2[i, j] -> y2[j] : 0 <= i < N and 0 <= j < N }")
    return builder.build()


def build_gemver() -> AffineProgram:
    """A' = A + u1 v1^T + u2 v2^T ; x = beta A'^T y + z ; w = alpha A' x."""
    builder = ProgramBuilder("gemver", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { u1[i] : 0 <= i < N }")
    builder.add_array("[N] -> { v1[j] : 0 <= j < N }")
    builder.add_array("[N] -> { u2[i] : 0 <= i < N }")
    builder.add_array("[N] -> { v2[j] : 0 <= j < N }")
    builder.add_array("[N] -> { y[i] : 0 <= i < N }")
    builder.add_array("[N] -> { z[i] : 0 <= i < N }")
    # Ahat[i, j] = A[i, j] + u1[i]*v1[j] + u2[i]*v2[j]
    builder.add_statement("[N] -> { SA[i, j] : 0 <= i < N and 0 <= j < N }", flops=4)
    builder.add_dependence("[N] -> { SA[i, j] -> A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { SA[i, j] -> u1[i] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { SA[i, j] -> v1[j] : 0 <= i < N and 0 <= j < N }")
    # x[i] = beta * sum_j Ahat[j, i] * y[j] + z[i]
    builder.add_statement("[N] -> { SX[i, j] : 0 <= i < N and 0 <= j < N }", flops=2)
    builder.add_dependence("[N] -> { SX[i, j] -> SX[i, j - 1] : 0 <= i < N and 1 <= j < N }")
    builder.add_dependence("[N] -> { SX[i, j] -> SA[j, i] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { SX[i, j] -> y[j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { SX[i, j] -> z[i] : 0 <= i < N and j = 0 }")
    # w[i] = alpha * sum_j Ahat[i, j] * x[j]
    builder.add_statement("[N] -> { SW[i, j] : 0 <= i < N and 0 <= j < N }", flops=2)
    builder.add_dependence("[N] -> { SW[i, j] -> SW[i, j - 1] : 0 <= i < N and 1 <= j < N }")
    builder.add_dependence("[N] -> { SW[i, j] -> SA[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { SW[i, j] -> SX[j, N - 1] : 0 <= i < N and 0 <= j < N }")
    return builder.build()


def build_gesummv() -> AffineProgram:
    """y = alpha*A*x + beta*B*x."""
    builder = ProgramBuilder("gesummv", ["N"])
    builder.add_array("[N] -> { A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { B[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_array("[N] -> { x[j] : 0 <= j < N }")
    builder.add_statement("[N] -> { S[i, j] : 0 <= i < N and 0 <= j < N }", flops=4)
    builder.add_dependence("[N] -> { S[i, j] -> S[i, j - 1] : 0 <= i < N and 1 <= j < N }")
    builder.add_dependence("[N] -> { S[i, j] -> A[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { S[i, j] -> B[i, j] : 0 <= i < N and 0 <= j < N }")
    builder.add_dependence("[N] -> { S[i, j] -> x[j] : 0 <= i < N and 0 <= j < N }")
    return builder.build()


# ---------------------------------------------------------------------------
# Registration with the paper's Table 1 reference values
# ---------------------------------------------------------------------------

register(KernelSpec(
    name="gemm", category=CATEGORY_TILEABLE, build=build_gemm,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="Ni*Nj + Nj*Nk + Ni*Nk", paper_ops="2*Ni*Nj*Nk",
    large_instance={"Ni": 1000, "Nj": 1100, "Nk": 1200},
))

register(KernelSpec(
    name="2mm", category=CATEGORY_TILEABLE, build=build_2mm,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="Ni*Nk + Nk*Nj + Nj*Nl + Ni*Nl",
    paper_ops="Ni*Nj*Nk + Ni*Nj*Nl",
    large_instance={"Ni": 800, "Nj": 900, "Nk": 1100, "Nl": 1200},
))

register(KernelSpec(
    name="3mm", category=CATEGORY_TILEABLE, build=build_3mm,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="Ni*Nk + Nk*Nj + Nj*Nm + Nm*Nl",
    paper_ops="Ni*Nj*Nk + Nj*Nl*Nm + Ni*Nj*Nl",
    large_instance={"Ni": 800, "Nj": 900, "Nk": 1000, "Nl": 1100, "Nm": 1200},
))

register(KernelSpec(
    name="symm", category=CATEGORY_TILEABLE, build=build_symm,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="M*M/2 + 2*M*N", paper_ops="2*M*M*N",
    large_instance={"M": 1000, "N": 1200},
))

register(KernelSpec(
    name="syrk", category=CATEGORY_TILEABLE, build=build_syrk,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N/2 + M*N", paper_ops="M*N*N",
    large_instance={"N": 1200, "M": 1000},
))

register(KernelSpec(
    name="syr2k", category=CATEGORY_TILEABLE, build=build_syr2k,
    paper_oi_upper="2*sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="N*N/2 + 2*M*N", paper_ops="2*M*N*N",
    large_instance={"N": 1200, "M": 1000},
))

register(KernelSpec(
    name="trmm", category=CATEGORY_TILEABLE, build=build_trmm,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="M*M/2 + M*N", paper_ops="M*M*N",
    large_instance={"M": 1000, "N": 1200},
))

register(KernelSpec(
    name="doitgen", category=CATEGORY_TILEABLE, build=build_doitgen,
    paper_oi_upper="sqrt(S)", paper_oi_manual="sqrt(S)",
    paper_input_size="Np*Np + Np*Nq*Nr", paper_ops="2*Nq*Nr*Np*Np",
    large_instance={"Nr": 150, "Nq": 140, "Np": 160},
))

register(KernelSpec(
    name="atax", category=CATEGORY_LOW_REUSE, build=build_atax,
    paper_oi_upper="4", paper_oi_manual="4",
    paper_input_size="M*N", paper_ops="4*M*N",
    large_instance={"M": 1900, "N": 2100},
))

register(KernelSpec(
    name="bicg", category=CATEGORY_LOW_REUSE, build=build_bicg,
    paper_oi_upper="4", paper_oi_manual="4",
    paper_input_size="M*N", paper_ops="4*M*N",
    large_instance={"M": 1900, "N": 2100},
))

register(KernelSpec(
    name="mvt", category=CATEGORY_LOW_REUSE, build=build_mvt,
    paper_oi_upper="4", paper_oi_manual="4",
    paper_input_size="N*N", paper_ops="4*N*N",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="gemver", category=CATEGORY_LOW_REUSE, build=build_gemver,
    paper_oi_upper="10", paper_oi_manual="5",
    paper_input_size="N*N", paper_ops="10*N*N",
    large_instance={"N": 2000},
))

register(KernelSpec(
    name="gesummv", category=CATEGORY_LOW_REUSE, build=build_gesummv,
    paper_oi_upper="2", paper_oi_manual="2",
    paper_input_size="2*N*N", paper_ops="4*N*N",
    large_instance={"N": 1300},
))
