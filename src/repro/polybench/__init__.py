"""PolyBench/C 4.2.1 kernels encoded as affine programs, plus suite drivers."""

from .registry import (
    CATEGORY_LOW_REUSE,
    CATEGORY_OVERESTIMATED,
    CATEGORY_TILEABLE,
    CATEGORY_WAVEFRONT,
    KernelSpec,
    all_kernels,
    get_kernel,
    kernel_names,
)
from .suite import (
    KernelAnalysis,
    analyze_kernel,
    analyze_suite,
    analyze_suite_stream,
    figure6_rows,
    simulate_tiled_oi,
    table1_rows,
    table2_rows,
    untiled_oi,
)

__all__ = [
    "CATEGORY_LOW_REUSE",
    "CATEGORY_OVERESTIMATED",
    "CATEGORY_TILEABLE",
    "CATEGORY_WAVEFRONT",
    "KernelAnalysis",
    "KernelSpec",
    "all_kernels",
    "analyze_kernel",
    "analyze_suite",
    "analyze_suite_stream",
    "figure6_rows",
    "get_kernel",
    "kernel_names",
    "simulate_tiled_oi",
    "table1_rows",
    "table2_rows",
    "untiled_oi",
]
