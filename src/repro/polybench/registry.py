"""Kernel registry for the PolyBench/C 4.2.1 reproduction.

Each kernel is described by a :class:`KernelSpec`: the affine program (in the
single-assignment / flow-dependence form the paper's figures use), the paper's
reference numbers from Table 1 (input size, operation count, OI upper bound
from IOLB, manually derived OI), a representative LARGE-dataset parameter
instance for the Figure 6 experiment, and the analysis options (wavefront
depth) the kernel needs.

Encoding conventions (see DESIGN.md):

* only the value flows that carry reuse are modelled — dropping edges or
  auxiliary scalar statements can only *weaken* the derived lower bound, never
  invalidate it (any schedule of the full program is a schedule of the
  simplified CDAG);
* statement operation counts are chosen so the total matches the paper's
  ``# ops`` column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import sympy

from ..ir import AffineProgram

#: Categories used by Table 1's four divisions.
CATEGORY_TILEABLE = "tileable"          # high reuse, sqrt(S)-like OI upper bound
CATEGORY_LOW_REUSE = "low-reuse"        # #ops / #inputs constant
CATEGORY_WAVEFRONT = "wavefront"        # not tileable, constant OI proved by wavefront
CATEGORY_OVERESTIMATED = "overestimated"  # paper reports a gap (OI_up too optimistic)


@dataclass
class KernelSpec:
    """One PolyBench kernel and its paper reference data."""

    name: str
    category: str
    build: Callable[[], AffineProgram]
    paper_oi_upper: str
    paper_oi_manual: str
    paper_input_size: str
    paper_ops: str
    large_instance: dict[str, int]
    max_depth: int = 0
    notes: str = ""
    _program: AffineProgram | None = field(default=None, repr=False)

    @property
    def program(self) -> AffineProgram:
        if self._program is None:
            self._program = self.build()
        return self._program

    def paper_oi_upper_expr(self) -> sympy.Expr:
        return _parse_paper_expr(self.paper_oi_upper)

    def paper_oi_manual_expr(self) -> sympy.Expr:
        return _parse_paper_expr(self.paper_oi_manual)


def _parse_paper_expr(text: str) -> sympy.Expr:
    """Parse a Table-1 reference formula.

    ``S`` must map to the library's cache-size symbol (plain ``sympify`` would
    resolve the name to sympy's ``S`` singleton registry instead).
    """
    from ..sets import sym

    names = {"S", "N", "M", "T", "Ni", "Nj", "Nk", "Nl", "Nm", "Np", "Nq", "Nr",
             "Nx", "Ny", "W", "H"}
    local_dict = {name: sym(name) for name in names}
    local_dict["sqrt"] = sympy.sqrt
    local_dict["Rational"] = sympy.Rational
    return sympy.sympify(text, locals=local_dict)


_REGISTRY: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    """Register a kernel spec (called by the kernel modules at import time)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"kernel {spec.name!r} registered twice")
    _REGISTRY[spec.name] = spec
    return spec


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by its PolyBench name."""
    _ensure_loaded()
    return _REGISTRY[name]


def all_kernels() -> list[KernelSpec]:
    """All registered kernels, sorted by name."""
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def kernel_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    """Import the kernel modules lazily (they self-register)."""
    if _REGISTRY:
        return
    from . import blas, datamining, solvers, stencils  # noqa: F401
