"""Lightweight subsystem profiling: wall-time attribution and memo counters.

Every bound the system derives bottoms out in a handful of computational
subsystems — the polyhedral set algebra (:mod:`repro.sets`), symbolic
counting, Fourier-Motzkin elimination, relation closure (:mod:`repro.rel`),
exact linear algebra (:mod:`repro.linalg`) and pebble-game simulation
(:mod:`repro.pebble`).  This module attributes wall-time to those subsystems
with near-zero overhead so ``python -m repro profile`` and
``benchmarks/bench_profile.py`` can answer "where does a cold derivation
spend its time?" before anyone reaches for an optimisation.

Attribution model
-----------------

Hot entry points are wrapped with :func:`timed`.  Each subsystem accumulates

* ``calls`` — number of *top-level* entries (re-entering a subsystem that is
  already on the current thread's stack is not counted or timed again, so
  ``card`` calling ``card_basic`` is one counting call);
* ``inclusive`` — wall-time between entry and exit, children included;
* ``exclusive`` — inclusive time minus the time spent in *other* timed
  subsystems below it (``counting`` calling into ``fm`` credits the
  elimination time to ``fm``'s exclusive column, not ``counting``'s).

Exclusive columns therefore sum to (at most) the instrumented wall-time and
are the column to read when deciding what to optimise.

Memoisation counters
--------------------

The content-hash caches of :mod:`repro.sets.memo` and :mod:`repro.linalg`
register themselves here via :func:`register_cache`; :func:`snapshot`
reports their hit/miss/size counters next to the timings.  All counters are
process-wide and lock-guarded (thread pools share them; process pools keep
per-worker counters that are *not* aggregated — profile with the serial or
thread executor when attribution matters).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from functools import wraps
from time import perf_counter
from typing import Callable, Iterable, Mapping

#: Canonical subsystem order for tables (anything else sorts after these).
SUBSYSTEMS = (
    "linalg", "fm", "sets", "counting", "counting-sum", "rel-closure", "pebble-sim"
)

_lock = threading.Lock()
_totals: dict[str, list[float]] = {}  # name -> [calls, inclusive, exclusive]
_local = threading.local()


def _frames() -> list:
    """Per-thread stack of [subsystem, child_time] frames."""
    frames = getattr(_local, "frames", None)
    if frames is None:
        frames = _local.frames = []
    return frames


def _active() -> set:
    active = getattr(_local, "active", None)
    if active is None:
        active = _local.active = set()
    return active


def timed(subsystem: str) -> Callable:
    """Decorator attributing a function's wall-time to ``subsystem``.

    Re-entrant calls into a subsystem already on the thread's stack run
    untimed (the outermost entry owns the whole duration), so wrapping both
    an entry point and its helpers never double-counts.
    """

    def decorate(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            active = _active()
            if subsystem in active:
                return fn(*args, **kwargs)
            frames = _frames()
            active.add(subsystem)
            frames.append([subsystem, 0.0])
            start = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = perf_counter() - start
                frame = frames.pop()
                active.discard(subsystem)
                if frames:
                    frames[-1][1] += elapsed
                exclusive = elapsed - frame[1]
                with _lock:
                    entry = _totals.setdefault(subsystem, [0, 0.0, 0.0])
                    entry[0] += 1
                    entry[1] += elapsed
                    entry[2] += exclusive
        return wrapper

    return decorate


class section:
    """Context-manager form of :func:`timed` for ad-hoc regions."""

    def __init__(self, subsystem: str):
        self._subsystem = subsystem
        self._reentrant = False
        self._start = 0.0

    def __enter__(self) -> "section":
        active = _active()
        if self._subsystem in active:
            self._reentrant = True
            return self
        active.add(self._subsystem)
        _frames().append([self._subsystem, 0.0])
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._reentrant:
            return
        elapsed = perf_counter() - self._start
        frames = _frames()
        frame = frames.pop()
        _active().discard(self._subsystem)
        if frames:
            frames[-1][1] += elapsed
        with _lock:
            entry = _totals.setdefault(self._subsystem, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += elapsed
            entry[2] += elapsed - frame[1]


# -- memo-cache registry -----------------------------------------------------

_caches: dict[str, object] = {}


def register_cache(name: str, cache: object) -> None:
    """Register a cache exposing ``hits``/``misses``/``__len__`` for reports."""
    with _lock:
        _caches[name] = cache


@dataclass(frozen=True)
class SubsystemTiming:
    name: str
    calls: int
    inclusive_s: float
    exclusive_s: float


@dataclass(frozen=True)
class CacheCounters:
    name: str
    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class PerfSnapshot:
    """A consistent view of all timers and memo counters."""

    timings: tuple[SubsystemTiming, ...]
    caches: tuple[CacheCounters, ...]

    @property
    def total_exclusive_s(self) -> float:
        return sum(t.exclusive_s for t in self.timings)

    def timing(self, name: str) -> SubsystemTiming | None:
        for entry in self.timings:
            if entry.name == name:
                return entry
        return None

    def cache(self, name: str) -> CacheCounters | None:
        for entry in self.caches:
            if entry.name == name:
                return entry
        return None

    @property
    def memo_hits(self) -> int:
        return sum(c.hits for c in self.caches)

    def to_dict(self) -> dict:
        return {
            "subsystems": [
                {
                    "name": t.name,
                    "calls": t.calls,
                    "inclusive_s": t.inclusive_s,
                    "exclusive_s": t.exclusive_s,
                }
                for t in self.timings
            ],
            "caches": [
                {
                    "name": c.name,
                    "hits": c.hits,
                    "misses": c.misses,
                    "size": c.size,
                    "hit_rate": c.hit_rate,
                }
                for c in self.caches
            ],
        }

    def format_table(self, wall_s: float | None = None) -> str:
        """Human-readable attribution table (what ``repro profile`` prints)."""
        lines = [
            f"{'subsystem':<12} {'calls':>9} {'inclusive':>10} {'exclusive':>10} {'share':>7}",
            "-" * 52,
        ]
        reference = wall_s if wall_s else self.total_exclusive_s
        for t in sorted(self.timings, key=lambda t: -t.exclusive_s):
            share = t.exclusive_s / reference if reference else 0.0
            lines.append(
                f"{t.name:<12} {t.calls:>9} {t.inclusive_s:>9.2f}s {t.exclusive_s:>9.2f}s "
                f"{share:>6.1%}"
            )
        attributed = self.total_exclusive_s
        if wall_s is not None:
            lines.append("-" * 52)
            lines.append(
                f"{'attributed':<12} {'':>9} {'':>10} {attributed:>9.2f}s "
                f"{attributed / wall_s if wall_s else 0.0:>6.1%}"
            )
            lines.append(f"{'wall':<12} {'':>9} {'':>10} {wall_s:>9.2f}s {'100.0%':>7}")
        if self.caches:
            lines.append("")
            lines.append(f"{'memo cache':<22} {'hits':>9} {'misses':>9} {'rate':>7} {'size':>8}")
            lines.append("-" * 58)
            for c in sorted(self.caches, key=lambda c: -c.hits):
                lines.append(
                    f"{c.name:<22} {c.hits:>9} {c.misses:>9} {c.hit_rate:>6.1%} {c.size:>8}"
                )
        return "\n".join(lines)


def _subsystem_rank(name: str):
    try:
        return (0, SUBSYSTEMS.index(name))
    except ValueError:
        return (1, name)


def snapshot() -> PerfSnapshot:
    """A consistent copy of every timer and registered cache counter."""
    with _lock:
        timings = tuple(
            SubsystemTiming(name, int(entry[0]), entry[1], entry[2])
            for name, entry in sorted(_totals.items(), key=lambda kv: _subsystem_rank(kv[0]))
        )
        caches = []
        for name, cache in sorted(_caches.items()):
            try:
                caches.append(
                    CacheCounters(name, cache.hits, cache.misses, len(cache))  # type: ignore[attr-defined]
                )
            except Exception:
                continue
    return PerfSnapshot(timings, tuple(caches))


def reset() -> None:
    """Zero every timer and every registered cache's counters."""
    with _lock:
        _totals.clear()
        caches = list(_caches.values())
    for cache in caches:
        reset_counters = getattr(cache, "reset_counters", None)
        if reset_counters is not None:
            reset_counters()


def merge_counts(counts: Mapping[str, Iterable[float]]) -> None:
    """Fold externally collected ``{name: (calls, inclusive, exclusive)}`` in.

    Lets a worker ship its totals back to a coordinating process (the thread
    executor does not need this — threads share the process-wide totals).
    """
    with _lock:
        for name, values in counts.items():
            calls, inclusive, exclusive = values
            entry = _totals.setdefault(name, [0, 0.0, 0.0])
            entry[0] += int(calls)
            entry[1] += float(inclusive)
            entry[2] += float(exclusive)
