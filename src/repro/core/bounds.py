"""Symbolic I/O lower-bound expressions.

The bounds produced by IOLB are functions of the program parameters
(``N``, ``M``, ...) and of the fast-memory capacity ``S``.  This module wraps
the sympy plumbing:

* ``S_SYMBOL`` — the cache-size symbol shared by the whole library;
* :func:`asymptotic_leading` — the "keep only the dominant term" simplification
  used for the right-hand column of Table 2, under the paper's asymptotic
  assumption (all parameters tend to infinity and ``S = o(parameters)``);
* :class:`SubBound` — one lower bound for one sub-CDAG, together with its
  may-spill set (needed by the decomposition lemma);
* :class:`IOBoundResult` — the final result of Algorithm 6 for a program.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import reduce
from typing import Any, Mapping

import sympy

from ..sets import ParamSet, parse_set, sym

#: Fast-memory capacity symbol (number of words that fit in cache/scratchpad).
S_SYMBOL: sympy.Symbol = sym("S")

#: Growth degree assigned to program parameters vs. the cache size when
#: extracting asymptotically dominant terms:  params ~ t**PARAM_DEGREE,
#: S ~ t**S_DEGREE with PARAM_DEGREE > S_DEGREE encodes  S = o(params).
PARAM_DEGREE = 4
S_DEGREE = 2


def growth_degree(term: sympy.Expr, param_names: set[str]) -> sympy.Rational:
    """Growth degree of a monomial (product) under params ~ t^4, S ~ t^2."""
    degree = sympy.Rational(0)
    for base, exponent in term.as_powers_dict().items():
        if not base.free_symbols and not isinstance(base, sympy.Symbol):
            continue
        if isinstance(base, sympy.Symbol):
            if base == S_SYMBOL:
                degree += S_DEGREE * exponent
            elif base.name in param_names:
                degree += PARAM_DEGREE * exponent
        else:
            # Composite base (e.g. (S + 1)**(1/2)): use the degree of its
            # fastest-growing term, times the exponent.
            degree += expression_degree(base, param_names) * exponent
    return degree


def expression_degree(expr: sympy.Expr, param_names: set[str]) -> sympy.Rational:
    """Growth degree of an arbitrary expression (max over its added terms)."""
    expr = expr.replace(sympy.floor, lambda x: x)
    expr = expr.replace(sympy.Max, lambda *args: sympy.Add(*args))
    terms = sympy.Add.make_args(sympy.expand(expr))
    degrees = [growth_degree(term, param_names) for term in terms]
    return max(degrees) if degrees else sympy.Rational(0)


def asymptotic_leading(expr: sympy.Expr, param_names: set[str]) -> sympy.Expr:
    """Keep only the asymptotically dominant term(s) of an expression.

    floor(x) is replaced by x and Max(...) by its dominant argument, matching
    the way the paper turns the complete formulae of Table 2 into the
    asymptotic ones.
    """
    expr = expr.replace(sympy.floor, lambda x: x)
    expr = expr.replace(
        sympy.Max,
        lambda *args: max(args, key=lambda a: expression_degree(a, param_names)),
    )
    expr = sympy.expand(sympy.powsimp(expr))
    return _leading_term(expr, param_names)


def _leading_term(expr: sympy.Expr, param_names: set[str]) -> sympy.Expr:
    expr = sympy.expand(expr)
    terms = sympy.Add.make_args(expr)
    if len(terms) == 1:
        return terms[0]
    best_degree = None
    best_terms: list[sympy.Expr] = []
    for term in terms:
        degree = growth_degree(term, param_names)
        if best_degree is None or degree > best_degree:
            best_degree = degree
            best_terms = [term]
        elif degree == best_degree:
            best_terms.append(term)
    return sympy.Add(*best_terms)


def evaluate(expr: sympy.Expr, instance: Mapping[str, object]) -> float:
    """Numeric value of a bound expression at a parameter/cache-size instance."""
    substitutions = {sym(name): value for name, value in instance.items()}
    value = expr.subs(substitutions)
    return float(sympy.N(value))


#: Version tag of the JSON serialization schema below.
SERIALIZATION_SCHEMA = 1


def expr_to_text(expr: sympy.Expr) -> str:
    """Serialize a sympy expression to its exact ``srepr`` form."""
    return sympy.srepr(sympy.sympify(expr))


_STRING_LITERAL = re.compile(r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\"")
_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Identifiers that may appear in the ``srepr`` of a bound expression:
#: expression heads, Symbol assumption keywords, and numeric atoms.  Anything
#: else (``__import__``, ``lambda``, attribute names, ...) is rejected before
#: the text reaches ``sympify``, which evaluates its input — result documents
#: may come from untrusted files (shared caches, downloaded suite dumps).
_ALLOWED_SREPR_NAMES = frozenset({
    "Add", "Mul", "Pow", "Symbol", "Integer", "Rational", "Float",
    "Max", "Min", "Abs", "floor", "ceiling", "sqrt",
    "integer", "positive", "negative", "nonnegative", "nonpositive",
    "real", "precision", "True", "False",
    "S", "Half", "One", "Zero", "NegativeOne", "pi", "E",
    "oo", "Infinity", "NegativeInfinity",
})


def expr_from_text(text: str) -> sympy.Expr:
    """Rebuild a sympy expression from its ``srepr`` form (exact inverse).

    Symbol names (quoted strings) are arbitrary; every bare identifier must
    be on the srepr allowlist, so a malicious document cannot smuggle code
    through the ``eval`` inside ``sympify``.
    """
    stripped = _STRING_LITERAL.sub("''", text)
    for name in _IDENTIFIER.findall(stripped):
        if name not in _ALLOWED_SREPR_NAMES:
            raise ValueError(
                f"refusing to deserialize expression containing {name!r} "
                "(not a known srepr construct)"
            )
    return sympy.sympify(text)


def _pset_to_pieces(domain: ParamSet) -> list[str]:
    """Serialize a ParamSet as one parser-compatible string per piece."""
    return [repr(ParamSet.from_basic(piece)) for piece in domain.pieces]


def _pset_from_pieces(pieces: list[str]) -> ParamSet | None:
    """Rebuild a ParamSet from per-piece strings (None when empty/unparseable).

    Empty sets carry no information for the decomposition lemma, and a piece
    the parser cannot read (none is produced by the current printers) makes
    the whole set unusable — both cases drop the entry rather than guess.
    """
    try:
        parsed = [parse_set(text) for text in pieces]
    except Exception:
        return None
    if not parsed:
        return None
    return reduce(ParamSet.union, parsed)


@dataclass
class SubBound:
    """A lower bound for one sub-CDAG (one output of Alg. 4, Alg. 5 or Sec. 4.3).

    Attributes
    ----------
    expression:
        Complete bound (sympy), possibly containing ``floor`` and ``Max``.
    smooth:
        The same bound without ``floor``/``Max`` — still a valid lower bound
        (floors were only dropped in the safe direction) and easier to sum,
        compare and simplify.
    may_spill:
        Map from statement name to the may-spill vertex set of the sub-CDAG
        (Def. 4.1), used by the decomposition lemma to decide which bounds may
        be added together.
    method:
        ``"kpartition"`` or ``"wavefront"``.
    statement:
        The DFG vertex the derivation was centred on.
    depth:
        Loop-parametrisation depth (0 means no parametrisation).
    """

    expression: sympy.Expr
    smooth: sympy.Expr
    may_spill: dict[str, ParamSet] = field(default_factory=dict)
    method: str = "kpartition"
    statement: str = ""
    depth: int = 0
    notes: str = ""

    def evaluate(self, instance: Mapping[str, object]) -> float:
        return evaluate(self.smooth, instance)

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (sympy expressions via ``srepr``)."""
        return {
            "expression": expr_to_text(self.expression),
            "smooth": expr_to_text(self.smooth),
            "may_spill": {
                statement: _pset_to_pieces(domain)
                for statement, domain in self.may_spill.items()
            },
            "method": self.method,
            "statement": self.statement,
            "depth": self.depth,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubBound":
        may_spill: dict[str, ParamSet] = {}
        for statement, pieces in data.get("may_spill", {}).items():
            domain = _pset_from_pieces(pieces)
            if domain is not None:
                may_spill[statement] = domain
        return cls(
            expression=expr_from_text(data["expression"]),
            smooth=expr_from_text(data["smooth"]),
            may_spill=may_spill,
            method=data.get("method", "kpartition"),
            statement=data.get("statement", ""),
            depth=int(data.get("depth", 0)),
            notes=data.get("notes", ""),
        )


@dataclass
class IOBoundResult:
    """Final result of the IOLB derivation for one program."""

    program_name: str
    parameters: tuple[str, ...]
    expression: sympy.Expr
    smooth: sympy.Expr
    asymptotic: sympy.Expr
    input_size: sympy.Expr
    total_flops: sympy.Expr
    sub_bounds: list[SubBound] = field(default_factory=list)
    log: list[str] = field(default_factory=list)

    def oi_upper_bound(self) -> sympy.Expr:
        """Parametric upper bound on operational intensity: #ops / Q_low.

        The value is a full sympy expand/simplify over the derived bound, so
        it is memoised per instance (``__repr__`` calls it, and suites print
        a repr per kernel per run).  The cache is lazy instance state, not a
        dataclass field: it survives :meth:`from_dict` round-trips (any
        deserialized instance just computes once on first use) and never
        leaks into :meth:`to_dict` or equality.  Mutating ``total_flops``/``asymptotic`` after the first
        call would return the stale value — results are treated as immutable
        everywhere in the library.
        """
        cached = self.__dict__.get("_oi_upper_bound_cache")
        if cached is None:
            params = set(self.parameters)
            ratio = sympy.simplify(
                asymptotic_leading(self.total_flops, params) / self.asymptotic
            )
            cached = asymptotic_leading(sympy.expand(ratio), params | {"S"})
            self.__dict__["_oi_upper_bound_cache"] = cached
        return cached

    def evaluate(self, instance: Mapping[str, object]) -> float:
        """Numeric lower bound at a parameter/cache-size instance."""
        return evaluate(self.smooth, instance)

    def evaluate_oi_upper(self, instance: Mapping[str, object]) -> float:
        flops = evaluate(self.total_flops, instance)
        q_low = max(self.evaluate(instance), 1.0)
        return flops / q_low

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation of the full result.

        Sympy expressions are serialized with ``srepr`` so the round-trip is
        exact (including symbol assumptions, ``floor`` and ``Max``); may-spill
        sets are serialized piece-by-piece in the library's set syntax.
        """
        return {
            "schema": SERIALIZATION_SCHEMA,
            "program_name": self.program_name,
            "parameters": list(self.parameters),
            "expression": expr_to_text(self.expression),
            "smooth": expr_to_text(self.smooth),
            "asymptotic": expr_to_text(self.asymptotic),
            "input_size": expr_to_text(self.input_size),
            "total_flops": expr_to_text(self.total_flops),
            "sub_bounds": [bound.to_dict() for bound in self.sub_bounds],
            "log": list(self.log),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IOBoundResult":
        schema = data.get("schema", SERIALIZATION_SCHEMA)
        if schema != SERIALIZATION_SCHEMA:
            raise ValueError(
                f"unsupported IOBoundResult schema {schema!r} "
                f"(this library reads schema {SERIALIZATION_SCHEMA})"
            )
        return cls(
            program_name=data["program_name"],
            parameters=tuple(data["parameters"]),
            expression=expr_from_text(data["expression"]),
            smooth=expr_from_text(data["smooth"]),
            asymptotic=expr_from_text(data["asymptotic"]),
            input_size=expr_from_text(data["input_size"]),
            total_flops=expr_from_text(data["total_flops"]),
            sub_bounds=[SubBound.from_dict(entry) for entry in data.get("sub_bounds", [])],
            log=list(data.get("log", [])),
        )

    def __repr__(self) -> str:
        return (
            f"IOBoundResult({self.program_name!r}, Q_low ~ {self.asymptotic}, "
            f"OI_up ~ {self.oi_upper_bound()})"
        )
