"""CDAG decomposition and combination of sub-bounds (Sec. 4, Algorithm 1).

Under the no-recomputation model, lower bounds obtained for sub-CDAGs whose
*may-spill* sets are pairwise disjoint can be summed (Lemma 4.2).  The
functions here implement

* the interference test between may-spill sets,
* ``combine_sub_q`` — the greedy combination of Algorithm 1 (driven by a
  concrete parameter instance, while the returned expression stays valid for
  all parameter values), and
* the subtraction of an accepted bound's may-spill set from the remaining
  "working copy" of the DFG domains (the ``G'`` of Algorithm 6).
"""

from __future__ import annotations

from typing import Mapping

import sympy

from ..sets import ParamSet
from .bounds import SubBound

MIN_USEFUL_VALUE = 1.0


def may_spill_interferes(a: dict[str, ParamSet], b: dict[str, ParamSet]) -> bool:
    """True unless the two may-spill sets are provably disjoint."""
    for node, set_a in a.items():
        set_b = b.get(node)
        if set_b is None:
            continue
        if not set_a.intersect(set_b).is_empty():
            return True
    return False


def combine_sub_q(
    bounds: list[SubBound], instance: Mapping[str, object]
) -> tuple[sympy.Expr, list[SubBound]]:
    """Algorithm 1 (greedy variant): sum as many non-interfering bounds as possible.

    Bounds are ranked by their value at the heuristic parameter ``instance``;
    a bound is accepted when its may-spill set does not interfere with any
    already accepted bound.  The returned expression is the sum of the
    accepted bounds' smooth expressions — a valid lower bound for every
    parameter value by Lemma 4.2.
    """
    scored: list[tuple[float, SubBound]] = []
    for bound in bounds:
        try:
            value = bound.evaluate(instance)
        except (TypeError, ValueError):
            value = 0.0
        if value >= MIN_USEFUL_VALUE:
            scored.append((value, bound))
    scored.sort(key=lambda pair: pair[0], reverse=True)

    accepted: list[SubBound] = []
    total = sympy.Integer(0)
    for _, bound in scored:
        if any(may_spill_interferes(bound.may_spill, other.may_spill) for other in accepted):
            continue
        accepted.append(bound)
        total = total + bound.smooth
    return sympy.expand(total), accepted


def remove_may_spill(
    domains: dict[str, ParamSet], may_spill: dict[str, ParamSet]
) -> dict[str, ParamSet]:
    """Return the working domains with a bound's may-spill vertices removed.

    This is the ``G' := G' - Q.may-spill`` step of Algorithm 6: it steers the
    search for further sub-CDAGs towards parts of the computation that can
    still contribute a non-interfering bound.
    """
    updated = dict(domains)
    for node, spill in may_spill.items():
        if node not in updated:
            continue
        updated[node] = updated[node].subtract(spill).coalesce()
    return updated
