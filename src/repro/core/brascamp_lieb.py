"""Brascamp-Lieb exponent selection (Sec. 3.3 and 5.3 of the paper).

Given the projection kernels ``K_1..K_m`` attached to the selected DFG-paths
and the subgroup (subspace) lattice they generate, we must pick exponents
``s_1..s_m`` in [0, 1] satisfying the rank condition (2b)

    rank(H)  <=  sum_j s_j * rank(phi_j(H))      for every H in the lattice,

so that Theorem 3.10 bounds any K-bounded set E by ``prod_j |phi_j(E)|^{s_j}``.
Among all admissible exponents we first minimise ``sigma = sum_j s_j`` (a
linear program) and then, with sigma fixed, minimise the constant factor
``prod_j (s_j / beta_j)^{s_j}`` of Lemma 5.2 (a convex program solved with
SLSQP).  Exponents are rationalised when the rational candidate still
satisfies every constraint, so that common cases yield exact values such as
``1/2`` and exact bounds such as ``S**(3/2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np
from scipy.optimize import linprog, minimize
from scipy.special import xlogy

from ..linalg import Subspace, SubspaceLattice

RATIONALISE_MAX_DENOMINATOR = 24
FEASIBILITY_TOLERANCE = 1e-7


@dataclass
class ExponentSolution:
    """Chosen Brascamp-Lieb exponents and the resulting sigma = sum(s_j)."""

    exponents: list[Fraction]
    sigma: Fraction
    is_exact: bool

    def as_floats(self) -> list[float]:
        return [float(s) for s in self.exponents]


def rank_constraints(
    kernels: list[Subspace], lattice: SubspaceLattice
) -> list[tuple[list[int], int]]:
    """Linear constraints ``sum_j coeff_j * s_j >= rhs`` from the lattice elements.

    ``coeff_j = rank(phi_j(H)) = dim(H) - dim(H  cap  K_j)`` and ``rhs = dim(H)``.
    """
    constraints = []
    for subgroup in lattice.nontrivial_elements():
        coeffs = [subgroup.projection_rank(kernel) for kernel in kernels]
        constraints.append((coeffs, subgroup.dim))
    return constraints


def solve_exponents(
    kernels: list[Subspace],
    lattice: SubspaceLattice,
    betas: list[Fraction] | None = None,
) -> ExponentSolution | None:
    """Pick exponents s_1..s_m (Sec. 5.3).  Returns None when infeasible."""
    m = len(kernels)
    if m == 0:
        return None
    betas = betas if betas is not None else [Fraction(1)] * m
    constraints = rank_constraints(kernels, lattice)
    if not constraints:
        # No non-trivial subgroup: any s is admissible; s = 0 gives U = 1,
        # which is useless, so require at least the full space constraint.
        full = Subspace.full(kernels[0].dim_ambient)
        coeffs = [full.projection_rank(kernel) for kernel in kernels]
        constraints = [(coeffs, full.dim)]

    # --- Phase 1: minimise sigma = sum s_j subject to the rank constraints.
    c = np.ones(m)
    a_ub = []
    b_ub = []
    for coeffs, rhs in constraints:
        a_ub.append([-float(x) for x in coeffs])
        b_ub.append(-float(rhs))
    bounds = [(0.0, 1.0)] * m
    lp = linprog(c, A_ub=np.array(a_ub), b_ub=np.array(b_ub), bounds=bounds, method="highs")
    if not lp.success:
        return None
    sigma_value = float(lp.fun)

    # --- Phase 2: with sigma fixed, minimise sum_j s_j * log(s_j / beta_j).
    beta_floats = [float(b) for b in betas]

    def objective(s: np.ndarray) -> float:
        return float(sum(xlogy(s[j], max(s[j], 1e-12) / beta_floats[j]) for j in range(m)))

    def feasible(s: np.ndarray, tolerance: float = FEASIBILITY_TOLERANCE) -> bool:
        if np.any(s < -tolerance) or np.any(s > 1 + tolerance):
            return False
        if abs(float(np.sum(s)) - sigma_value) > 1e-4:
            return False
        return all(float(np.dot(coeffs, s)) >= rhs - tolerance for coeffs, rhs in constraints)

    scipy_constraints = [
        {"type": "eq", "fun": lambda s, sv=sigma_value: float(np.sum(s) - sv)},
    ]
    for coeffs, rhs in constraints:
        scipy_constraints.append(
            {
                "type": "ineq",
                "fun": lambda s, cf=coeffs, r=rhs: float(np.dot(cf, s) - r),
            }
        )

    # Vertex LP solutions are poor minimisers of the (strictly convex) phase-2
    # objective, so several starting points are tried — in particular the
    # uniform point sigma/m, which is the analytic optimum whenever it is
    # feasible (e.g. the stencil kernels with all-interfering chain paths).
    candidates: list[np.ndarray] = [np.array(lp.x)]
    uniform = np.full(m, sigma_value / m)
    if feasible(uniform):
        candidates.append(uniform)
    for start in list(candidates):
        solution = minimize(
            objective,
            start,
            bounds=bounds,
            constraints=scipy_constraints,
            method="SLSQP",
        )
        if solution.success and feasible(solution.x):
            candidates.append(solution.x)
    raw = min((c for c in candidates if feasible(c)), key=objective, default=np.array(lp.x))

    rational = _rationalise(raw, constraints, sigma_value)
    if rational is not None:
        sigma = sum(rational, Fraction(0))
        return ExponentSolution(rational, sigma, is_exact=True)
    floats = [Fraction(float(v)).limit_denominator(10**6) for v in raw]
    return ExponentSolution(floats, sum(floats, Fraction(0)), is_exact=False)


def _rationalise(
    raw: np.ndarray,
    constraints: list[tuple[list[int], int]],
    sigma_value: float,
) -> list[Fraction] | None:
    """Round the float solution to small rationals if feasibility is preserved."""
    candidate = [
        Fraction(float(v)).limit_denominator(RATIONALISE_MAX_DENOMINATOR) for v in raw
    ]
    for value in candidate:
        if value < 0 or value > 1:
            return None
    sigma = sum(candidate, Fraction(0))
    if float(sigma) > sigma_value + 1e-6:
        return None
    for coeffs, rhs in constraints:
        total = sum(Fraction(c) * s for c, s in zip(coeffs, candidate))
        if total < rhs:
            return None
    return candidate
