"""DFG-path interference and the beta coefficients (Sec. 5.1.1, coeffInterf).

Two paths ``Q1``, ``Q2`` are *independent* on a domain ``D`` when the source
sets they pull data from, ``R_Q1^{-1}(D)`` and ``R_Q2^{-1}(D)``, are disjoint.
For a clique of pairwise-independent paths the projection bounds can be
*summed* (their contributions to the In-set do not overlap), which tightens
the final bound by the constant of Lemma 5.2.

``coeff_interf`` reproduces the paper's greedy construction: cover all paths
with maximal independent sets of the interference graph and set
``beta_j = #{sets containing j} / #sets``.
"""

from __future__ import annotations

from fractions import Fraction

from ..ir import DFG
from ..sets import ParamSet
from .paths import DFGPath


def path_source_set(dfg: DFG, path: DFGPath, domain: ParamSet) -> ParamSet:
    """R_P^{-1}(D): the set of source instances read by D through path P."""
    source_space = _node_space(dfg, path.source)
    return path.function.image_of(domain, source_space)


def _node_space(dfg: DFG, node: str):
    if node in dfg.program.statements:
        return dfg.program.statement(node).space
    return dfg.program.array(node).space


def paths_independent(dfg: DFG, path_a: DFGPath, path_b: DFGPath, domain: ParamSet) -> bool:
    """True when the two paths provably pull from disjoint source sets.

    Sources attached to different DFG vertices are trivially disjoint.  For a
    common source vertex the rational emptiness of the intersection is
    required — "unknown" counts as interfering, which only weakens the bound.
    """
    if path_a.source != path_b.source:
        return True
    source_a = path_source_set(dfg, path_a, domain)
    source_b = path_source_set(dfg, path_b, domain)
    return source_a.intersect(source_b).is_empty()


def coeff_interf(
    dfg: DFG, paths: list[DFGPath], domain: ParamSet
) -> list[Fraction]:
    """Compute the beta coefficients of the summed projection inequality.

    Builds the interference graph, greedily extracts maximal independent sets
    until every path is covered, and averages membership.  With no independent
    pair this degenerates to ``beta_j = 1/m`` (the plain averaged inequality);
    with all paths pairwise independent it yields ``beta_j = 1`` (the fully
    summed inequality), exactly as in the paper's gemm/cholesky examples.
    """
    m = len(paths)
    if m == 0:
        return []
    independent = [[False] * m for _ in range(m)]
    for i in range(m):
        for j in range(i + 1, m):
            flag = paths_independent(dfg, paths[i], paths[j], domain)
            independent[i][j] = independent[j][i] = flag

    cliques: list[set[int]] = []
    covered: set[int] = set()
    order = list(range(m))
    for seed in order:
        if seed in covered and cliques:
            continue
        clique = {seed}
        for candidate in order:
            if candidate in clique:
                continue
            if all(independent[candidate][member] for member in clique):
                clique.add(candidate)
        cliques.append(clique)
        covered |= clique
    # Ensure every path is covered (greedy above guarantees it, but keep the
    # invariant explicit for safety).
    for j in range(m):
        if not any(j in clique for clique in cliques):
            cliques.append({j})

    total = len(cliques)
    return [Fraction(sum(1 for clique in cliques if j in clique), total) for j in range(m)]
