"""Main IOLB driver (Sec. 7, Algorithm 6).

``derive_bounds`` orchestrates the whole derivation for an affine program:

1. build the DFG;
2. for every statement, repeatedly search for a path combination (Alg. 3),
   grow the kernel subgroup lattice (Alg. 2) and derive a K-partition bound
   (Alg. 4), removing the covered may-spill region before looking for another
   sub-CDAG of the same statement;
3. for every statement and loop-parametrisation depth, attempt a wavefront
   bound (Alg. 5 / Cor. 6.3);
4. combine all sub-bounds with the non-disjoint decomposition lemma
   (Alg. 1), add the compulsory input misses, and clamp at zero:

       Q_low  =  |inputs|  +  max(0, combined sub-bounds).
"""

from __future__ import annotations

from typing import Mapping

import sympy

from ..ir import AffineProgram, DFG
from ..linalg import SubspaceLattice, subspace_closure
from ..sets import Constraint, CountingError, LinExpr, ParamSet, card
from .bounds import IOBoundResult, SubBound, asymptotic_leading, evaluate
from .decomposition import combine_sub_q
from .kpartition import sub_param_q_by_partition
from .paths import genpaths
from .wavefront import sub_param_q_by_wavefront

#: Default heuristic instance: parameters are taken much larger than the cache
#: size, matching the asymptotic regime (S = o(params)) in which the bounds
#: are compared and reported.  The instance is only used to *rank* candidate
#: sub-bounds; the returned bound is valid for every parameter value.
DEFAULT_PARAM_VALUE = 10**5
DEFAULT_CACHE_SIZE = 256
DEFAULT_GAMMA = 0.25

#: Number of statement-centric sub-CDAGs searched per statement.  The second
#: and later rounds work on the domain left after removing the previous
#: round's may-spill set; that set difference can shatter into many pieces, so
#: the default keeps a single round (all headline PolyBench results come from
#: round 0) and callers can raise it for programs that need the Sec. 4.2
#: same-statement decomposition.
DEFAULT_MAX_SUBCDAGS_PER_STATEMENT = 1
MAX_WORKING_PIECES = 16


def derive_bounds(
    program: AffineProgram,
    instance: Mapping[str, int] | None = None,
    max_depth: int = 1,
    gamma: float = DEFAULT_GAMMA,
    validate_wavefront: bool = True,
    wavefront_validation_instance: Mapping[str, int] | None = None,
    max_subcdags_per_statement: int = DEFAULT_MAX_SUBCDAGS_PER_STATEMENT,
) -> IOBoundResult:
    """Derive a parametric I/O lower bound for ``program``.

    Parameters
    ----------
    program:
        The affine program (statements, input arrays, flow dependences).
    instance:
        Heuristic parameter values used only to rank competing sub-bounds
        (the returned bound is valid for *all* parameter values).  Defaults to
        128 for every program parameter and 512 for the cache size ``S``.
    max_depth:
        Maximum loop-parametrisation depth explored by the wavefront method.
    gamma:
        Fraction of the statement domain a path must cover to be considered.
    validate_wavefront:
        When True, wavefront bounds are only kept if the reachability
        hypothesis of Cor. 6.3 holds on a small concretely-expanded CDAG.
    """
    dfg = DFG.from_program(program)
    instance = _heuristic_instance(program, instance)
    log: list[str] = []
    sub_bounds: list[SubBound] = []

    # --- K-partition bounds (depth 0) -------------------------------------
    for statement in dfg.topological_statements():
        working = program.statement(statement).domain
        for round_index in range(max_subcdags_per_statement):
            bound = _derive_partition_bound(dfg, statement, working, instance, gamma)
            if bound is None:
                break
            sub_bounds.append(bound)
            log.append(
                f"kpartition[{statement} round {round_index}]: "
                f"{bound.smooth} ({bound.notes})"
            )
            if round_index + 1 >= max_subcdags_per_statement:
                break
            spill = bound.may_spill.get(statement)
            if spill is None:
                break
            # Pieces that are only non-empty for degenerate (tiny) parameter
            # values are dropped: this is pure search-space pruning and keeps
            # the later rounds focused on genuinely uncovered regions.
            context = _large_parameter_context(program)
            working = working.subtract(spill).coalesce(context)
            if (
                working.is_obviously_empty()
                or len(working.pieces) > MAX_WORKING_PIECES
                or working.is_empty(context)
            ):
                break

    # --- Wavefront bounds (depth >= 1) -------------------------------------
    for depth in range(1, max_depth + 1):
        for statement in dfg.topological_statements():
            if len(program.statement(statement).dims) <= depth:
                continue
            bound = sub_param_q_by_wavefront(
                dfg,
                statement,
                depth=depth,
                validation_instance=wavefront_validation_instance,
                validate=validate_wavefront,
            )
            if bound is not None:
                sub_bounds.append(bound)
                log.append(f"wavefront[{statement} depth {depth}]: {bound.smooth}")

    # --- Combination -------------------------------------------------------
    combined, accepted = combine_sub_q(sub_bounds, instance)
    log.append(f"combined {len(accepted)}/{len(sub_bounds)} sub-bounds")

    input_size = program.input_size()
    total_flops = program.total_flops()
    expression = input_size + sympy.Max(sympy.Integer(0), combined)
    smooth = sympy.expand(input_size + sympy.Max(sympy.Integer(0), combined))
    params = set(program.params)
    asymptotic = asymptotic_leading(smooth, params)

    return IOBoundResult(
        program_name=program.name,
        parameters=program.params,
        expression=expression,
        smooth=smooth,
        asymptotic=asymptotic,
        input_size=input_size,
        total_flops=total_flops,
        sub_bounds=sub_bounds,
        log=log,
    )


def _large_parameter_context(program: AffineProgram, minimum: int = 4) -> list[Constraint]:
    """Context constraints ``param >= minimum`` encoding the large-parameter regime."""
    return [Constraint(LinExpr({p: 1}, -minimum)) for p in program.params]


def _heuristic_instance(
    program: AffineProgram, instance: Mapping[str, int] | None
) -> dict[str, int]:
    values = {p: DEFAULT_PARAM_VALUE for p in program.params}
    values["S"] = DEFAULT_CACHE_SIZE
    if instance:
        values.update({k: int(v) for k, v in instance.items()})
    return values


def _derive_partition_bound(
    dfg: DFG,
    statement: str,
    working_domain: ParamSet,
    instance: Mapping[str, int],
    gamma: float,
) -> SubBound | None:
    """One iteration of the per-statement loop of Algorithm 6 (lines 9-18)."""
    domain_size = _instance_card(working_domain, instance)
    if domain_size is not None and domain_size < 1:
        return None

    paths = genpaths(dfg, statement, restrict_domain=working_domain)
    if not paths:
        return None

    ambient = dfg.program.statement(statement).space.dim
    lattice = SubspaceLattice(ambient)
    accepted = []
    current_domain = working_domain.intersect(dfg.program.statement(statement).domain)
    for path in paths:
        restricted = current_domain.intersect(path.domain)
        if domain_size is not None:
            restricted_size = _instance_card(restricted, instance)
            if restricted_size is not None and restricted_size < gamma * domain_size:
                continue
        kernel = path.kernel()
        if kernel.is_zero():
            continue
        lattice, changed = subspace_closure(lattice, kernel)
        if not changed:
            continue
        accepted.append(path)
        current_domain = restricted

    if not accepted:
        return None
    return sub_param_q_by_partition(dfg, statement, accepted, current_domain, lattice, depth=0)


def _instance_card(domain: ParamSet, instance: Mapping[str, int]) -> float | None:
    """Cardinality of a domain at the heuristic instance (None when unknown)."""
    try:
        expr = card(domain)
    except CountingError:
        return None
    try:
        return evaluate(expr, instance)
    except (TypeError, ValueError):
        return None
