"""Legacy entry point for the IOLB driver (Sec. 7, Algorithm 6).

The derivation itself now lives in :mod:`repro.analysis`: the Algorithm 6
driver is :func:`repro.analysis.run_analysis`, the two sub-bound families are
the registered ``kpartition`` and ``wavefront`` strategies, and
:class:`repro.analysis.Analyzer` adds batching, process fan-out and on-disk
memoisation on top.  :func:`derive_bounds` is kept as a thin wrapper so
existing call sites keep working:

1. build the DFG;
2. for every statement, repeatedly search for a path combination (Alg. 3),
   grow the kernel subgroup lattice (Alg. 2) and derive a K-partition bound
   (Alg. 4), removing the covered may-spill region before looking for another
   sub-CDAG of the same statement;
3. for every statement and loop-parametrisation depth, attempt a wavefront
   bound (Alg. 5 / Cor. 6.3);
4. combine all sub-bounds with the non-disjoint decomposition lemma
   (Alg. 1), add the compulsory input misses, and clamp at zero:

       Q_low  =  |inputs|  +  max(0, combined sub-bounds).
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.config import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_GAMMA,
    DEFAULT_MAX_SUBCDAGS_PER_STATEMENT,
    DEFAULT_PARAM_VALUE,
    AnalysisConfig,
)
from ..analysis.strategies import MAX_WORKING_PIECES
from ..ir import AffineProgram
from .bounds import IOBoundResult

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_GAMMA",
    "DEFAULT_MAX_SUBCDAGS_PER_STATEMENT",
    "DEFAULT_PARAM_VALUE",
    "MAX_WORKING_PIECES",
    "derive_bounds",
]


def derive_bounds(
    program: AffineProgram,
    instance: Mapping[str, int] | None = None,
    max_depth: int = 1,
    gamma: float = DEFAULT_GAMMA,
    validate_wavefront: bool = True,
    wavefront_validation_instance: Mapping[str, int] | None = None,
    max_subcdags_per_statement: int = DEFAULT_MAX_SUBCDAGS_PER_STATEMENT,
) -> IOBoundResult:
    """Derive a parametric I/O lower bound for ``program``.

    Backward-compatible wrapper over :class:`repro.analysis.Analyzer`; new
    code should build an :class:`repro.analysis.AnalysisConfig` directly
    (which also exposes batching, caching and custom strategies).

    Parameters
    ----------
    program:
        The affine program (statements, input arrays, flow dependences).
    instance:
        Heuristic parameter values used only to rank competing sub-bounds
        (the returned bound is valid for *all* parameter values).  Defaults
        to ``DEFAULT_PARAM_VALUE`` (10**5) for every program parameter and
        ``DEFAULT_CACHE_SIZE`` (256) for the cache size ``S``.
    max_depth:
        Maximum loop-parametrisation depth explored by the wavefront method.
    gamma:
        Fraction of the statement domain a path must cover to be considered.
    validate_wavefront:
        When True, wavefront bounds are only kept if the reachability
        hypothesis of Cor. 6.3 holds on a small concretely-expanded CDAG.
    """
    # Imported here rather than at module level: repro.analysis.analyzer
    # imports repro.core submodules, so a load-time import would be circular
    # whichever of the two packages is imported first.
    from ..analysis.analyzer import Analyzer

    config = AnalysisConfig(
        instance=instance,
        gamma=gamma,
        max_depth=max_depth,
        validate_wavefront=validate_wavefront,
        wavefront_validation_instance=wavefront_validation_instance,
        max_subcdags_per_statement=max_subcdags_per_statement,
    )
    return Analyzer(config).analyze(program)
