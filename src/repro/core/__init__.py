"""The IOLB algorithms: K-partition bounds, wavefront bounds, decomposition.

Public entry point: :func:`derive_bounds`.
"""

from .bounds import IOBoundResult, S_SYMBOL, SubBound, asymptotic_leading, evaluate
from .brascamp_lieb import ExponentSolution, rank_constraints, solve_exponents
from .decomposition import combine_sub_q, may_spill_interferes, remove_may_spill
from .interference import coeff_interf, path_source_set, paths_independent
from .iolb import derive_bounds
from .kpartition import sub_param_q_by_partition
from .oi import (
    Classification,
    OIReport,
    PAPER_CACHE_WORDS,
    PAPER_MACHINE_BALANCE,
    classify,
    oi_numeric,
    oi_report,
    oi_upper_symbolic,
)
from .paths import BROADCAST, CHAIN, DFGPath, genpaths
from .wavefront import sub_param_q_by_wavefront

__all__ = [
    "BROADCAST",
    "CHAIN",
    "Classification",
    "DFGPath",
    "ExponentSolution",
    "IOBoundResult",
    "OIReport",
    "PAPER_CACHE_WORDS",
    "PAPER_MACHINE_BALANCE",
    "S_SYMBOL",
    "SubBound",
    "asymptotic_leading",
    "classify",
    "coeff_interf",
    "combine_sub_q",
    "derive_bounds",
    "evaluate",
    "genpaths",
    "may_spill_interferes",
    "oi_numeric",
    "oi_report",
    "oi_upper_symbolic",
    "path_source_set",
    "paths_independent",
    "rank_constraints",
    "remove_may_spill",
    "solve_exponents",
    "sub_param_q_by_partition",
    "sub_param_q_by_wavefront",
]
