"""K-partition lower bound derivation (Sec. 5, Algorithm 4).

Given a statement-centric sub-CDAG described by a set of DFG-paths all ending
at a statement ``S`` (with a common applicability domain ``D``), this module
derives the (S+T)-partitioning lower bound

    Q  >=  floor(|D| / U) * T  -  |I|

where ``U`` bounds the size of any (S+T)-bounded vertex set via the discrete
Brascamp-Lieb inequality with the summed-projection refinement of Lemma 5.2,
``T = S / (sigma - 1)`` maximises the leading term, and ``I`` is the union of
the path source sets (an over-approximation of the sub-CDAG sources, which is
the safe direction).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

import sympy

from ..ir import DFG
from ..linalg import SubspaceLattice, subspace_closure
from ..sets import Constraint, CountingError, LinExpr, ParamSet, card, card_upper
from .bounds import S_SYMBOL, SubBound, evaluate
from .brascamp_lieb import solve_exponents
from .interference import coeff_interf, path_source_set
from .paths import BROADCAST, DFGPath, genpaths

#: Cap on the number of pieces a shattered working domain may have before the
#: same-statement decomposition gives up on further rounds.
MAX_WORKING_PIECES = 16


def sub_param_q_by_partition(
    dfg: DFG,
    statement: str,
    paths: list[DFGPath],
    domain: ParamSet,
    lattice: SubspaceLattice,
    depth: int = 0,
) -> SubBound | None:
    """Algorithm 4: derive a lower bound from a path combination.

    Returns ``None`` when the combination cannot produce a non-trivial bound
    (infeasible exponents, sigma <= 1, or a domain we cannot count exactly).
    """
    if not paths:
        return None

    kernels = [path.kernel() for path in paths]
    betas = coeff_interf(dfg, paths, domain)
    solution = solve_exponents(kernels, lattice, betas)
    if solution is None:
        return None
    sigma = solution.sigma
    if sigma <= 1:
        return None

    # T = S / (sigma - 1);  K = S + T = S * sigma / (sigma - 1).
    sigma_expr = sympy.Rational(sigma.numerator, sigma.denominator)
    t_expr = S_SYMBOL / (sigma_expr - 1)
    k_expr = S_SYMBOL + t_expr

    # U = prod_j ( K * s_j / (beta_j * sigma) )^{s_j}   (Lemma 5.2)
    u_expr = sympy.Integer(1)
    for s_j, beta_j in zip(solution.exponents, betas):
        if s_j == 0:
            continue
        s_rat = sympy.Rational(s_j.numerator, s_j.denominator)
        beta_rat = sympy.Rational(beta_j.numerator, beta_j.denominator)
        u_expr *= (k_expr * s_rat / (beta_rat * sigma_expr)) ** s_rat
    u_expr = sympy.powsimp(u_expr, force=True)

    try:
        domain_card = card(domain)
    except CountingError:
        return None
    source_cards = sympy.Integer(0)
    may_spill: dict[str, ParamSet] = {}
    _accumulate_may_spill(may_spill, statement, domain)
    for path in paths:
        source_set = path_source_set(dfg, path, domain)
        if path.source == statement:
            # Vertices of D itself are never sources of the sub-CDAG (each has
            # a predecessor along every selected path), so only the part of
            # the preimage outside D counts towards |Sources(V)|.
            source_set = source_set.subtract(domain).coalesce()
        try:
            source_cards += card_upper(source_set)
        except CountingError:
            try:
                # Fall back to the size of the whole source-node domain: a
                # larger subtraction keeps the bound valid.
                source_cards += _node_domain_card(dfg, path.source)
            except CountingError:
                return None
        for node, function in path.intermediate_functions:
            if node not in dfg.program.statements:
                continue
            space = dfg.program.statement(node).space
            _accumulate_may_spill(may_spill, node, function.image_of(domain, space))

    q_full = sympy.Max(
        sympy.floor(domain_card / u_expr) * t_expr - source_cards, sympy.Integer(0)
    )
    q_smooth = sympy.expand((domain_card / u_expr - 1) * t_expr - source_cards)

    notes = (
        f"paths={[p.describe() for p in paths]}, "
        f"s={[str(s) for s in solution.exponents]}, beta={[str(b) for b in betas]}, "
        f"sigma={sigma}, T={t_expr}, U={u_expr}"
    )
    return SubBound(
        expression=q_full,
        smooth=q_smooth,
        may_spill=may_spill,
        method="kpartition",
        statement=statement,
        depth=depth,
        notes=notes,
    )


def statement_partition_bounds(
    dfg: DFG,
    statement: str,
    instance: Mapping[str, int],
    gamma: float,
    max_rounds: int = 1,
    log: list[str] | None = None,
) -> list[SubBound]:
    """All K-partition sub-bounds of one statement — one pipeline task.

    This is the per-statement body of Algorithm 6 (lines 9-18) plus the
    Sec. 4.2 same-statement decomposition: derive a bound, remove its
    may-spill region from the working domain, and look for another sub-CDAG,
    up to ``max_rounds`` times.  Rounds are inherently sequential (each
    works on what the previous one left uncovered), so they stay inside one
    task; different *statements* are independent and are scheduled as
    separate tasks by the planner.
    """
    program = dfg.program
    sub_bounds: list[SubBound] = []
    working = program.statement(statement).domain
    for round_index in range(max_rounds):
        bound = derive_partition_bound(dfg, statement, working, instance, gamma)
        if bound is None:
            break
        sub_bounds.append(bound)
        if log is not None:
            log.append(
                f"kpartition[{statement} round {round_index}]: "
                f"{bound.smooth} ({bound.notes})"
            )
        if round_index + 1 >= max_rounds:
            break
        spill = bound.may_spill.get(statement)
        if spill is None:
            break
        # Pieces that are only non-empty for degenerate (tiny) parameter
        # values are dropped: this is pure search-space pruning and keeps
        # the later rounds focused on genuinely uncovered regions.
        context = large_parameter_context(program.params)
        working = working.subtract(spill).coalesce(context)
        if (
            working.is_obviously_empty()
            or len(working.pieces) > MAX_WORKING_PIECES
            or working.is_empty(context)
        ):
            break
    return sub_bounds


def derive_partition_bound(
    dfg: DFG,
    statement: str,
    working_domain: ParamSet,
    instance: Mapping[str, int],
    gamma: float,
) -> SubBound | None:
    """One round of the per-statement search: paths -> lattice -> Alg. 4."""
    domain_size = instance_card(working_domain, instance)
    if domain_size is not None and domain_size < 1:
        return None

    paths = genpaths(dfg, statement, restrict_domain=working_domain)
    if not paths:
        return None

    ambient = dfg.program.statement(statement).space.dim
    lattice = SubspaceLattice(ambient)
    accepted = []
    current_domain = working_domain.intersect(dfg.program.statement(statement).domain)
    for path in paths:
        restricted = current_domain.intersect(path.domain)
        if domain_size is not None:
            restricted_size = instance_card(restricted, instance)
            if restricted_size is not None and restricted_size < gamma * domain_size:
                continue
        kernel = path.kernel()
        if kernel.is_zero():
            continue
        lattice, changed = subspace_closure(lattice, kernel)
        if not changed:
            continue
        accepted.append(path)
        current_domain = restricted

    if not accepted:
        return None
    return sub_param_q_by_partition(
        dfg, statement, accepted, current_domain, lattice, depth=0
    )


def large_parameter_context(params: Iterable[str], minimum: int = 4) -> list[Constraint]:
    """Context constraints ``param >= minimum`` encoding the large-parameter regime."""
    return [Constraint(LinExpr({p: 1}, -minimum)) for p in params]


def instance_card(domain: ParamSet, instance: Mapping[str, int]) -> float | None:
    """Cardinality of a domain at the heuristic instance (None when unknown)."""
    try:
        expr = card(domain)
    except CountingError:
        return None
    try:
        return evaluate(expr, instance)
    except (TypeError, ValueError):
        return None


def _accumulate_may_spill(
    may_spill: dict[str, ParamSet], node: str, addition: ParamSet
) -> None:
    if node in may_spill:
        may_spill[node] = may_spill[node].union(addition)
    else:
        may_spill[node] = addition


def _node_domain_card(dfg: DFG, node: str) -> sympy.Expr:
    """Cardinality of a DFG node's full domain (raises CountingError on failure)."""
    if node in dfg.program.statements:
        domain = dfg.program.statement(node).domain
    else:
        domain = dfg.program.array(node).domain
    return card(domain)


def path_kind_summary(paths: list[DFGPath]) -> str:
    """Human-readable one-liner describing a path combination."""
    broadcasts = sum(1 for p in paths if p.kind == BROADCAST)
    chains = len(paths) - broadcasts
    return f"{len(paths)} paths ({broadcasts} broadcast, {chains} chain)"
