"""K-partition lower bound derivation (Sec. 5, Algorithm 4).

Given a statement-centric sub-CDAG described by a set of DFG-paths all ending
at a statement ``S`` (with a common applicability domain ``D``), this module
derives the (S+T)-partitioning lower bound

    Q  >=  floor(|D| / U) * T  -  |I|

where ``U`` bounds the size of any (S+T)-bounded vertex set via the discrete
Brascamp-Lieb inequality with the summed-projection refinement of Lemma 5.2,
``T = S / (sigma - 1)`` maximises the leading term, and ``I`` is the union of
the path source sets (an over-approximation of the sub-CDAG sources, which is
the safe direction).
"""

from __future__ import annotations

from fractions import Fraction

import sympy

from ..ir import DFG
from ..linalg import SubspaceLattice
from ..sets import CountingError, ParamSet, card, card_upper
from .bounds import S_SYMBOL, SubBound
from .brascamp_lieb import solve_exponents
from .interference import coeff_interf, path_source_set
from .paths import BROADCAST, DFGPath


def sub_param_q_by_partition(
    dfg: DFG,
    statement: str,
    paths: list[DFGPath],
    domain: ParamSet,
    lattice: SubspaceLattice,
    depth: int = 0,
) -> SubBound | None:
    """Algorithm 4: derive a lower bound from a path combination.

    Returns ``None`` when the combination cannot produce a non-trivial bound
    (infeasible exponents, sigma <= 1, or a domain we cannot count exactly).
    """
    if not paths:
        return None

    kernels = [path.kernel() for path in paths]
    betas = coeff_interf(dfg, paths, domain)
    solution = solve_exponents(kernels, lattice, betas)
    if solution is None:
        return None
    sigma = solution.sigma
    if sigma <= 1:
        return None

    # T = S / (sigma - 1);  K = S + T = S * sigma / (sigma - 1).
    sigma_expr = sympy.Rational(sigma.numerator, sigma.denominator)
    t_expr = S_SYMBOL / (sigma_expr - 1)
    k_expr = S_SYMBOL + t_expr

    # U = prod_j ( K * s_j / (beta_j * sigma) )^{s_j}   (Lemma 5.2)
    u_expr = sympy.Integer(1)
    for s_j, beta_j in zip(solution.exponents, betas):
        if s_j == 0:
            continue
        s_rat = sympy.Rational(s_j.numerator, s_j.denominator)
        beta_rat = sympy.Rational(beta_j.numerator, beta_j.denominator)
        u_expr *= (k_expr * s_rat / (beta_rat * sigma_expr)) ** s_rat
    u_expr = sympy.powsimp(u_expr, force=True)

    try:
        domain_card = card(domain)
    except CountingError:
        return None
    source_cards = sympy.Integer(0)
    may_spill: dict[str, ParamSet] = {}
    _accumulate_may_spill(may_spill, statement, domain)
    for path in paths:
        source_set = path_source_set(dfg, path, domain)
        if path.source == statement:
            # Vertices of D itself are never sources of the sub-CDAG (each has
            # a predecessor along every selected path), so only the part of
            # the preimage outside D counts towards |Sources(V)|.
            source_set = source_set.subtract(domain).coalesce()
        try:
            source_cards += card_upper(source_set)
        except CountingError:
            try:
                # Fall back to the size of the whole source-node domain: a
                # larger subtraction keeps the bound valid.
                source_cards += _node_domain_card(dfg, path.source)
            except CountingError:
                return None
        for node, function in path.intermediate_functions:
            if node not in dfg.program.statements:
                continue
            space = dfg.program.statement(node).space
            _accumulate_may_spill(may_spill, node, function.image_of(domain, space))

    q_full = sympy.Max(
        sympy.floor(domain_card / u_expr) * t_expr - source_cards, sympy.Integer(0)
    )
    q_smooth = sympy.expand((domain_card / u_expr - 1) * t_expr - source_cards)

    notes = (
        f"paths={[p.describe() for p in paths]}, "
        f"s={[str(s) for s in solution.exponents]}, beta={[str(b) for b in betas]}, "
        f"sigma={sigma}, T={t_expr}, U={u_expr}"
    )
    return SubBound(
        expression=q_full,
        smooth=q_smooth,
        may_spill=may_spill,
        method="kpartition",
        statement=statement,
        depth=depth,
        notes=notes,
    )


def _accumulate_may_spill(
    may_spill: dict[str, ParamSet], node: str, addition: ParamSet
) -> None:
    if node in may_spill:
        may_spill[node] = may_spill[node].union(addition)
    else:
        may_spill[node] = addition


def _node_domain_card(dfg: DFG, node: str) -> sympy.Expr:
    """Cardinality of a DFG node's full domain (raises CountingError on failure)."""
    if node in dfg.program.statements:
        domain = dfg.program.statement(node).domain
    else:
        domain = dfg.program.array(node).domain
    return card(domain)


def path_kind_summary(paths: list[DFGPath]) -> str:
    """Human-readable one-liner describing a path combination."""
    broadcasts = sum(1 for p in paths if p.kind == BROADCAST)
    chains = len(paths) - broadcasts
    return f"{len(paths)} paths ({broadcasts} broadcast, {chains} chain)"
