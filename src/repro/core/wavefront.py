"""Wavefront lower bound derivation (Sec. 6, Corollary 6.3, Algorithm 5).

The wavefront argument applies when two consecutive "slices" of a statement's
iteration space (two successive values of an outer loop index) are linked by

* ``m`` vertex-disjoint paths from slice ``Omega`` to slice ``Omega + 1``
  (typically the point-wise self-dependence ``S[Omega, x] -> S[Omega+1, x]``),
  and
* complete reachability: every vertex of slice ``Omega + 1`` is reachable from
  every vertex of slice ``Omega`` (typically through a reduction into a scalar
  that is then broadcast to the whole next slice).

Then any schedule has a wavefront of at least ``m`` live values, hence
``Q >= m - S`` for that slice pair; summing over the outer loop (Sec. 4.3)
gives bounds such as ``(M-1)(N-S)`` for Example 2 and the ``adi``/``durbin``
bounds of Table 2.

The paper's Algorithm 5 establishes the completeness hypothesis symbolically
with ISL relation algebra (including transitive closures).  This reproduction
does the same: the structural detector (a bottleneck statement whose value is
broadcast to the whole next slice) is combined with a *symbolic* validation of
the hypothesis on :mod:`repro.rel` affine relations built from the DFG —
every point of slice ``Omega + 1`` provably reachable from every point of
slice ``Omega``, for every ``Omega`` and every parameter value, via a
certified (under-approximated) transitive closure.  The historical
concrete-CDAG validation (DESIGN.md, deviation 3 — retired) is kept as a
differential oracle behind ``validation="concrete"``.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx
import sympy

from ..ir import CDAG, DFG
from ..rel import AffineRelation, ReachabilityResult, get_backend, in_name, out_name
from ..sets import Constraint, CountingError, EQ, LinExpr, ParamSet, card, lin_to_sympy, sym
from .bounds import S_SYMBOL, SubBound
from .paths import CHAIN, genpaths

OMEGA_PREFIX = "Omega"

#: Recognised values of the ``validation`` knob.
VALIDATION_MODES = ("symbolic", "concrete")


def wavefront_depths(dims: tuple[str, ...], max_depth: int) -> list[int]:
    """Parametrisation depths at which a wavefront derivation can apply.

    A depth is admissible when the statement keeps at least one inner
    dimension after slicing (``len(dims) > depth``).  This is the plan-time
    applicability test of the task pipeline: each returned depth becomes one
    independent :class:`~repro.analysis.plan.DerivationTask`, and
    :func:`sub_param_q_by_wavefront` is the corresponding task body.
    """
    return [depth for depth in range(1, max_depth + 1) if len(dims) > depth]


def sub_param_q_by_wavefront(
    dfg: DFG,
    statement: str,
    depth: int = 1,
    validation_instance: Mapping[str, int] | None = None,
    validate: bool = True,
    validation: str = "symbolic",
) -> SubBound | None:
    """Derive a wavefront bound for ``statement`` parametrised at loop ``depth``.

    ``validation`` selects how the complete-reachability hypothesis of
    Cor. 6.3 is checked: ``"symbolic"`` (default) decides it on affine
    relations built from the DFG — instance-independent and faithful to
    Algorithm 5 — while ``"concrete"`` expands a small CDAG at
    ``validation_instance`` and checks it by graph search (the historical
    deviation-3 oracle).  Returns ``None`` when the structural pattern is
    absent or when the validation fails.
    """
    if validation not in VALIDATION_MODES:
        raise ValueError(
            f"unknown wavefront validation mode {validation!r}; expected one of "
            f"{VALIDATION_MODES}"
        )
    program = dfg.program
    stmt = program.statement(statement)
    dims = stmt.dims
    if len(dims) <= depth or depth < 1:
        return None
    slice_dim = dims[depth - 1]
    inner_dims = dims[depth:]

    # 1. A point-wise chain circuit stepping +1 along the sliced dimension
    #    provides the vertex-disjoint paths L_j of Corollary 6.3.
    chain = _find_unit_chain(dfg, statement, dims, depth)
    if chain is None:
        return None

    # 2. A broadcast bottleneck: an edge into `statement` whose read function
    #    ignores every inner dimension (all instances of a slice read the same
    #    producer instance), coming from another statement.
    if not _has_broadcast_bottleneck(dfg, statement, inner_dims):
        return None

    # 3. Validate the complete-reachability hypothesis.
    certificate = None
    if validate:
        if validation == "symbolic":
            certificate = _validate_reachability_symbolic(dfg, statement, depth)
            if not certificate.holds:
                return None
        else:
            instance = validation_instance or {p: 4 for p in program.params}
            if not _validate_reachability_concrete(dfg, statement, depth, instance):
                return None

    # 4. Parametric bound: for each value Omega of the sliced dimension,
    #    Q(G|V_Omega) >= |slice(Omega)| - S ; sum over the admissible Omegas.
    omega = f"{OMEGA_PREFIX}{depth}"
    slice_domain = stmt.domain.fix_dim(slice_dim, LinExpr.var(omega))
    try:
        slice_card = card(slice_domain)
    except CountingError:
        return None

    bounds = _omega_range(stmt.domain, slice_dim)
    if bounds is None:
        return None
    low_expr, high_expr = bounds
    omega_symbol = sym(omega)
    per_slice = slice_card - S_SYMBOL
    # Slices are counted from the second iteration onwards (the first has no
    # predecessor slice), mirroring the (M-1)(N-S) shape of Example 2.
    total = sympy.summation(per_slice, (omega_symbol, lin_to_sympy(low_expr) + 1, lin_to_sympy(high_expr)))
    total = sympy.expand(total)

    may_spill = {statement: stmt.domain}
    notes = f"wavefront over {slice_dim}, chain {chain.describe()}"
    if certificate is not None:
        closure_kind = "exact" if certificate.exact else "approximated"
        notes += f", symbolic validation ({closure_kind} closure)"
    return SubBound(
        expression=sympy.Max(total, sympy.Integer(0)),
        smooth=total,
        may_spill=may_spill,
        method="wavefront",
        statement=statement,
        depth=depth,
        notes=notes,
    )


def _find_unit_chain(dfg: DFG, statement: str, dims: tuple[str, ...], depth: int):
    """Find a chain circuit stepping +1 in the sliced dim and 0 elsewhere."""
    for path in genpaths(dfg, statement, max_length=1):
        if path.kind != CHAIN:
            continue
        delta = path.function.translation_vector()
        forward = [-d for d in delta]
        expected = [1 if i == depth - 1 else 0 for i in range(len(dims))]
        if list(map(int, forward)) == expected:
            return path
    return None


def _has_broadcast_bottleneck(dfg: DFG, statement: str, inner_dims: tuple[str, ...]) -> bool:
    """True when some dependence into ``statement`` ignores all inner dims."""
    for dep in dfg.edges_into(statement):
        if dep.source not in dfg.program.statements:
            continue
        if dep.source == statement:
            continue
        if all(not expr.depends_on(inner_dims) for expr in dep.function.exprs):
            return True
    return False


def _omega_range(domain: ParamSet, slice_dim: str) -> tuple[LinExpr, LinExpr] | None:
    """Lower/upper bounds of the sliced dimension over the whole domain.

    Within a piece the *tightest* bound wins (max of lower bounds, min of
    upper bounds) — but only when the candidates are comparable, i.e. their
    difference is a known constant; a symbolically incomparable pair gives
    up.  Distinct pieces of a union must agree exactly on the resulting
    bounds: a disagreement would make the summation range ill-defined, so it
    returns None rather than silently picking one piece's answer.
    """
    projected = domain.project_onto([slice_dim])
    lower: LinExpr | None = None
    upper: LinExpr | None = None
    for piece in projected.pieces:
        piece_lower: LinExpr | None = None
        piece_upper: LinExpr | None = None
        for constraint in piece.constraints:
            coeff = constraint.expr.coeff(slice_dim)
            if coeff == 0:
                continue
            rest = LinExpr(
                {n: c for n, c in constraint.expr.coeffs.items() if n != slice_dim},
                constraint.expr.const,
            )
            if abs(coeff) != 1:
                return None
            if coeff > 0:
                piece_lower = _tightest(piece_lower, -rest, keep_larger=True)
            else:
                piece_upper = _tightest(piece_upper, rest, keep_larger=False)
            if piece_lower is _INCOMPARABLE or piece_upper is _INCOMPARABLE:
                return None
        if piece_lower is None or piece_upper is None:
            return None
        if lower is None:
            lower, upper = piece_lower, piece_upper
        elif lower != piece_lower or upper != piece_upper:
            return None  # cross-piece disagreement: no single summation range
    if lower is None or upper is None:
        return None
    return lower, upper


#: Sentinel returned by :func:`_tightest` for symbolically incomparable bounds.
_INCOMPARABLE = LinExpr.constant(0)


def _tightest(current: LinExpr | None, candidate: LinExpr, keep_larger: bool):
    """The tighter of two affine bounds, or ``_INCOMPARABLE``.

    Two bounds are comparable only when their difference is a constant; the
    larger one is the tighter lower bound, the smaller the tighter upper.
    """
    if current is None:
        return candidate
    difference = candidate - current
    if not difference.is_constant():
        return _INCOMPARABLE
    if (difference.const > 0) == keep_larger and difference.const != 0:
        return candidate
    return current


# -- symbolic validation (Algorithm 5) ---------------------------------------


def dfg_forward_relations(dfg: DFG) -> list[AffineRelation]:
    """Forward flow relations between statement instances of the DFG.

    Each dependence is stored in inverse (read-function) form ``sink ->
    source``; the CDAG edge relation is its inverse, restricted so that both
    endpoints lie in their statements' iteration domains (mirroring
    ``CDAG.expand``).  Array sources carry no incoming edges and therefore
    never appear on a statement-to-statement path, so they are skipped.
    """
    program = dfg.program
    relations = []
    for dep in program.dependences:
        if dep.source not in program.statements:
            continue
        sink = program.statement(dep.sink)
        source = program.statement(dep.source)
        domain = dep.domain.intersect(sink.domain)
        backward = AffineRelation.from_function(domain, dep.function, source.space)
        relations.append(backward.restrict_range(source.domain).inverse())
    return relations


def slice_step_relation(stmt_domain: ParamSet, depth: int) -> AffineRelation:
    """The universal slice-step relation of Cor. 6.3's hypothesis.

    Relates *every* point of slice ``Omega`` to *every* point of slice
    ``Omega + 1`` of the statement domain, for every ``Omega`` — exactly the
    set of pairs that must be reachable for the wavefront bound to hold.
    """
    index = depth - 1
    step = Constraint(LinExpr({out_name(index): 1, in_name(index): -1}, -1), EQ)
    return AffineRelation.universal(stmt_domain, stmt_domain).restrict([step])


def _cached_forward_relations(dfg: DFG) -> list[AffineRelation]:
    """Per-DFG memo of :func:`dfg_forward_relations`.

    The forward relations are statement- and depth-independent, but the
    wavefront strategy probes one (statement, depth) pair at a time; caching
    on the DFG instance avoids rebuilding them for every probe of the same
    derivation.
    """
    cache = getattr(dfg, "_forward_relation_cache", None)
    if cache is None:
        cache = dfg_forward_relations(dfg)
        dfg._forward_relation_cache = cache
    return cache


def _validate_reachability_symbolic(
    dfg: DFG, statement: str, depth: int, backend=None
) -> ReachabilityResult:
    """Check Cor. 6.3's hypothesis symbolically (Algorithm 5).

    Builds the forward dependence relations of the DFG, the universal
    slice-step relation of the statement, and asks the relation backend to
    certify the containment in the transitive closure.  The answer is
    instance-independent: it quantifies over all slices and all parameter
    values in the non-degenerate regime (every parameter >= 1).

    The verdict is memoised on the DFG instance, keyed by (statement, depth,
    backend name): the transitive-closure check is by far the most expensive
    step of a derivation, it is deterministic for a fixed backend, and the
    per-process DFG cache (:func:`repro.analysis.plan.dfg_for`) hands the
    same DFG to every derivation of the same program — so re-deriving under
    a different executor, strategy subset or store state (exactly what the
    differential fuzzer does all day) pays for the closure once.
    """
    resolved = backend if backend is not None else get_backend()
    cache = getattr(dfg, "_reachability_cache", None)
    if cache is None:
        cache = {}
        dfg._reachability_cache = cache
    key = (statement, depth, resolved.name)
    cached = cache.get(key)
    if cached is not None:
        return cached
    stmt = dfg.program.statement(statement)
    edges = _cached_forward_relations(dfg)
    target = slice_step_relation(stmt.domain, depth)
    context = [Constraint(LinExpr({p: 1}, -1)) for p in dfg.program.params]
    result = resolved.check_reachability(edges, target, statement, context)
    cache[key] = result
    return result


# -- concrete validation (differential oracle; DESIGN.md deviation 3) --------


def _validate_reachability_concrete(
    dfg: DFG, statement: str, depth: int, instance: Mapping[str, int]
) -> bool:
    """Check Cor. 6.3's hypothesis on a concretely expanded CDAG.

    For two consecutive slices of the statement, every vertex of the later
    slice must be reachable from every vertex of the earlier one.  Retained
    as the differential oracle for the symbolic validator: it checks one
    small instance only and scales as O(N^d) with it.
    """
    try:
        cdag = CDAG.expand(dfg.program, instance)
    except Exception:
        return False
    slice_index = depth - 1
    vertices = cdag.statement_vertices(statement)
    if not vertices:
        return False
    slice_values = sorted({point[slice_index] for _, point in vertices})
    if len(slice_values) < 2:
        return False
    checked_pairs = 0
    for earlier, later in zip(slice_values, slice_values[1:]):
        v1 = [v for v in vertices if v[1][slice_index] == earlier]
        v2 = [v for v in vertices if v[1][slice_index] == later]
        if not v1 or not v2:
            continue
        for source in v1:
            reachable = nx.descendants(cdag.graph, source)
            if not all(target in reachable for target in v2):
                return False
        checked_pairs += 1
        if checked_pairs >= 2:
            break
    return checked_pairs > 0


#: Backwards-compatible alias (pre-symbolic name of the concrete oracle).
_validate_reachability = _validate_reachability_concrete
