"""Wavefront lower bound derivation (Sec. 6, Corollary 6.3, Algorithm 5).

The wavefront argument applies when two consecutive "slices" of a statement's
iteration space (two successive values of an outer loop index) are linked by

* ``m`` vertex-disjoint paths from slice ``Omega`` to slice ``Omega + 1``
  (typically the point-wise self-dependence ``S[Omega, x] -> S[Omega+1, x]``),
  and
* complete reachability: every vertex of slice ``Omega + 1`` is reachable from
  every vertex of slice ``Omega`` (typically through a reduction into a scalar
  that is then broadcast to the whole next slice).

Then any schedule has a wavefront of at least ``m`` live values, hence
``Q >= m - S`` for that slice pair; summing over the outer loop (Sec. 4.3)
gives bounds such as ``(M-1)(N-S)`` for Example 2 and the ``adi``/``durbin``
bounds of Table 2.

The paper's Algorithm 5 establishes the completeness hypothesis symbolically
with ISL relation algebra (including transitive closures).  This reproduction
uses a *structural detector* (a bottleneck statement whose value is broadcast
to the whole next slice) combined with an *explicit validation* of the
hypothesis on small concretely-expanded CDAGs — see DESIGN.md, deviation 3.
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx
import sympy

from ..ir import CDAG, DFG
from ..sets import CountingError, LinExpr, ParamSet, card, lin_to_sympy, sym
from .bounds import S_SYMBOL, SubBound
from .paths import CHAIN, genpaths

OMEGA_PREFIX = "Omega"


def sub_param_q_by_wavefront(
    dfg: DFG,
    statement: str,
    depth: int = 1,
    validation_instance: Mapping[str, int] | None = None,
    validate: bool = True,
) -> SubBound | None:
    """Derive a wavefront bound for ``statement`` parametrised at loop ``depth``.

    Returns ``None`` when the structural pattern is absent or when the
    explicit validation of the reachability hypothesis fails.
    """
    program = dfg.program
    stmt = program.statement(statement)
    dims = stmt.dims
    if len(dims) <= depth or depth < 1:
        return None
    slice_dim = dims[depth - 1]
    inner_dims = dims[depth:]

    # 1. A point-wise chain circuit stepping +1 along the sliced dimension
    #    provides the vertex-disjoint paths L_j of Corollary 6.3.
    chain = _find_unit_chain(dfg, statement, dims, depth)
    if chain is None:
        return None

    # 2. A broadcast bottleneck: an edge into `statement` whose read function
    #    ignores every inner dimension (all instances of a slice read the same
    #    producer instance), coming from another statement.
    if not _has_broadcast_bottleneck(dfg, statement, inner_dims):
        return None

    # 3. Validate the complete-reachability hypothesis on small instances.
    if validate:
        instance = validation_instance or {p: 4 for p in program.params}
        if not _validate_reachability(dfg, statement, depth, instance):
            return None

    # 4. Parametric bound: for each value Omega of the sliced dimension,
    #    Q(G|V_Omega) >= |slice(Omega)| - S ; sum over the admissible Omegas.
    omega = f"{OMEGA_PREFIX}{depth}"
    slice_domain = stmt.domain.fix_dim(slice_dim, LinExpr.var(omega))
    try:
        slice_card = card(slice_domain)
    except CountingError:
        return None

    bounds = _omega_range(stmt.domain, slice_dim)
    if bounds is None:
        return None
    low_expr, high_expr = bounds
    omega_symbol = sym(omega)
    per_slice = slice_card - S_SYMBOL
    # Slices are counted from the second iteration onwards (the first has no
    # predecessor slice), mirroring the (M-1)(N-S) shape of Example 2.
    total = sympy.summation(per_slice, (omega_symbol, lin_to_sympy(low_expr) + 1, lin_to_sympy(high_expr)))
    total = sympy.expand(total)

    may_spill = {statement: stmt.domain}
    notes = f"wavefront over {slice_dim}, chain {chain.describe()}"
    return SubBound(
        expression=sympy.Max(total, sympy.Integer(0)),
        smooth=total,
        may_spill=may_spill,
        method="wavefront",
        statement=statement,
        depth=depth,
        notes=notes,
    )


def _find_unit_chain(dfg: DFG, statement: str, dims: tuple[str, ...], depth: int):
    """Find a chain circuit stepping +1 in the sliced dim and 0 elsewhere."""
    for path in genpaths(dfg, statement, max_length=1):
        if path.kind != CHAIN:
            continue
        delta = path.function.translation_vector()
        forward = [-d for d in delta]
        expected = [1 if i == depth - 1 else 0 for i in range(len(dims))]
        if list(map(int, forward)) == expected:
            return path
    return None


def _has_broadcast_bottleneck(dfg: DFG, statement: str, inner_dims: tuple[str, ...]) -> bool:
    """True when some dependence into ``statement`` ignores all inner dims."""
    for dep in dfg.edges_into(statement):
        if dep.source not in dfg.program.statements:
            continue
        if dep.source == statement:
            continue
        if all(not expr.depends_on(inner_dims) for expr in dep.function.exprs):
            return True
    return False


def _omega_range(domain: ParamSet, slice_dim: str) -> tuple[LinExpr, LinExpr] | None:
    """Lower/upper bounds of the sliced dimension over the whole domain."""
    projected = domain.project_onto([slice_dim])
    lower: LinExpr | None = None
    upper: LinExpr | None = None
    for piece in projected.pieces:
        for constraint in piece.constraints:
            coeff = constraint.expr.coeff(slice_dim)
            if coeff == 0:
                continue
            rest = LinExpr(
                {n: c for n, c in constraint.expr.coeffs.items() if n != slice_dim},
                constraint.expr.const,
            )
            if abs(coeff) != 1:
                return None
            if coeff > 0:
                lower = -rest if lower is None else lower
            else:
                upper = rest if upper is None else upper
    if lower is None or upper is None:
        return None
    return lower, upper


def _validate_reachability(
    dfg: DFG, statement: str, depth: int, instance: Mapping[str, int]
) -> bool:
    """Check Corollary 6.3's hypothesis on a concretely expanded CDAG.

    For two consecutive slices of the statement, every vertex of the later
    slice must be reachable from every vertex of the earlier one.
    """
    try:
        cdag = CDAG.expand(dfg.program, instance)
    except Exception:
        return False
    slice_index = depth - 1
    vertices = cdag.statement_vertices(statement)
    if not vertices:
        return False
    slice_values = sorted({point[slice_index] for _, point in vertices})
    if len(slice_values) < 2:
        return False
    checked_pairs = 0
    for earlier, later in zip(slice_values, slice_values[1:]):
        v1 = [v for v in vertices if v[1][slice_index] == earlier]
        v2 = [v for v in vertices if v[1][slice_index] == later]
        if not v1 or not v2:
            continue
        for source in v1:
            reachable = nx.descendants(cdag.graph, source)
            if not all(target in reachable for target in v2):
                return False
        checked_pairs += 1
        if checked_pairs >= 2:
            break
    return checked_pairs > 0
