"""Operational intensity and machine-balance analysis (Sec. 8.2, Fig. 6).

The operational intensity of a schedule is ``OI = #ops / #words moved``.
IOLB's lower bound on data movement therefore yields an *upper* bound on the
operational intensity achievable by any schedule; comparing it (and the OI
achieved by a concrete tiled schedule) with the machine balance classifies a
kernel as compute-bound, bandwidth-bound, or undecided — the three scenarios
discussed for Figure 6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Mapping

import sympy

from .bounds import IOBoundResult, evaluate

#: Machine balance used in the paper's Sec. 8.2 case study (words per cycle
#: sustained from memory vs. flops per cycle): 8 flops per word.
PAPER_MACHINE_BALANCE = 8.0

#: Fast-memory capacity used in the paper's Sec. 8.2 case study: 256 kB of
#: double-precision words.
PAPER_CACHE_WORDS = 256 * 1024 // 8


class Classification(Enum):
    """Outcome of comparing OI bounds against the machine balance."""

    COMPUTE_BOUND = "compute-bound"
    BANDWIDTH_BOUND = "bandwidth-bound"
    UNDECIDED = "undecided"


@dataclass
class OIReport:
    """Numeric OI report for one kernel at one parameter instance."""

    kernel: str
    oi_upper: float
    oi_achieved: float | None
    machine_balance: float
    classification: Classification

    def as_row(self) -> dict[str, object]:
        return {
            "kernel": self.kernel,
            "OI_up": round(self.oi_upper, 3),
            "OI_achieved": None if self.oi_achieved is None else round(self.oi_achieved, 3),
            "MB": self.machine_balance,
            "class": self.classification.value,
        }


def classify(
    oi_upper: float, oi_achieved: float | None, machine_balance: float
) -> Classification:
    """Classify a kernel following the three scenarios of Sec. 8.2.

    * achieved OI above MB: the schedule is already compute-bound;
    * upper bound below MB: no schedule can avoid being bandwidth-bound;
    * otherwise: the machine balance falls between the two — undecided,
      there may be room for improvement.
    """
    if oi_achieved is not None and oi_achieved >= machine_balance:
        return Classification.COMPUTE_BOUND
    if oi_upper < machine_balance:
        return Classification.BANDWIDTH_BOUND
    return Classification.UNDECIDED


def oi_report(
    kernel: str,
    result: IOBoundResult,
    instance: Mapping[str, int],
    oi_achieved: float | None = None,
    machine_balance: float = PAPER_MACHINE_BALANCE,
    cache_words: int = PAPER_CACHE_WORDS,
) -> OIReport:
    """Build the Figure-6 style report for one kernel at one instance."""
    values = dict(instance)
    values.setdefault("S", cache_words)
    oi_upper = result.evaluate_oi_upper(values)
    return OIReport(
        kernel=kernel,
        oi_upper=oi_upper,
        oi_achieved=oi_achieved,
        machine_balance=machine_balance,
        classification=classify(oi_upper, oi_achieved, machine_balance),
    )


def oi_upper_symbolic(result: IOBoundResult) -> sympy.Expr:
    """Parametric OI upper bound (the OI_up column of Table 1)."""
    return result.oi_upper_bound()


def oi_numeric(expr: sympy.Expr, instance: Mapping[str, int]) -> float:
    """Evaluate a symbolic OI expression at a concrete instance."""
    return evaluate(expr, instance)
