"""DFG-paths, their relations, kernels and generation (Sec. 5.1-5.2, Alg. 3).

A DFG-path ending at a statement ``S`` summarises one *reuse direction* of the
computation.  Only two kinds matter for the K-partition reasoning:

* **chain circuits** — cycles ``S -> ... -> S`` whose composed relation is a
  translation ``S[x] -> S[x + b]``; the associated geometric projection is the
  orthogonal projection along ``b`` and its kernel is ``span(b)``;
* **broadcast paths** — paths whose inverse relation is an affine function
  ``S[x] -> Src[A x + b]`` with ``A`` rank-deficient; the projection is the
  map ``A`` itself and its kernel is ``ker(A)``.

Edges are stored in inverse "read function" form (sink -> source), so the
inverse path relation is simply the composition of the edge functions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..ir import DFG, FlowDep
from ..linalg import Subspace
from ..sets import AffineFunction, ParamSet

BROADCAST = "broadcast"
CHAIN = "chain"

DEFAULT_MAX_PATHS = 64
DEFAULT_MAX_LENGTH = 4
DEFAULT_TIMEOUT_SECONDS = 10.0


@dataclass
class DFGPath:
    """A DFG-path ending at ``sink`` with composed inverse relation ``function``."""

    sink: str
    source: str
    edges: tuple[FlowDep, ...]
    function: AffineFunction            # sink coordinates -> source coordinates
    domain: ParamSet                    # sink sub-domain on which the path applies
    kind: str                           # BROADCAST or CHAIN
    intermediate_functions: tuple[tuple[str, AffineFunction], ...] = ()
    #: functions from the sink space to every intermediate statement of the
    #: path (including the source), needed for the may-spill computation.

    @property
    def length(self) -> int:
        return len(self.edges)

    def kernel(self) -> Subspace:
        """Kernel of the geometric projection attached to the path (Alg. 4, Ker)."""
        if self.kind == CHAIN:
            delta = self.function.translation_vector()
            direction = [-d for d in delta]
            if all(x == 0 for x in direction):
                raise ValueError("chain circuit with zero translation")
            return Subspace.span([direction], dim_ambient=self.function.domain_space.dim)
        return self.function.kernel()

    def preimage_of_domain(self, domain: ParamSet, source_space) -> ParamSet:
        """R_P^{-1}(D): the source instances feeding the sink sub-domain D."""
        return self.function.image_of(domain, source_space)

    def describe(self) -> str:
        chain = " <- ".join([self.sink] + [e.source for e in reversed(self.edges)])
        return f"{self.kind} path {chain}"


def _edge_is_injective(dep: FlowDep) -> bool:
    """True when the forward edge relation is injective.

    In read-function form the forward relation (source -> sink) is injective
    exactly when the read function (sink -> source) is injective, i.e. its
    linear part has a trivial kernel.
    """
    return dep.function.kernel().is_zero()


def genpaths(
    dfg: DFG,
    statement: str,
    restrict_domain: ParamSet | None = None,
    max_paths: int = DEFAULT_MAX_PATHS,
    max_length: int = DEFAULT_MAX_LENGTH,
    timeout_seconds: float = DEFAULT_TIMEOUT_SECONDS,
) -> list[DFGPath]:
    """Generate broadcast paths and chain circuits ending at ``statement`` (Alg. 3).

    The traversal is a bounded backward DFS.  A path may only be extended past
    its current source when all its current edges are injective (the paper's
    "all edges but the first are injective" condition).  Paths whose sink-side
    domain is empty are dropped.
    """
    deadline = time.monotonic() + timeout_seconds
    stmt_domain = dfg.program.statement(statement).domain
    if restrict_domain is not None:
        stmt_domain = stmt_domain.intersect(restrict_domain)
    sink_space = stmt_domain.space

    results: list[DFGPath] = []
    seen_signatures: set[tuple] = set()

    # Work items: (edges from sink backwards, composed function, domain, all_injective)
    stack: list[tuple[tuple[FlowDep, ...], AffineFunction, ParamSet, bool]] = []
    for dep in dfg.edges_into(statement):
        domain = stmt_domain.intersect(dep.domain)
        if domain.is_empty():
            continue
        stack.append(((dep,), dep.function, domain, _edge_is_injective(dep)))

    while stack:
        if time.monotonic() > deadline or len(results) >= max_paths:
            break
        edges, function, domain, all_injective = stack.pop()
        source = edges[-1].source

        classified = _classify(statement, source, function)
        if classified is not None:
            signature = (source, tuple(repr(e) for e in function.exprs), classified)
            if signature not in seen_signatures:
                seen_signatures.add(signature)
                intermediates = _intermediate_functions(edges)
                results.append(
                    DFGPath(
                        sink=statement,
                        source=source,
                        edges=edges,
                        function=function,
                        domain=domain,
                        kind=classified,
                        intermediate_functions=intermediates,
                    )
                )

        # Extend backwards past `source` if it is a statement and the current
        # path consists solely of injective edges (so they can become
        # non-first edges of a longer path).
        if len(edges) >= max_length or not all_injective:
            continue
        if source not in dfg.program.statements:
            continue
        if source == statement:
            continue  # circuits are only extended up to their first return
        for dep in dfg.edges_into(source):
            # New composed function: sink -> dep.source, by substituting the
            # current function (sink -> source) into dep.function (source -> dep.source).
            try:
                composed = dep.function.compose_after(function)
            except ValueError:
                continue
            # Restrict the sink domain to points whose image lies in the new
            # edge's applicability domain.
            source_dims = dfg.program.statement(source).dims
            preimage_constraints = []
            for piece in dep.domain.pieces:
                preimage_constraints = function.preimage_constraints(piece, source_dims)
                break
            new_domain_pieces = []
            for piece in domain.pieces:
                new_domain_pieces.append(piece.add_constraints(preimage_constraints))
            new_domain = ParamSet(domain.space, new_domain_pieces)
            if new_domain.is_empty():
                continue
            stack.append(
                (edges + (dep,), composed, new_domain,
                 all_injective and _edge_is_injective(dep))
            )

    results.sort(key=lambda p: (p.kernel().dim, p.length, p.source))
    return results


def _classify(sink: str, source: str, function: AffineFunction) -> str | None:
    """Classify a composed path relation as chain circuit, broadcast path, or neither."""
    if source == sink and function.is_translation():
        delta = function.translation_vector()
        if any(d != 0 for d in delta):
            return CHAIN
        return None
    if not function.kernel().is_zero():
        return BROADCAST
    return None


def _intermediate_functions(edges: tuple[FlowDep, ...]) -> tuple[tuple[str, AffineFunction], ...]:
    """Functions from the sink space to every statement visited along the path."""
    functions: list[tuple[str, AffineFunction]] = []
    current: AffineFunction | None = None
    for dep in edges:
        current = dep.function if current is None else dep.function.compose_after(current)
        functions.append((dep.source, current))
    return tuple(functions)
