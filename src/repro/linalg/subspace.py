"""Linear subspaces of Q^d.

The kernels of the geometric projections used in the Brascamp-Lieb reasoning
(Sec. 5.1 of the paper) are linear subspaces of the iteration space.  The
subgroup lattice of Lemma 3.12 is, in our rational setting, the closure of
those kernels under subspace sum and intersection.

A :class:`Subspace` stores a canonical basis (the reduced row echelon form of
any spanning set), so two equal subspaces compare and hash identically.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from .. import perf
from ..sets.memo import MemoCache, memo_enabled, register
from .rational import Matrix, Row, nullspace, rank, rref, to_fraction_matrix

# Sum / intersection results keyed on the (order-normalised) operand bases.
# Subspaces are immutable and canonical, so sharing result objects is safe
# and both operations are symmetric up to canonicalisation.
_PAIR_CACHE = register(MemoCache("linalg.subspace_ops"))


class Subspace:
    """A linear subspace of Q^d, canonically represented by an RREF basis."""

    __slots__ = ("dim_ambient", "basis", "_key", "_hash")

    def __init__(self, dim_ambient: int, vectors: Iterable[Sequence] = ()):
        self.dim_ambient = dim_ambient
        matrix = to_fraction_matrix(vectors)
        for row in matrix:
            if len(row) != dim_ambient:
                raise ValueError(
                    f"vector of length {len(row)} in ambient dimension {dim_ambient}"
                )
        reduced, pivots = rref(matrix)
        self.basis: tuple[Row, ...] = tuple(reduced[i] for i in range(len(pivots)))
        self._key: tuple | None = None
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def zero(cls, dim_ambient: int) -> "Subspace":
        """The trivial subspace {0}."""
        return cls(dim_ambient, ())

    @classmethod
    def full(cls, dim_ambient: int) -> "Subspace":
        """The whole ambient space Q^d."""
        vectors = []
        for i in range(dim_ambient):
            vec = [Fraction(0)] * dim_ambient
            vec[i] = Fraction(1)
            vectors.append(vec)
        return cls(dim_ambient, vectors)

    @classmethod
    def span(cls, vectors: Iterable[Sequence], dim_ambient: int | None = None) -> "Subspace":
        """Subspace spanned by the given vectors."""
        vectors = [list(v) for v in vectors]
        if dim_ambient is None:
            if not vectors:
                raise ValueError("cannot infer ambient dimension from an empty span")
            dim_ambient = len(vectors[0])
        return cls(dim_ambient, vectors)

    # -- basic queries -----------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimension (rank) of the subspace."""
        return len(self.basis)

    def is_zero(self) -> bool:
        """True for the trivial subspace."""
        return not self.basis

    def contains_vector(self, vector: Sequence) -> bool:
        """True when the vector lies in the subspace."""
        if self.is_zero():
            return all(Fraction(x) == 0 for x in vector)
        stacked = to_fraction_matrix(list(self.basis) + [list(vector)])
        return rank(stacked) == self.dim

    def contains(self, other: "Subspace") -> bool:
        """True when ``other`` is a sub-subspace of this one."""
        return all(self.contains_vector(v) for v in other.basis)

    # -- lattice operations ------------------------------------------------

    def content_key(self) -> tuple:
        """Cheap memo key: ambient dimension plus ``(numerator, denominator)``
        int pairs of the canonical basis.

        Fraction hashing computes a modular inverse per entry, so keying the
        subspace caches on the basis itself dominated cache lookups; int
        tuples hash for free.  The key is cached on the object (it is frozen
        after construction), except under ``REPRO_SETS_MEMO=0``.
        """
        key = self._key
        if key is None:
            key = (
                self.dim_ambient,
                tuple(tuple((x.numerator, x.denominator) for x in row) for row in self.basis),
            )
            if memo_enabled():
                self._key = key
        return key

    @perf.timed("linalg")
    def sum(self, other: "Subspace") -> "Subspace":
        """Subspace sum (join): span of the union of both bases (memoised)."""
        self._check_ambient(other)
        if not memo_enabled():
            return Subspace(self.dim_ambient, list(self.basis) + list(other.basis))
        ka, kb = self.content_key(), other.content_key()
        if kb < ka:
            ka, kb = kb, ka
        return _PAIR_CACHE.get_or_compute(
            ("sum", ka, kb),
            lambda: Subspace(self.dim_ambient, list(self.basis) + list(other.basis)),
        )

    @perf.timed("linalg")
    def intersection(self, other: "Subspace") -> "Subspace":
        """Subspace intersection (meet), via the Zassenhaus-style kernel trick.

        x in U cap W  <=>  x = sum a_i u_i = sum b_j w_j, i.e. the coefficient
        vector (a, b) lies in the kernel of the stacked matrix [U^T | -W^T].
        Results are memoised; both bases are canonical, so the result is one
        shared canonical object per unordered operand pair.
        """
        self._check_ambient(other)
        if not memo_enabled():
            return self._intersection_uncached(other)
        ka, kb = self.content_key(), other.content_key()
        if kb < ka:
            ka, kb = kb, ka
        return _PAIR_CACHE.get_or_compute(("cap", ka, kb), lambda: self._intersection_uncached(other))

    def _intersection_uncached(self, other: "Subspace") -> "Subspace":
        if self.is_zero() or other.is_zero():
            return Subspace.zero(self.dim_ambient)
        n = self.dim_ambient
        columns = []
        for i in range(n):
            row = [self.basis[j][i] for j in range(self.dim)]
            row += [-other.basis[j][i] for j in range(other.dim)]
            columns.append(row)
        stacked: Matrix = to_fraction_matrix(columns)
        kernel = nullspace(stacked)
        vectors = []
        for combo in kernel:
            vec = [Fraction(0)] * n
            for j in range(self.dim):
                for i in range(n):
                    vec[i] += combo[j] * self.basis[j][i]
            vectors.append(vec)
        return Subspace(self.dim_ambient, vectors)

    def projection_rank(self, kernel: "Subspace") -> int:
        """rank(phi(H)) where phi is any linear map with kernel ``kernel`` and H = self.

        By rank-nullity on the restriction of phi to H:
        rank(phi(H)) = dim(H) - dim(H cap ker(phi)).
        """
        return self.dim - self.intersection(kernel).dim

    # -- dunder ------------------------------------------------------------

    def _check_ambient(self, other: "Subspace") -> None:
        if self.dim_ambient != other.dim_ambient:
            raise ValueError("subspaces live in different ambient spaces")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subspace):
            return NotImplemented
        return self.dim_ambient == other.dim_ambient and self.basis == other.basis

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self.content_key())
            if memo_enabled():
                self._hash = h
        return h

    def __repr__(self) -> str:
        rows = ", ".join(
            "(" + ", ".join(str(x) for x in row) + ")" for row in self.basis
        )
        return f"Subspace(dim={self.dim}, ambient={self.dim_ambient}, basis=[{rows}])"
