"""Exact linear algebra over the rationals.

The Brascamp-Lieb machinery of IOLB (Sec. 3.3 and Lemma 3.12 of the paper)
needs exact ranks, null spaces and subspace arithmetic for the kernels of the
geometric projections attached to DFG-paths.  Floating point is not an option
(a rank decision changes the derived bound), so everything here works with
``fractions.Fraction``.

Matrices are represented as tuples of tuples of ``Fraction`` — immutable and
hashable, which makes them usable as dictionary keys and safe to share.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Iterable, Sequence

from .. import perf
from ..sets.memo import MemoCache, memo_enabled, register

Row = tuple[Fraction, ...]
Matrix = tuple[Row, ...]

_ZERO = Fraction(0)

# Shared immutable Fraction objects for small integers: the fraction-free
# RREF converts ~10^6 integer entries back to Fractions per suite run, and
# almost all of them are small.
_SMALL_RANGE = 128
_SMALL_FRACTIONS = tuple(Fraction(i - _SMALL_RANGE) for i in range(2 * _SMALL_RANGE + 1))

# Matrices are immutable and hashable, so RREF / nullspace results are
# memoised under the matrix itself (see repro.sets.memo for the key
# discipline; REPRO_SETS_MEMO=0 disables these caches too).
_RREF_CACHE = register(MemoCache("linalg.rref"))
_NULLSPACE_CACHE = register(MemoCache("linalg.nullspace"))


def to_fraction_matrix(rows: Iterable[Sequence]) -> Matrix:
    """Normalise an iterable of numeric rows into an immutable Fraction matrix."""
    out = []
    width = None
    for row in rows:
        frow = tuple(x if type(x) is Fraction else Fraction(x) for x in row)
        if width is None:
            width = len(frow)
        elif len(frow) != width:
            raise ValueError("ragged matrix: rows have different lengths")
        out.append(frow)
    return tuple(out)


def zeros(n_rows: int, n_cols: int) -> Matrix:
    """Return an ``n_rows`` x ``n_cols`` zero matrix."""
    return tuple(tuple(Fraction(0) for _ in range(n_cols)) for _ in range(n_rows))


def identity(n: int) -> Matrix:
    """Return the ``n`` x ``n`` identity matrix."""
    return tuple(
        tuple(Fraction(1) if i == j else Fraction(0) for j in range(n)) for i in range(n)
    )


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Exact matrix product ``a @ b``."""
    if a and b and len(a[0]) != len(b):
        raise ValueError("dimension mismatch in matrix product")
    if not b:
        return tuple(tuple() for _ in a)
    n_cols = len(b[0])
    return tuple(
        tuple(sum((a[i][k] * b[k][j] for k in range(len(b))), Fraction(0)) for j in range(n_cols))
        for i in range(len(a))
    )


def mat_vec(a: Matrix, v: Sequence) -> Row:
    """Exact matrix-vector product."""
    vf = tuple(Fraction(x) for x in v)
    if a and len(a[0]) != len(vf):
        raise ValueError("dimension mismatch in matrix-vector product")
    return tuple(sum((row[k] * vf[k] for k in range(len(vf))), Fraction(0)) for row in a)


def transpose(a: Matrix) -> Matrix:
    """Matrix transpose."""
    if not a:
        return tuple()
    return tuple(tuple(a[i][j] for i in range(len(a))) for j in range(len(a[0])))


def _matrix_key(a: Matrix) -> tuple:
    """Cheap memo key: ``(numerator, denominator)`` int pairs.

    Keying on the Fraction matrix itself would pay ``Fraction.__hash__`` —
    a modular inverse — per entry per lookup; int tuples hash for free.
    """
    return tuple(tuple((x.numerator, x.denominator) for x in row) for row in a)


@perf.timed("linalg")
def rref(a: Matrix) -> tuple[Matrix, list[int]]:
    """Reduced row echelon form (memoised).

    Returns the reduced matrix together with the list of pivot column indices.
    """
    if not memo_enabled():
        reduced, pivots = _rref_uncached(a)
        return reduced, list(pivots)
    reduced, pivots = _RREF_CACHE.get_or_compute(_matrix_key(a), lambda: _rref_uncached(a))
    return reduced, list(pivots)


def _fraction_free_enabled() -> bool:
    from ..sets.backend import get_backend

    return getattr(get_backend(), "fraction_free_rref", False)


def _rref_uncached(a: Matrix) -> tuple[Matrix, tuple[int, ...]]:
    if not a:
        return tuple(), ()
    if _fraction_free_enabled():
        return _rref_fraction_free(a)
    return _rref_reference(a)


def _rref_reference(a: Matrix) -> tuple[Matrix, tuple[int, ...]]:
    """Textbook Gauss-Jordan over ``Fraction`` — the semantic reference."""
    rows = [list(r) for r in a]
    n_rows, n_cols = len(rows), len(rows[0])
    pivots: list[int] = []
    r = 0
    for c in range(n_cols):
        if r >= n_rows:
            break
        pivot_row = None
        for i in range(r, n_rows):
            if rows[i][c] != 0:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        pivot_val = rows[r][c]
        rows[r] = [x / pivot_val for x in rows[r]]
        for i in range(n_rows):
            if i != r and rows[i][c] != 0:
                factor = rows[i][c]
                rows[i] = [rows[i][j] - factor * rows[r][j] for j in range(n_cols)]
        pivots.append(c)
        r += 1
    return tuple(tuple(row) for row in rows), tuple(pivots)


def _rref_fraction_free(a: Matrix) -> tuple[Matrix, tuple[int, ...]]:
    # The RREF of a matrix is invariant under scaling rows by non-zero
    # constants (the row space and row count are unchanged), so every input
    # can be reduced over the integers: clear each row's denominators, run
    # fraction-free Gauss-Jordan on machine/big ints — far cheaper than
    # Fraction arithmetic, which pays a gcd per operation — and divide by
    # the pivot only when converting the result back to Fractions.
    rows: list[list[int]] = []
    for row in a:
        den = 1
        for x in row:
            den = lcm(den, x.denominator)
        rows.append([x.numerator * (den // x.denominator) for x in row])
    n_rows, n_cols = len(rows), len(rows[0])
    pivots: list[int] = []
    r = 0
    for c in range(n_cols):
        if r >= n_rows:
            break
        pivot_row = None
        for i in range(r, n_rows):
            if rows[i][c]:
                pivot_row = i
                break
        if pivot_row is None:
            continue
        rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
        prow = rows[r]
        pivot_val = prow[c]
        for i in range(n_rows):
            if i != r and rows[i][c]:
                factor = rows[i][c]
                combined = [x * pivot_val - factor * y for x, y in zip(rows[i], prow)]
                g = gcd(*combined)
                rows[i] = [x // g for x in combined] if g > 1 else combined
        pivots.append(c)
        r += 1
    reduced = []
    for i, row in enumerate(rows):
        if i < len(pivots):
            pivot_val = row[pivots[i]]
            if pivot_val == 1:
                # Integer entries: use the shared small-Fraction table.
                reduced.append(
                    tuple(
                        _SMALL_FRACTIONS[x + _SMALL_RANGE]
                        if -_SMALL_RANGE <= x <= _SMALL_RANGE
                        else Fraction(x)
                        for x in row
                    )
                )
            else:
                reduced.append(tuple(Fraction(x, pivot_val) for x in row))
        else:
            # Non-pivot rows are identically zero: they are zero at every
            # pivot column (eliminated) and at every skipped column (all
            # candidate rows were zero there when the column was skipped,
            # and row combinations preserve that).
            reduced.append(tuple(_ZERO for _ in row))
    return tuple(reduced), tuple(pivots)


def rank(a: Matrix) -> int:
    """Rank of the matrix over Q."""
    _, pivots = rref(a)
    return len(pivots)


@perf.timed("linalg")
def nullspace(a: Matrix) -> list[Row]:
    """Basis of the right null space {x : a @ x = 0} over Q (memoised).

    Returns a (possibly empty) list of basis vectors.
    """
    if not memo_enabled():
        return _nullspace_uncached(a)
    return list(
        _NULLSPACE_CACHE.get_or_compute(_matrix_key(a), lambda: tuple(_nullspace_uncached(a)))
    )


def _nullspace_uncached(a: Matrix) -> list[Row]:
    if not a:
        return []
    n_cols = len(a[0])
    reduced, pivots = rref(a)
    free_cols = [c for c in range(n_cols) if c not in pivots]
    basis: list[Row] = []
    for free in free_cols:
        vec = [Fraction(0)] * n_cols
        vec[free] = Fraction(1)
        for row_idx, pivot_col in enumerate(pivots):
            vec[pivot_col] = -reduced[row_idx][free]
        basis.append(tuple(vec))
    return basis


def row_space_basis(a: Matrix) -> list[Row]:
    """Basis of the row space of the matrix (the non-zero rows of its RREF)."""
    reduced, pivots = rref(a)
    return [reduced[i] for i in range(len(pivots))]


def solve(a: Matrix, b: Sequence) -> Row | None:
    """Solve ``a @ x = b`` exactly.  Returns one solution or None if inconsistent."""
    if not a:
        return tuple() if all(Fraction(x) == 0 for x in b) else None
    n_cols = len(a[0])
    bf = [Fraction(x) for x in b]
    augmented = tuple(tuple(list(a[i]) + [bf[i]]) for i in range(len(a)))
    reduced, pivots = rref(augmented)
    # Inconsistent if a pivot landed in the augmented column.
    if n_cols in pivots:
        return None
    x = [Fraction(0)] * n_cols
    for row_idx, pivot_col in enumerate(pivots):
        x[pivot_col] = reduced[row_idx][n_cols]
    return tuple(x)


def is_integer_matrix(a: Matrix) -> bool:
    """True when every entry is an integer."""
    return all(entry.denominator == 1 for row in a for entry in row)


def lcm_of_denominators(values: Iterable[Fraction]) -> int:
    """Least common multiple of denominators, used to clear fractions."""
    from math import lcm

    result = 1
    for value in values:
        result = lcm(result, Fraction(value).denominator)
    return result
