"""Exact rational linear algebra: matrices, subspaces and subspace lattices.

This subpackage is the numerical backbone of the Brascamp-Lieb reasoning in
:mod:`repro.core`: ranks and kernels of projection maps must be computed
exactly, so everything is done over ``fractions.Fraction``.
"""

from .lattice import SubspaceLattice, build_lattice, subspace_closure
from .rational import (
    Matrix,
    Row,
    identity,
    is_integer_matrix,
    mat_mul,
    mat_vec,
    nullspace,
    rank,
    row_space_basis,
    rref,
    solve,
    to_fraction_matrix,
    transpose,
    zeros,
)
from .subspace import Subspace

__all__ = [
    "Matrix",
    "Row",
    "Subspace",
    "SubspaceLattice",
    "build_lattice",
    "identity",
    "is_integer_matrix",
    "mat_mul",
    "mat_vec",
    "nullspace",
    "rank",
    "row_space_basis",
    "rref",
    "solve",
    "subspace_closure",
    "to_fraction_matrix",
    "transpose",
    "zeros",
]
