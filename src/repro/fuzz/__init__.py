"""repro.fuzz — differential fuzzing of the bound-derivation pipeline.

The subsystem industrializes the bug-finding loop that PR 2 (counting vs
enumeration) and PR 3 (symbolic vs concrete reachability) ran by hand: a
seeded generator mass-produces random affine programs, a set of pluggable
*differential oracles* checks each one against an independent ground truth,
and a campaign runner fans the cases through the streaming scheduler,
shrinks every failure to a minimal reproduction and records it in a
replayable JSON crash corpus.

* :mod:`~repro.fuzz.generator` — deterministic ``(seed, profile)`` →
  :class:`~repro.ir.program.AffineProgram` generation (the tests/rel
  generator, promoted and generalized) plus the program-surgery operators
  the shrinker uses;
* :mod:`~repro.fuzz.oracles` — the oracle registry and the five built-in
  differentials (executors, backends, store, sandwich, counting);
* :mod:`~repro.fuzz.runner` — campaigns, shrinking, corpus, replay;
* ``python -m repro fuzz`` — the CLI front-end.
"""

from .generator import (
    DEP_POOL_SMALL,
    PROFILES,
    FuzzProfile,
    apply_reduction,
    case_program,
    delete_dependence,
    delete_dimension,
    delete_statement,
    fingerprint_for,
    profile_from_dict,
    profile_to_dict,
    random_program,
    resolve_profile,
)
from .oracles import (
    OracleContext,
    OracleVerdict,
    get_oracle,
    oracle_names,
    register_oracle,
    run_oracle,
)
from .runner import (
    CORPUS_KIND,
    CORPUS_SCHEMA,
    CampaignFailure,
    CampaignResult,
    ReplayOutcome,
    load_corpus_entry,
    replay_entry,
    run_campaign,
    shrink_case,
    write_corpus_entry,
)

__all__ = [
    "CORPUS_KIND",
    "CORPUS_SCHEMA",
    "CampaignFailure",
    "CampaignResult",
    "DEP_POOL_SMALL",
    "FuzzProfile",
    "OracleContext",
    "OracleVerdict",
    "PROFILES",
    "ReplayOutcome",
    "apply_reduction",
    "case_program",
    "delete_dependence",
    "delete_dimension",
    "delete_statement",
    "fingerprint_for",
    "get_oracle",
    "load_corpus_entry",
    "oracle_names",
    "profile_from_dict",
    "profile_to_dict",
    "random_program",
    "register_oracle",
    "replay_entry",
    "resolve_profile",
    "run_campaign",
    "run_oracle",
    "shrink_case",
    "write_corpus_entry",
]
