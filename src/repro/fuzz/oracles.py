"""Differential oracles: what a fuzz case is checked *against*.

An oracle is a function ``(program, OracleContext) -> OracleVerdict`` that
compares two independent ways of computing the same fact and reports any
divergence.  Each built-in oracle encodes one soundness argument of the
system (see DESIGN.md, "Oracle soundness"):

``executors``
    One derivation, three executors.  The plan → execute → combine split
    promises byte-identical bounds regardless of how tasks are fanned out;
    the oracle derives under ``serial``, ``thread`` and ``process`` and
    compares the canonical JSON of the results byte for byte.
``backends``
    The ``repro.rel`` reachability decision procedure, cross-checked.  The
    pure-Python backend (and islpy when installed) answer the Cor. 6.3
    wavefront hypothesis for every statement the derivation pipeline would
    actually query (chain + broadcast pattern present — closures for
    never-asked questions would dominate the campaign without guarding any
    bound); any two *exact* answers must agree, and every
    ``holds=True`` certificate is confirmed against brute-force graph search
    on tiny expanded CDAGs — a symbolic "yes" that a concrete instance
    refutes is a false accept, the exact bug class PR 3 fixed.
``store``
    Cold vs warm ``BoundStore``.  A warm re-analysis must be served entirely
    from the store (no misses) and reproduce the cold bound byte for byte —
    persistence must never change a bound.
``sandwich``
    Lower bound vs simulated upper bound (the PR 6 tightness sandwich).  For
    every strategy subset (kpartition only / wavefront only / both), the
    evaluated parametric lower bound at a tiny instance must not exceed the
    load count of a *legal* simulated schedule at the same cache size — a
    violation is a proof of unsoundness, since any simulated schedule is an
    upper bound on optimal I/O.  Belady ≤ LRU is checked as a freebie.
``counting``
    Symbolic counting vs brute-force enumeration.  ``card`` over each
    statement domain, ``input_size`` and ``total_flops`` are evaluated at
    tiny instances and compared with exhaustive CDAG expansion — the
    differential that caught a real `sets/counting.py` bug in PR 2.  The
    oracle also runs **both count backends** (the native Faulhaber engine
    and the sympy reference, ``REPRO_COUNT_BACKEND``) over every statement
    domain and asserts the two closed forms are *identical* sympy
    expressions, so every fuzz campaign continuously exercises the native
    engine against its reference.

Oracles are registered by name (:func:`register_oracle`) so test suites and
downstream code can plug in their own; :func:`run_oracle` wraps execution so
that an unexpected exception inside the system under test is itself reported
as a divergence (``kind="crash"``) instead of killing the campaign.
"""

from __future__ import annotations

import json
import tempfile
import traceback
import warnings
from dataclasses import dataclass
from typing import Callable

from repro.analysis import AnalysisConfig, BoundStore, run_analysis
from repro.analysis.analyzer import Analyzer
from repro.analysis.plan import dfg_for
from repro.core.bounds import evaluate
from repro.core.wavefront import (
    _find_unit_chain,
    _has_broadcast_bottleneck,
    _validate_reachability_concrete,
    _validate_reachability_symbolic,
)
from repro.ir.cdag import CDAG
from repro.ir.program import AffineProgram
from repro.pebble import TilingFallbackWarning, lexicographic_schedule, simulate_schedule
from repro.rel.backend import IslBackend, PurePythonBackend, islpy_available
from repro.sets.counting import CountingError, card

from .generator import FuzzProfile, resolve_profile

#: Numeric slack for float comparisons of exact integer quantities.
_EPS = 1e-9

#: Executors every case is derived under by the ``executors`` oracle.
EXECUTOR_SET = ("serial", "thread", "process")


@dataclass
class OracleContext:
    """Per-case inputs shared by every oracle."""

    seed: int
    profile: FuzzProfile

    @classmethod
    def for_case(cls, seed: int, profile: "str | FuzzProfile") -> "OracleContext":
        return cls(seed=seed, profile=resolve_profile(profile))


@dataclass
class OracleVerdict:
    """Outcome of one oracle on one program.

    ``ok`` is the headline: True when no divergence was observed.  A skipped
    oracle (missing optional dependency) reports ``ok=True, skipped=True`` so
    campaigns stay green without hiding the gap.  ``divergence`` is a
    JSON-able payload with enough detail to understand — and replay — the
    failure.
    """

    oracle: str
    ok: bool
    skipped: bool = False
    details: str = ""
    divergence: dict | None = None
    checks: int = 0

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "ok": self.ok,
            "skipped": self.skipped,
            "details": self.details,
            "divergence": self.divergence,
            "checks": self.checks,
        }


Oracle = Callable[[AffineProgram, OracleContext], OracleVerdict]

_ORACLES: dict[str, Oracle] = {}


def register_oracle(name: str) -> Callable[[Oracle], Oracle]:
    """Decorator: register ``fn`` as the oracle called ``name``."""

    def decorate(fn: Oracle) -> Oracle:
        _ORACLES[name] = fn
        return fn

    return decorate


def oracle_names() -> tuple[str, ...]:
    return tuple(sorted(_ORACLES))


def get_oracle(name: str) -> Oracle:
    try:
        return _ORACLES[name]
    except KeyError:
        raise KeyError(
            f"unknown oracle {name!r}; registered: {', '.join(oracle_names())}"
        ) from None


def run_oracle(name: str, program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Run one oracle, converting crashes of the system under test into verdicts."""
    oracle = get_oracle(name)
    try:
        return oracle(program, ctx)
    except Exception as exc:  # noqa: BLE001 — a fuzzer must survive any SUT crash
        return OracleVerdict(
            oracle=name,
            ok=False,
            details=f"oracle crashed: {type(exc).__name__}: {exc}",
            divergence={
                "kind": "crash",
                "error": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=8),
            },
        )


# ---------------------------------------------------------------------------
# helpers


def _result_bytes(result) -> str:
    """Canonical byte representation of an IOBoundResult for equality checks."""
    return json.dumps(result.to_dict(), sort_keys=True)


def _pipeline_config(**overrides) -> AnalysisConfig:
    """Config for oracles that exercise the *pipeline*, not the wavefront math.

    ``max_depth=0`` keeps derivations kpartition-only: the expensive part of
    a random-program derivation is the symbolic transitive-closure check, and
    executor/store determinism is independent of which strategies ran.
    """
    overrides.setdefault("max_depth", 0)
    return AnalysisConfig(**overrides)


def _sandwich_capacity(cdag: CDAG) -> int:
    """A cache size every operation of the CDAG fits in (operands + result)."""
    indegree = max(
        (cdag.graph.in_degree(v) for v in cdag.compute_vertices()), default=0
    )
    return max(4, indegree + 2)


# ---------------------------------------------------------------------------
# built-in oracles


@register_oracle("executors")
def oracle_executors(program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Bounds must be byte-identical across serial/thread/process executors."""
    config = _pipeline_config(n_jobs=2)
    docs: dict[str, str] = {}
    for name in EXECUTOR_SET:
        docs[name] = _result_bytes(run_analysis(program, config, executor=name))
    reference = docs[EXECUTOR_SET[0]]
    for name, doc in docs.items():
        if doc != reference:
            return OracleVerdict(
                oracle="executors",
                ok=False,
                details=f"{name} executor produced a different bound than serial",
                divergence={
                    "kind": "executor-mismatch",
                    "executor": name,
                    "serial": reference,
                    "other": doc,
                },
                checks=len(docs),
            )
    return OracleVerdict(
        oracle="executors",
        ok=True,
        details=f"byte-identical across {', '.join(EXECUTOR_SET)}",
        checks=len(docs),
    )


@register_oracle("store")
def oracle_store(program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Cold vs warm store: warm run is all hits and byte-identical."""
    config = _pipeline_config()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-store-") as root:
        cold_store = BoundStore(root)
        cold = Analyzer(config, store=cold_store).analyze(program)
        warm_store = BoundStore(root)
        warm = Analyzer(config, store=warm_store).analyze(program)
        cold_doc, warm_doc = _result_bytes(cold), _result_bytes(warm)
        if warm_doc != cold_doc:
            return OracleVerdict(
                oracle="store",
                ok=False,
                details="warm store returned a different bound than the cold run",
                divergence={
                    "kind": "store-mismatch",
                    "cold": cold_doc,
                    "warm": warm_doc,
                },
                checks=2,
            )
        if warm_store.hits < 1 or warm_store.misses > 0:
            return OracleVerdict(
                oracle="store",
                ok=False,
                details=(
                    "warm run was not served from the store "
                    f"(hits={warm_store.hits}, misses={warm_store.misses})"
                ),
                divergence={
                    "kind": "store-not-warm",
                    "hits": warm_store.hits,
                    "misses": warm_store.misses,
                },
                checks=2,
            )
    return OracleVerdict(
        oracle="store",
        ok=True,
        details="warm rerun served from store, byte-identical",
        checks=2,
    )


def _pipeline_queries_reachability(dfg, statement: str, depth: int) -> bool:
    """True when the wavefront detector would ask the backend about ``statement``.

    Mirrors steps 1–2 of :func:`~repro.core.wavefront.sub_param_q_by_wavefront`:
    the derivation pipeline only pays for the (potentially expensive) symbolic
    closure when the structural chain + broadcast pattern is present, and the
    backends oracle restricts itself to exactly those queries — the answers
    the system actually relies on — to keep per-case cost proportional to a
    derivation instead of forcing a closure per statement.
    """
    stmt = dfg.program.statement(statement)
    dims = stmt.dims
    if len(dims) <= depth or depth < 1:
        return False
    if _find_unit_chain(dfg, statement, dims, depth) is None:
        return False
    return _has_broadcast_bottleneck(dfg, statement, dims[depth:])


@register_oracle("backends")
def oracle_backends(program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Cross-check relation backends; confirm symbolic accepts concretely."""
    dfg = dfg_for(program)
    backends = [PurePythonBackend()]
    isl_active = islpy_available()
    if isl_active:
        backends.append(IslBackend())
    checks = 0
    queried = 0
    for name in program.statements:
        if not _pipeline_queries_reachability(dfg, name, 1):
            continue
        queried += 1
        verdicts = {
            backend.name: _validate_reachability_symbolic(dfg, name, 1, backend=backend)
            for backend in backends
        }
        checks += len(verdicts)
        exact = {b: v for b, v in verdicts.items() if v.exact}
        answers = {v.holds for v in exact.values()}
        if len(answers) > 1:
            return OracleVerdict(
                oracle="backends",
                ok=False,
                details=f"exact backends disagree on reachability of {name!r}",
                divergence={
                    "kind": "backend-disagreement",
                    "statement": name,
                    "verdicts": {
                        b: {"holds": v.holds, "exact": v.exact}
                        for b, v in verdicts.items()
                    },
                },
                checks=checks,
            )
        for backend_name, verdict in verdicts.items():
            if not verdict.holds:
                continue
            for instance in ctx.profile.instance_dicts():
                checks += 1
                if not _validate_reachability_concrete(dfg, name, 1, instance):
                    return OracleVerdict(
                        oracle="backends",
                        ok=False,
                        details=(
                            f"{backend_name} certified reachability of {name!r} "
                            f"but the concrete CDAG at {instance} refutes it"
                        ),
                        divergence={
                            "kind": "false-accept",
                            "statement": name,
                            "backend": backend_name,
                            "instance": instance,
                        },
                        checks=checks,
                    )
    suffix = "pure+islpy" if isl_active else "pure only (islpy unavailable)"
    return OracleVerdict(
        oracle="backends",
        ok=True,
        details=(
            f"reachability consistent on {queried}/{len(program.statements)} "
            f"queried statements ({suffix})"
        ),
        checks=checks,
    )


@register_oracle("sandwich")
def oracle_sandwich(program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Certified lower bounds never exceed a simulated legal schedule's loads."""
    variants = {
        "kpartition": ("kpartition",),
        "wavefront": ("wavefront",),
        "both": ("kpartition", "wavefront"),
    }
    results = {
        name: run_analysis(program, AnalysisConfig(max_depth=1, strategies=strategies))
        for name, strategies in variants.items()
    }
    checks = 0
    instance = ctx.profile.instance_dicts()[0]
    cdag = CDAG.expand(program, instance)
    capacity = _sandwich_capacity(cdag)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TilingFallbackWarning)
        schedule = lexicographic_schedule(cdag, warn=False)
    loads = {
        policy: simulate_schedule(cdag, list(schedule), capacity, policy=policy).loads
        for policy in ("lru", "opt")
    }
    if loads["opt"] > loads["lru"]:
        return OracleVerdict(
            oracle="sandwich",
            ok=False,
            details="Belady simulation loaded more than LRU on the same schedule",
            divergence={
                "kind": "policy-inversion",
                "instance": instance,
                "capacity": capacity,
                "loads": loads,
            },
            checks=1,
        )
    upper = min(loads.values())
    for name, result in results.items():
        checks += 1
        bound = result.evaluate({**instance, "S": capacity})
        if bound > upper + _EPS:
            return OracleVerdict(
                oracle="sandwich",
                ok=False,
                details=(
                    f"strategy set {name!r} certified a lower bound of {bound} "
                    f"above the simulated upper bound {upper}"
                ),
                divergence={
                    "kind": "sandwich-violation",
                    "strategies": list(variants[name]),
                    "instance": instance,
                    "capacity": capacity,
                    "lower_bound": bound,
                    "upper_bound": upper,
                    "loads": loads,
                },
                checks=checks,
            )
    return OracleVerdict(
        oracle="sandwich",
        ok=True,
        details=f"lower ≤ simulated upper for {len(results)} strategy sets",
        checks=checks,
    )


def _symbolic_statement_count(program: AffineProgram, statement: str, instance) -> float:
    """Evaluated symbolic cardinality of one statement domain.

    Kept as a module-level seam on purpose: the planted-bug regression test
    monkeypatches this to inject a miscount and prove the fuzzer catches,
    shrinks and replays a real divergence.
    """
    return evaluate(card(program.statements[statement].domain), instance)


def _backend_card(program: AffineProgram, statement: str, backend: str):
    """Closed-form cardinality of one statement domain under one count backend.

    A module-level seam like :func:`_symbolic_statement_count`: tests
    monkeypatch it to plant a backend divergence and prove the oracle
    reports it.
    """
    return card(program.statements[statement].domain, backend=backend)


@register_oracle("counting")
def oracle_counting(program: AffineProgram, ctx: OracleContext) -> OracleVerdict:
    """Symbolic card/input_size/total_flops vs brute-force CDAG enumeration."""
    checks = 0
    # Backend differential first: the native Faulhaber engine and the sympy
    # reference must produce *identical* expressions for every domain the
    # counting recursion accepts (CountingError is shared behaviour — both
    # engines reject the same sets — so it skips the comparison, it never
    # masks a divergence).
    for name in program.statements:
        try:
            native = _backend_card(program, name, "native")
            reference = _backend_card(program, name, "sympy")
        except CountingError:
            continue
        checks += 1
        if native != reference:
            return OracleVerdict(
                oracle="counting",
                ok=False,
                details=(
                    f"count backends disagree on card({name!r}): "
                    f"native={native} sympy={reference}"
                ),
                divergence={
                    "kind": "count-backend-mismatch",
                    "statement": name,
                    "native": str(native),
                    "sympy": str(reference),
                },
                checks=checks,
            )
    for instance in ctx.profile.instance_dicts():
        cdag = CDAG.expand(program, instance)
        for name, statement in program.statements.items():
            try:
                symbolic = _symbolic_statement_count(program, name, instance)
            except CountingError:
                continue
            checks += 1
            enumerated = len(cdag.statement_vertices(name))
            if abs(symbolic - enumerated) > 0.5:
                return OracleVerdict(
                    oracle="counting",
                    ok=False,
                    details=(
                        f"card({name!r}) at {instance} is {symbolic} symbolically "
                        f"but {enumerated} by enumeration"
                    ),
                    divergence={
                        "kind": "count-mismatch",
                        "what": "statement-domain",
                        "statement": name,
                        "instance": instance,
                        "symbolic": symbolic,
                        "enumerated": enumerated,
                    },
                    checks=checks,
                )
        aggregates = (
            ("input-size", program.input_size(), len(cdag.inputs)),
            (
                "total-flops",
                program.total_flops(),
                sum(
                    program.statements[v[0]].flops for v in cdag.compute_vertices()
                ),
            ),
        )
        for what, expr, enumerated in aggregates:
            checks += 1
            symbolic = evaluate(expr, instance)
            if abs(symbolic - enumerated) > 0.5:
                return OracleVerdict(
                    oracle="counting",
                    ok=False,
                    details=(
                        f"{what} at {instance} is {symbolic} symbolically "
                        f"but {enumerated} by enumeration"
                    ),
                    divergence={
                        "kind": "count-mismatch",
                        "what": what,
                        "instance": instance,
                        "symbolic": symbolic,
                        "enumerated": enumerated,
                    },
                    checks=checks,
                )
    return OracleVerdict(
        oracle="counting",
        ok=True,
        details=f"{checks} counts match enumeration; count backends agree",
        checks=checks,
    )
